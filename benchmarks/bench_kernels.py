"""Benchmark of the vectorized busy-window kernels + incremental memo.

Three case families, each verifying **bit-identical** results before
reporting a speedup:

* **local** — whole-resource ``scheduler.analyze`` on synthetic
  high-utilization SPP and EDF task sets, scalar loops vs the batched
  kernels (numpy backend when importable, pure-python fallback always);
* **e2e** — ``analyze_system`` end-to-end on the RoX08 gateway (flat and
  hierarchical) and the synthetic COM-layer space, scalar vs vectorized;
* **incremental** — a single-axis WCET sweep over a two-resource system
  where only a small leaf resource changes per point: from-scratch
  analysis per point vs a shared :class:`repro.analysis.memo.AnalysisMemo`
  (dirty-set re-analysis), reporting the end-to-end sweep speedup and
  the task-level reuse rate.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick  # CI smoke

Emits ``BENCH_kernels.json`` into the repository root (override with
``BENCH_OUT_DIR``).  Exit status is non-zero when any case diverges
from the scalar reference, when the *active* vectorized backend is
slower than scalar on the gate cases, or when the incremental sweep
fails to beat from-scratch.  The pure-python fallback is additionally
gated on the EDF case (its SPP numbers hover at parity and are
reported, not gated — CI noise would make a hard ``>= 1`` gate flaky).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_history import envelope  # noqa: E402
from repro import obs  # noqa: E402
from repro.analysis import kernels  # noqa: E402
from repro.analysis.edf import EDFScheduler  # noqa: E402
from repro.analysis.interface import TaskSpec  # noqa: E402
from repro.analysis.memo import AnalysisMemo  # noqa: E402
from repro.analysis.spp import SPPScheduler  # noqa: E402
from repro.eventmodels.standard import StandardEventModel  # noqa: E402
from repro.examples_lib.rox08 import build_system as build_rox08  # noqa: E402
from repro.examples_lib.synth import synth_system  # noqa: E402
from repro.system.model import System  # noqa: E402
from repro.system.propagation import analyze_system  # noqa: E402

BENCH_OUT_DIR = Path(os.environ.get(
    "BENCH_OUT_DIR", Path(__file__).resolve().parent.parent))

#: Synthetic end-to-end sizes, mirroring bench_compile.
SYNTH_SIZES = [(16, 2, 800.0), (24, 3, 1400.0), (32, 4, 2000.0)]
SYNTH_SIZES_QUICK = [(16, 2, 800.0)]

#: Local whole-resource cases: (case name, policy, n tasks).  High
#: utilization (0.85) keeps busy windows spanning many activations —
#: the regime the kernels are built for.
LOCAL_CASES = [("spp_24", "spp", 24), ("spp_48", "spp", 48),
               ("edf_16", "edf", 16), ("edf_24", "edf", 24)]
LOCAL_CASES_QUICK = [("spp_24", "spp", 24), ("edf_12", "edf", 12)]

#: Total utilization of the synthetic local task sets.
UTILIZATION = 0.85

#: Leaf-task WCET scale factors for the incremental sweep.
SWEEP_FACTORS = [1.0, 1.03, 1.06, 1.09, 1.12, 1.15, 1.18, 1.21]
SWEEP_FACTORS_QUICK = SWEEP_FACTORS[:4]


def make_local_tasks(n: int, policy: str):
    """``n`` jittery periodic tasks at ~85% total utilization."""
    tasks = []
    share = UTILIZATION / n
    for i in range(n):
        period = 100.0 * (i + 3) + 7.0 * (i % 5)
        em = StandardEventModel(period=period, jitter=period * 0.4,
                                d_min=1.0 + 0.1 * i)
        cmax = share * period
        kw = (dict(deadline=period * 2.0) if policy == "edf"
              else dict(priority=i + 1))
        tasks.append(TaskSpec(name=f"t{i}", event_model=em,
                              c_min=cmax * 0.6, c_max=cmax, **kw))
    return tasks


def resource_digest(rr) -> dict:
    return {name: (tr.r_min, tr.r_max, tr.q_max, tuple(tr.busy_times))
            for name, tr in sorted(rr.task_results.items())}


def system_digest(result) -> dict:
    return {
        "iterations": result.iterations,
        "resources": {rn: resource_digest(rr)
                      for rn, rr in sorted(result.resource_results.items())},
        "paths": dict(sorted(result.path_latencies.items())),
    }


def best_of(fn, repeats: int):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def time_local_case(policy: str, n: int, repeats: int) -> dict:
    scheduler = SPPScheduler() if policy == "spp" else EDFScheduler()
    tasks = make_local_tasks(n, policy)

    def run():
        return resource_digest(scheduler.analyze(tasks, "bench"))

    kernels.configure(vectorized=False)
    t_scalar, d_scalar = best_of(run, repeats)
    row = {"policy": policy, "tasks": n, "scalar_seconds": t_scalar,
           "identical": True}
    kernels.configure(vectorized=True, numpy=True)
    if kernels.use_numpy():
        t_np, d_np = best_of(run, repeats)
        row["numpy_seconds"] = t_np
        row["numpy_speedup"] = t_scalar / t_np
        row["identical"] &= d_np == d_scalar
    kernels.configure(vectorized=True, numpy=False)
    t_py, d_py = best_of(run, repeats)
    row["python_seconds"] = t_py
    row["python_speedup"] = t_scalar / t_py
    row["identical"] &= d_py == d_scalar
    kernels.configure(vectorized=True, numpy=True)
    return row


def time_e2e_case(build, repeats: int) -> dict:
    def run():
        return system_digest(analyze_system(build()))

    kernels.configure(vectorized=False)
    t_scalar, d_scalar = best_of(run, repeats)
    kernels.configure(vectorized=True, numpy=True)
    t_vec, d_vec = best_of(run, repeats)
    return {"scalar_seconds": t_scalar, "vectorized_seconds": t_vec,
            "backend": kernels.backend(),
            "speedup": t_scalar / t_vec,
            "identical": d_vec == d_scalar}


# ----------------------------------------------------------------------
# incremental sweep case
# ----------------------------------------------------------------------
def build_sweep_system(leaf_wcet_scale: float = 1.0,
                       n_big: int = 40) -> System:
    """A hot SPP resource feeding a small leaf resource.

    The sweep scales only the leaf tasks' WCETs, so the expensive BIG
    resource (40 tasks at 95% utilization — long busy windows) sees
    unchanged inputs at every point — exactly the shape dirty-set
    re-analysis exploits (and the common one: tuning one component of a
    larger system).
    """
    system = System("kernel-sweep")
    share = 0.95 / n_big
    for i in range(n_big):
        period = 100.0 * (i + 3) + 7.0 * (i % 5)
        system.add_source(f"S{i}", StandardEventModel(
            period=period, jitter=period * 0.5, d_min=1.0 + 0.1 * i))
    system.add_resource("BIG", SPPScheduler())
    for i in range(n_big):
        period = 100.0 * (i + 3) + 7.0 * (i % 5)
        cmax = share * period
        system.add_task(f"B{i}", "BIG", (cmax * 0.6, cmax), [f"S{i}"],
                        priority=i + 1)
    system.add_resource("LEAF", SPPScheduler())
    for i in range(3):
        cmax = 40.0 * leaf_wcet_scale
        system.add_task(f"L{i}", "LEAF", (cmax * 0.5, cmax), [f"B{i}"],
                        priority=i + 1)
    return system


def time_incremental_sweep(factors, repeats: int) -> dict:
    def cold():
        return [system_digest(analyze_system(build_sweep_system(f)))
                for f in factors]

    def warm():
        memo = AnalysisMemo()
        digests = [system_digest(analyze_system(build_sweep_system(f),
                                                memo=memo))
                   for f in factors]
        return digests, memo.stats()

    t_cold, d_cold = best_of(cold, repeats)
    t_warm, (d_warm, stats) = best_of(warm, repeats)
    return {
        "points": len(factors),
        "cold_seconds": t_cold,
        "incremental_seconds": t_warm,
        "speedup": t_cold / t_warm,
        "identical": d_warm == d_cold,
        "reuse_rate": stats["reuse_rate"],
        "task_reuses": stats["task_reuses"],
        "tasks_total": stats["tasks_total"],
        "resource_hits": stats["resource_hits"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller cases, single repeat")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per case (best-of)")
    args = parser.parse_args(argv)

    # Best-of needs a couple of repeats even in quick mode: a single
    # repeat times the scalar baseline against cold model/compile
    # caches, which flatters (or on tiny cases penalizes) whichever
    # configuration happens to run second.
    repeats = args.repeats or (2 if args.quick else 5)
    local_cases = LOCAL_CASES_QUICK if args.quick else LOCAL_CASES
    sizes = SYNTH_SIZES_QUICK if args.quick else SYNTH_SIZES
    factors = SWEEP_FACTORS_QUICK if args.quick else SWEEP_FACTORS

    obs.configure(enabled=True, reset=True)
    report = {"quick": args.quick, "repeats": repeats,
              "numpy_available": kernels.use_numpy(),
              "local": {}, "e2e": {}, "incremental": None}
    failures = []

    for case, policy, n in local_cases:
        row = time_local_case(policy, n, repeats)
        report["local"][case] = row
        np_part = (f"numpy {row['numpy_speedup']:5.2f}x   "
                   if "numpy_speedup" in row else "")
        flag = "" if row["identical"] else "  RESULTS DIVERGE"
        print(f"local {case:>8}: scalar {row['scalar_seconds']:7.3f}s   "
              f"{np_part}python {row['python_speedup']:5.2f}x{flag}")
        if not row["identical"]:
            failures.append(f"local {case}: vectorized diverges from scalar")

    for variant in ("flat", "hem"):
        case = f"rox08_{variant}"
        report["e2e"][case] = time_e2e_case(
            lambda v=variant: build_rox08(v), repeats)
    for n_signals, n_frames, base_period in sizes:
        case = f"synth_{n_signals}x{n_frames}"
        report["e2e"][case] = time_e2e_case(
            lambda n=n_signals, f=n_frames, bp=base_period:
                synth_system(n, f, base_period=bp),
            repeats)
    for case, row in report["e2e"].items():
        flag = "" if row["identical"] else "  RESULTS DIVERGE"
        print(f"e2e   {case:>12}: scalar {row['scalar_seconds']:7.3f}s   "
              f"vectorized[{row['backend']}] {row['speedup']:5.2f}x{flag}")
        if not row["identical"]:
            failures.append(f"e2e {case}: vectorized diverges from scalar")

    inc = time_incremental_sweep(factors, repeats)
    report["incremental"] = inc
    flag = "" if inc["identical"] else "  RESULTS DIVERGE"
    print(f"incremental sweep ({inc['points']} points): "
          f"cold {inc['cold_seconds']:7.3f}s   "
          f"incremental {inc['incremental_seconds']:7.3f}s   "
          f"{inc['speedup']:5.2f}x   "
          f"reuse {inc['reuse_rate']:.0%}{flag}")
    if not inc["identical"]:
        failures.append("incremental sweep diverges from from-scratch")

    # ------------------------------------------------------------------
    # regression gates
    # ------------------------------------------------------------------
    # The active backend must not lose to scalar on the gate cases (the
    # large EDF case is the most numpy-friendly and noise-robust; with
    # numpy absent the EDF python fallback still clears 1x comfortably).
    gate_case = next(c for c, _, _ in reversed(local_cases)
                     if c.startswith("edf"))
    row = report["local"][gate_case]
    active_speedup = row.get("numpy_speedup", row["python_speedup"])
    if active_speedup < 1.0:
        failures.append(
            f"local {gate_case}: active vectorized backend slower than "
            f"scalar ({active_speedup:.2f}x)")
    if row["python_speedup"] < 0.9:
        failures.append(
            f"local {gate_case}: python fallback slower than scalar "
            f"({row['python_speedup']:.2f}x)")
    if inc["speedup"] < (1.5 if args.quick else 2.0):
        failures.append(
            f"incremental sweep speedup {inc['speedup']:.2f}x below gate")

    report["summary"] = {
        "best_local_speedup": max(
            r.get("numpy_speedup", r["python_speedup"])
            for r in report["local"].values()),
        "min_local_numpy_speedup": min(
            (r["numpy_speedup"] for r in report["local"].values()
             if "numpy_speedup" in r), default=None),
        "min_local_python_speedup": min(
            r["python_speedup"] for r in report["local"].values()),
        "incremental_speedup": inc["speedup"],
        "incremental_reuse_rate": inc["reuse_rate"],
    }
    report["kernel_stats"] = kernels.stats()

    report["failures"] = failures
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = BENCH_OUT_DIR / "BENCH_kernels.json"
    out.write_text(json.dumps(envelope(report, "kernels"),
                              indent=2, sort_keys=True))
    print(f"wrote {out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
