"""Ablation — the simultaneity factor k in the inner update (Def. 9).

Definition 9 shrinks every inner stream's minimum distance by
``(r⁺ - r⁻) + (k - 1) * r⁻``, where k is the largest burst of coincident
outer events.  This ablation quantifies what k costs: it sweeps k from 1
(ignore serialisation — UNSAFE) through the correct value to pessimistic
overestimates, and reports the receiver WCRT each choice produces.  The
correct k comes from ``outer.simultaneity()``; the k=1 row shows how
much tightness a naive (and unsound) update would fake.
"""

import pytest

from conftest import emit
from repro.analysis import SPPScheduler, TaskSpec
from repro.core import TransferProperty, hsc_pack
from repro.core.update import InnerJitterSpacingModel
from repro.eventmodels import periodic
from repro.examples_lib.rox08 import CPU_TASKS, build_system
from repro.system import analyze_system
from repro.viz import render_table

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def _wcrt_for_k(k: int):
    """Receiver WCRTs when Def. 9 is applied with a forced k."""
    hem = hsc_pack(
        {"S1": (periodic(250.0, "S1"), TRIG),
         "S2": (periodic(450.0, "S2"), TRIG),
         "S3": (periodic(1000.0, "S3"), PEND)},
        timer=periodic(1000.0, "timer"), name="F1")
    # Bus response interval of F1 from the converged reference analysis.
    reference = analyze_system(build_system("hem"))
    f1 = reference.task_result("F1")
    jitter = f1.r_max - f1.r_min
    inner = {label: InnerJitterSpacingModel(hem.inner(label), jitter,
                                            f1.r_min, k)
             for label in hem.labels}
    tasks = [
        TaskSpec("T1", 24.0, 24.0, inner["S1"], priority=1),
        TaskSpec("T2", 32.0, 32.0, inner["S2"], priority=2),
        TaskSpec("T3", 40.0, 40.0, inner["S3"], priority=3),
    ]
    result = SPPScheduler().analyze(tasks, "CPU1")
    return {t: result[t].r_max for t in CPU_TASKS}


def _sweep():
    return {k: _wcrt_for_k(k) for k in (1, 2, 3, 5)}


def test_inner_update_k_sweep(benchmark):
    sweep = benchmark(_sweep)
    correct_k = 3  # S1, S2 and the timer coincide at t = 0

    rows = [(k, *(sweep[k][t] for t in ("T1", "T2", "T3")),
             "correct" if k == correct_k else
             ("UNSAFE" if k < correct_k else "pessimistic"))
            for k in sorted(sweep)]
    emit("Ablation - Def. 9 simultaneity factor k vs receiver WCRT",
         render_table(["k", "R+ T1", "R+ T2", "R+ T3", "note"], rows))

    # WCRTs are monotone in k (larger k -> tighter spacing assumption
    # gone -> more pessimism), and the correct k is strictly cheaper
    # than gross overestimates for the low-priority task.
    ks = sorted(sweep)
    for a, b in zip(ks, ks[1:]):
        for t in ("T1", "T2", "T3"):
            assert sweep[a][t] <= sweep[b][t] + 1e-9
    assert sweep[correct_k]["T3"] <= sweep[5]["T3"]
