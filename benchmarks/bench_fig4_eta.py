"""Figure 4 — η⁺ of the F1 output stream and of the unpacked signals.

Regenerates the four curves of the paper's figure: total frame arrivals
(black), and the per-signal activation bounds for T1/S1 (red), T2/S2
(blue), T3/S3 (green) obtained by unpacking the hierarchical event model
after the bus.  Prints both an ASCII chart and a CSV block.
"""

import pytest

from conftest import emit
from repro.examples_lib.rox08 import build_system
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import eta_plus_series, render_step_chart, series_to_csv

T_MAX = 2000.0
STEP = 25.0


def _frame_output():
    system = build_system("hem")
    result = analyze_system(system)
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    return resolver.port("F1")


def _build_series():
    out = _frame_output()
    series = {"F1 total frames": eta_plus_series(out.outer, T_MAX, STEP)}
    for label in out.labels:
        series[f"unpacked {label}"] = eta_plus_series(
            out.inner(label), T_MAX, STEP)
    return out, series


def test_fig4_eta_curves(benchmark):
    out, series = benchmark(_build_series)

    emit("Figure 4 - eta+ of T1-T3 activations and F1 frames",
         render_step_chart(series, title="") + "\n\nCSV:\n"
         + series_to_csv(series))

    # Shape assertions: every unpacked curve lies below the total frame
    # curve at every sampled point, and S3 (pending, slowest) is lowest.
    frames = dict(series["F1 total frames"])
    for label in out.labels:
        for dt, value in series[f"unpacked {label}"]:
            assert value <= frames[dt], (label, dt)
    at_end = {label: dict(series[f"unpacked {label}"])[T_MAX]
              for label in out.labels}
    assert at_end["S3"] <= at_end["S2"] <= at_end["S1"]
    # The gap is substantial: the frame curve more than doubles the
    # busiest single signal.
    assert frames[T_MAX] >= 1.5 * at_end["S1"]
