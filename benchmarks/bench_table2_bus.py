"""Table 2 — the CAN bus: frames, payloads, priorities, and the bus
analysis feeding the receiver side.

Regenerates the frame table plus the analysed frame worst-case response
times (the r⁻/r⁺ that parameterise Θ_τ and the Def. 9 inner update).
"""

import pytest

from conftest import emit
from repro.can import CanBusTiming, frame_bits_max
from repro.examples_lib.rox08 import BIT_TIME, build_system
from repro.system import analyze_system
from repro.viz import render_table


def _analyze_bus():
    return analyze_system(build_system("hem"))


def test_table2_bus(benchmark):
    result = benchmark(_analyze_bus)
    timing = CanBusTiming(BIT_TIME)

    rows = []
    for frame, payload, prio in (("F1", 4, "High"), ("F2", 2, "Low")):
        tr = result.task_result(frame)
        rows.append((frame, f"[{payload}:{payload}]", prio,
                     timing.transmission_time_max(payload),
                     tr.r_min, tr.r_max))
    emit("Table 2 - Bus (CAN - scheduled)",
         render_table(["Frame", "Payload", "Priority", "C_max",
                       "R- bus", "R+ bus"], rows))

    # Shape assertions.
    f1, f2 = result.task_result("F1"), result.task_result("F2")
    # Worst-case bit counts follow the stuffing formula.
    assert timing.transmission_time_max(4) == \
        frame_bits_max(4) * BIT_TIME
    # The high-priority frame never responds slower than the low one.
    assert f1.r_max <= f2.r_max + 1e-9
    # Non-preemptive blocking: F1's WCRT includes waiting for F2.
    assert f1.r_max >= f1.r_min + timing.transmission_time_max(2) - 1e-9
