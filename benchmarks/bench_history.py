"""Benchmark history: envelopes, ``BENCH_HISTORY.jsonl``, regression gate.

Every ``BENCH_*.json`` artefact written by the benchmark harness is
wrapped in a schema-versioned *envelope* carrying the provenance a
cross-commit comparison needs::

    {
      "schema": "repro-bench/1",
      "bench": "compile",            # compile | batch | suite
      "host": "runner-3",
      "git_sha": "3f4dab3...",
      "timestamp": 1754640000.0,
      "payload": { ... the benchmark's own report ... }
    }

Provenance defaults come from the environment (``BENCH_HOST``,
``BENCH_GIT_SHA``, ``BENCH_TIMESTAMP``) so CI can pin them, and fall
back to the hostname / ``git rev-parse HEAD`` / current time.

Two subcommands close the performance loop::

    python benchmarks/bench_history.py record   # append current BENCH
                                                # artefacts to history
    python benchmarks/bench_history.py check    # regression gate

``record`` appends one envelope per present artefact to
``BENCH_HISTORY.jsonl`` (append-only, one JSON object per line).
``check`` compares the *current* artefacts against a baseline derived
from the recorded history: for each tracked metric the baseline is the
median of the last ``--window`` history entries, and the gate fails
when the current value drops more than ``--threshold`` (fractional)
below that baseline.  All tracked metrics are higher-is-better:

* ``compile.min_speedup``      — worst-case compiled/lazy speedup
                                 across the ``BENCH_compile.json`` cases
* ``batch.throughput``         — points / pool wall seconds
* ``batch.warm_cache_hit_rate``— warm-rerun store hit rate
* ``serve.throughput``         — daemon sustained warm requests / second
* ``kernels.speedup``          — best whole-resource vectorized speedup
                                 from ``BENCH_kernels.json``
* ``incremental.reuse_rate``   — dirty-set sweep task reuse rate
* ``soak.samples_per_sec``     — burn-in campaign sample throughput
                                 from ``BENCH_soak.json``

With no history yet (first run on a branch) ``check`` passes with a
note unless ``--require-baseline`` is given — so the gate can be wired
into CI before a baseline exists.  Legacy un-enveloped artefacts are
tolerated everywhere: readers unwrap when a ``schema`` field is
present and treat the whole document as the payload otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

HISTORY_NAME = "BENCH_HISTORY.jsonl"

#: Artefact file per bench name.
ARTIFACTS = {
    "compile": "BENCH_compile.json",
    "batch": "BENCH_batch.json",
    "suite": "BENCH_suite.json",
    "serve": "BENCH_serve.json",
    "kernels": "BENCH_kernels.json",
    "soak": "BENCH_soak.json",
}

DEFAULT_WINDOW = 5
DEFAULT_THRESHOLD = 0.25

BENCH_OUT_DIR = Path(os.environ.get(
    "BENCH_OUT_DIR", Path(__file__).resolve().parent.parent))


# --------------------------------------------------------------------------
# envelopes


def _default_host() -> str:
    env = os.environ.get("BENCH_HOST")
    if env:
        return env
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - no hostname available
        return "unknown"


def _default_git_sha() -> str:
    env = os.environ.get("BENCH_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _default_timestamp() -> float:
    env = os.environ.get("BENCH_TIMESTAMP")
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return time.time()


def envelope(payload: Dict[str, Any], bench: str, *,
             host: Optional[str] = None,
             git_sha: Optional[str] = None,
             timestamp: Optional[float] = None) -> Dict[str, Any]:
    """Wrap a benchmark *payload* in the versioned provenance envelope."""
    return {
        "schema": SCHEMA,
        "bench": bench,
        "host": host if host is not None else _default_host(),
        "git_sha": git_sha if git_sha is not None else _default_git_sha(),
        "timestamp": (timestamp if timestamp is not None
                      else _default_timestamp()),
        "payload": payload,
    }


def unwrap(data: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Return ``(payload, meta)`` from an enveloped **or** legacy flat
    document.  Legacy documents yield empty meta."""
    if (isinstance(data, dict) and "payload" in data
            and str(data.get("schema", "")).startswith("repro-bench/")):
        meta = {k: v for k, v in data.items() if k != "payload"}
        payload = data["payload"]
        return (payload if isinstance(payload, dict) else {}, meta)
    return (data if isinstance(data, dict) else {}, {})


def load_artifact(path: Path) -> Optional[Dict[str, Any]]:
    """Payload of a BENCH artefact on disk, or None when absent/bad."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    payload, _ = unwrap(data)
    return payload or None


# --------------------------------------------------------------------------
# tracked metrics


def _metric_compile_min_speedup(payload: Dict[str, Any]) -> Optional[float]:
    cases = payload.get("cases")
    if not isinstance(cases, dict) or not cases:
        return None
    speedups = [row.get("speedup") for row in cases.values()
                if isinstance(row, dict)
                and isinstance(row.get("speedup"), (int, float))]
    return min(speedups) if speedups else None


def _metric_batch_throughput(payload: Dict[str, Any]) -> Optional[float]:
    points = payload.get("points")
    wall = payload.get("pool_wall_seconds")
    if (isinstance(points, (int, float)) and points
            and isinstance(wall, (int, float)) and wall > 0):
        return points / wall
    return None


def _metric_warm_hit_rate(payload: Dict[str, Any]) -> Optional[float]:
    rate = payload.get("warm_cache_hit_rate")
    return float(rate) if isinstance(rate, (int, float)) else None


def _metric_serve_throughput(payload: Dict[str, Any]) -> Optional[float]:
    rps = payload.get("sustained_rps")
    if isinstance(rps, (int, float)) and rps > 0:
        return float(rps)
    return None


def _metric_kernels_speedup(payload: Dict[str, Any]) -> Optional[float]:
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        return None
    best = summary.get("best_local_speedup")
    return float(best) if isinstance(best, (int, float)) else None


def _metric_soak_throughput(payload: Dict[str, Any]) -> Optional[float]:
    rate = payload.get("samples_per_sec")
    if isinstance(rate, (int, float)) and rate > 0:
        return float(rate)
    return None


def _metric_incremental_reuse(payload: Dict[str, Any]) -> Optional[float]:
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        return None
    rate = summary.get("incremental_reuse_rate")
    return float(rate) if isinstance(rate, (int, float)) else None


#: name -> (bench artefact it reads, extractor).  All higher-is-better.
TRACKED_METRICS: Dict[str, Tuple[str, Callable[[Dict[str, Any]],
                                               Optional[float]]]] = {
    "compile.min_speedup": ("compile", _metric_compile_min_speedup),
    "batch.throughput": ("batch", _metric_batch_throughput),
    "batch.warm_cache_hit_rate": ("batch", _metric_warm_hit_rate),
    "serve.throughput": ("serve", _metric_serve_throughput),
    "kernels.speedup": ("kernels", _metric_kernels_speedup),
    "incremental.reuse_rate": ("kernels", _metric_incremental_reuse),
    "soak.samples_per_sec": ("soak", _metric_soak_throughput),
}


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def load_history(path: Path) -> List[Dict[str, Any]]:
    """All well-formed envelopes from a history file, oldest first."""
    entries: List[Dict[str, Any]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError:
            continue
        if isinstance(data, dict) and data.get("bench") in ARTIFACTS:
            entries.append(data)
    return entries


def baseline_for(metric: str, history: List[Dict[str, Any]],
                 window: int = DEFAULT_WINDOW) -> Optional[float]:
    """Median of the metric over the last *window* history entries that
    carry it, or None when the history has no usable sample."""
    bench, extract = TRACKED_METRICS[metric]
    samples: List[float] = []
    for entry in reversed(history):
        if entry.get("bench") != bench:
            continue
        payload, _ = unwrap(entry)
        value = extract(payload)
        if value is not None:
            samples.append(value)
        if len(samples) >= window:
            break
    return _median(samples) if samples else None


# --------------------------------------------------------------------------
# subcommands


def cmd_record(args) -> int:
    out_dir = Path(args.dir)
    history_path = out_dir / HISTORY_NAME
    recorded = 0
    with open(history_path, "a", encoding="utf-8") as fh:
        for bench, name in sorted(ARTIFACTS.items()):
            payload = load_artifact(out_dir / name)
            if payload is None:
                continue
            fh.write(json.dumps(envelope(payload, bench),
                                sort_keys=True) + "\n")
            recorded += 1
    print(f"recorded {recorded} artefact(s) into {history_path}")
    if recorded == 0:
        print("note: no BENCH_*.json artefacts found "
              f"in {out_dir}", file=sys.stderr)
    return 0


def cmd_check(args) -> int:
    out_dir = Path(args.dir)
    history = load_history(out_dir / HISTORY_NAME)
    if args.skip_last and history:
        # The artefacts under check were already recorded as the final
        # history entries (record-then-check CI order): drop the newest
        # entry per bench so the baseline reflects *prior* runs only.
        seen = set()
        trimmed = []
        for entry in reversed(history):
            bench = entry.get("bench")
            if bench not in seen:
                seen.add(bench)
                continue
            trimmed.append(entry)
        history = list(reversed(trimmed))

    failures: List[str] = []
    missing_baseline: List[str] = []
    for metric, (bench, extract) in sorted(TRACKED_METRICS.items()):
        payload = load_artifact(out_dir / ARTIFACTS[bench])
        if payload is None:
            print(f"{metric:>28}: no current {ARTIFACTS[bench]}; skipped")
            continue
        current = extract(payload)
        if current is None:
            print(f"{metric:>28}: not present in current artefact; skipped")
            continue
        baseline = baseline_for(metric, history, window=args.window)
        if baseline is None:
            missing_baseline.append(metric)
            print(f"{metric:>28}: {current:10.4f}  (no baseline yet)")
            continue
        floor = baseline * (1.0 - args.threshold)
        verdict = "ok" if current >= floor else "REGRESSION"
        print(f"{metric:>28}: {current:10.4f}  baseline {baseline:10.4f}"
              f"  floor {floor:10.4f}  {verdict}")
        if current < floor:
            failures.append(
                f"{metric}: {current:.4f} < {floor:.4f} "
                f"(baseline {baseline:.4f}, threshold {args.threshold:.0%})")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if missing_baseline and args.require_baseline:
        print(f"FAIL: no baseline for {', '.join(missing_baseline)} "
              "and --require-baseline given", file=sys.stderr)
        return 1
    if missing_baseline:
        print("note: no baseline yet for "
              f"{', '.join(missing_baseline)}; gate passes vacuously")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_history.py",
        description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=str(BENCH_OUT_DIR),
        help="directory holding BENCH_*.json and BENCH_HISTORY.jsonl "
             "(default: BENCH_OUT_DIR or the repo root)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "record",
        help="append the current BENCH artefacts to the history")

    check = sub.add_parser(
        "check", help="fail when a tracked metric regresses vs history")
    check.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help=f"history entries per metric to median over "
             f"(default {DEFAULT_WINDOW})")
    check.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help=f"allowed fractional drop below baseline "
             f"(default {DEFAULT_THRESHOLD})")
    check.add_argument(
        "--require-baseline", action="store_true",
        help="fail when a tracked metric has no recorded baseline")
    check.add_argument(
        "--skip-last", action="store_true",
        help="exclude the newest history entry per bench from the "
             "baseline (record-then-check CI order)")

    args = parser.parse_args(argv)
    if args.command == "record":
        return cmd_record(args)
    return cmd_check(args)


if __name__ == "__main__":
    raise SystemExit(main())
