"""Ablation — design headroom bought by hierarchical event models.

Beyond lower WCRTs, tighter activation models buy *design headroom*: how
much can the receiver tasks' execution times grow before deadlines miss?
This benchmark runs the sensitivity search on the paper's CPU1 with both
activation variants (flat frame stream vs unpacked HEM streams) and
reports the maximum WCET inflation factor each admits.
"""

import pytest

from conftest import emit
from repro.analysis import SPPScheduler, TaskSpec, max_wcet_scaling
from repro.examples_lib.rox08 import CPU_TASKS, TASK_SIGNAL, build_system
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import render_table

#: Implicit deadlines: each task must finish before its signal's period.
DEADLINES = {"T1": 250.0, "T2": 450.0, "T3": 1000.0}


def _cpu_tasks(variant: str):
    system = build_system(variant)
    result = analyze_system(system)
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    specs = []
    for task, (cet, prio) in CPU_TASKS.items():
        model = resolver.activation_model(system.tasks[task])
        specs.append(TaskSpec(task, cet, cet, model, priority=prio))
    return specs


def _headroom():
    out = {}
    for variant in ("flat", "hem"):
        specs = _cpu_tasks(variant)
        out[variant] = max_wcet_scaling(SPPScheduler(), specs, DEADLINES)
    return out


def test_sensitivity_headroom(benchmark):
    headroom = benchmark(_headroom)

    rows = [(variant, f"{factor:.2f}x")
            for variant, factor in headroom.items()]
    emit("Ablation - max WCET inflation before deadline miss",
         render_table(["activation models", "headroom"], rows))

    # HEM admits strictly more WCET growth than the flat baseline, and
    # the paper system has real slack under HEM.
    assert headroom["hem"] > headroom["flat"]
    assert headroom["hem"] > 1.5
