"""Ablation — frame packing strategy vs bus load and receiver WCRT.

DESIGN.md's COM-layer substrate includes a packing optimiser; this
ablation quantifies the design decision on a register-communication
scenario (8 pending signals, fast/slow interleaved): period-grouped
packing vs naive first-fit.  The derived frame timers make the
difference — a single fast signal drags its whole frame to its rate.
"""

import pytest

from conftest import emit
from repro.analysis import SPNPScheduler, TaskSpec
from repro.com import (
    Signal,
    estimate_bus_load,
    frame_activation_model,
    pack_by_period,
    pack_first_fit,
)
from repro.can import CanBusTiming
from repro.core import TransferProperty
from repro.eventmodels import periodic
from repro.viz import render_table

PEND = TransferProperty.PENDING
BIT_TIME = 0.5


def _scenario():
    signals = []
    models = {}
    for i in range(1, 5):
        fast = Signal(f"fast{i}", 16, PEND)
        slow = Signal(f"slow{i}", 16, PEND)
        signals += [fast, slow]
        models[fast.name] = periodic(100.0, fast.name)
        models[slow.name] = periodic(2000.0, slow.name)
    return signals, models


def _evaluate(builder, signals, models):
    layer = builder(signals, models)
    load = estimate_bus_load(layer, models, bit_time=BIT_TIME)
    # Bus analysis of the packing (skip if overloaded — that IS the
    # result for the naive packing at this bit time).
    timing = CanBusTiming(BIT_TIME)
    specs = []
    for frame in layer.frames.values():
        act = frame_activation_model(frame, models)
        wire = timing.transmission_time_max(frame.payload_bytes)
        specs.append(TaskSpec(frame.name, wire, wire, act,
                              priority=frame.can_id))
    try:
        result = SPNPScheduler().analyze(specs, "CAN")
        worst_frame_wcrt = max(r.r_max for r in
                               result.task_results.values())
    except Exception:
        worst_frame_wcrt = float("inf")
    return load, worst_frame_wcrt


def _sweep():
    signals, models = _scenario()
    return {
        "period-grouped": _evaluate(pack_by_period, signals, models),
        "first-fit": _evaluate(pack_first_fit, signals, models),
    }


def test_packing_strategies(benchmark):
    results = benchmark(_sweep)

    rows = [(name, load,
             "overloaded" if wcrt == float("inf") else f"{wcrt:.1f}")
            for name, (load, wcrt) in results.items()]
    emit("Ablation - frame packing strategy",
         render_table(["strategy", "bus load", "worst frame WCRT"],
                      rows))

    smart_load, smart_wcrt = results["period-grouped"]
    naive_load, _ = results["first-fit"]
    assert smart_load < naive_load
    assert smart_load < 1.0
    assert smart_wcrt < float("inf")
