"""Table 3 — the paper's headline result: WCRT on CPU1, flat vs HEM.

Runs the full compositional analysis twice (standard event models vs
hierarchical event models) and regenerates the WCRT comparison with the
per-task reduction column.  The reproduction target is the *shape*:

* HEM never produces a larger WCRT than the flat baseline,
* the reduction grows toward lower priorities (T1 <= T2 <= T3),
* the low-priority reduction is substantial (double digits).
"""

import pytest

from conftest import emit
from repro.examples_lib.rox08 import CPU_TASKS, analyze_both_variants
from repro.viz import render_table


def test_table3_wcrt_flat_vs_hem(benchmark):
    comparison = benchmark(analyze_both_variants)

    rows = []
    for task, flat, hem, reduction in comparison.rows():
        cet, prio = CPU_TASKS[task]
        label = {1: "High", 2: "Med", 3: "Low"}[prio]
        rows.append((task, f"[{cet:.0f}:{cet:.0f}]", label, flat, hem,
                     f"{reduction:.1f}%"))
    emit("Table 3 - CPU (SPP - scheduled): WCRT flat vs HEM",
         render_table(["Task", "CET", "Prio", "R+ flat", "R+ HEM",
                       "Red."], rows))

    # Shape assertions (see module docstring).
    for task in CPU_TASKS:
        assert comparison.wcrt_hem[task] <= \
            comparison.wcrt_flat[task] + 1e-9
    reductions = [comparison.reduction_percent(t)
                  for t in ("T1", "T2", "T3")]
    assert reductions == sorted(reductions)
    assert reductions[-1] > 30.0
