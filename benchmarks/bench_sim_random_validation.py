"""Validation sweep — randomised stimuli across seeds.

The main validation benchmark drives the paper system with
critical-instant stimuli.  This sweep complements it with *randomised*
arrival patterns (jittered periodic across several seeds and phases):
bounds must hold for every legal stimulus, not just the adversarial one.
Any violation fails the run and prints the offending seed.
"""

import pytest

from conftest import emit
from repro.can import CanBusTiming
from repro.eventmodels import trace_within_bounds
from repro.examples_lib.rox08 import (
    BIT_TIME,
    CPU_TASKS,
    TASK_SIGNAL,
    build_com_layer,
    build_source_models,
    build_system,
)
from repro.sim import GatewayScenario, arrivals_for_models, simulate_gateway
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import render_table

HORIZON = 30_000.0
SEEDS = range(8)


def _run_seed(seed, mode):
    layer = build_com_layer()
    models = build_source_models()
    phases = {name: (seed * 37.0 + i * 113.0) % model.period
              for i, (name, model) in enumerate(models.items())}
    scenario = GatewayScenario(
        layer=layer,
        bus_timing=CanBusTiming(BIT_TIME),
        signal_arrivals=arrivals_for_models(models, HORIZON, mode=mode,
                                            seed=seed, phases=phases),
        cpu_tasks={t: (prio, cet, TASK_SIGNAL[t])
                   for t, (cet, prio) in CPU_TASKS.items()},
    )
    return simulate_gateway(scenario, HORIZON)


def _sweep():
    return {(seed, mode): _run_seed(seed, mode)
            for seed in SEEDS for mode in ("periodic", "random")}


def test_randomised_stimuli_within_bounds(benchmark):
    runs = benchmark(_sweep)

    system = build_system("hem")
    result = analyze_system(system)
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    frame_out = resolver.port("F1")

    worst_tightness = {}
    for (seed, mode), run in runs.items():
        for name in ("F1", "F2", "T1", "T2", "T3"):
            observed = run.responses.worst_case(name)
            bound = result.wcrt(name)
            assert observed <= bound + 1e-6, (seed, mode, name)
            ratio = observed / bound
            if ratio > worst_tightness.get(name, 0.0):
                worst_tightness[name] = ratio
        for label in frame_out.labels:
            assert trace_within_bounds(run.delivered(label),
                                       frame_out.inner(label)), \
                (seed, mode, label)

    rows = [(name, f"{ratio:.0%}")
            for name, ratio in sorted(worst_tightness.items())]
    emit(f"Random-stimuli validation ({len(runs)} runs, horizon "
         f"{HORIZON:g})",
         render_table(["task/frame", "max observed/bound"], rows))
