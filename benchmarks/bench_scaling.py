"""Scaling — analysis cost and HEM benefit vs system size.

Sweeps the synthetic gateway generator over signal counts and frame
counts and reports, per configuration, the global analysis iterations
and the mean flat-vs-HEM WCRT ratio on the receiver CPU.  Demonstrates
that (a) the engine scales to larger frame sets and (b) the HEM benefit
persists (and typically grows) as more signals share a frame.
"""

import pytest

from conftest import emit
from repro.examples_lib.synth import synth_system
from repro.system import analyze_system
from repro.viz import render_table

CONFIGS = [(4, 1), (6, 2), (8, 2), (12, 3)]


def _analyze_config(n_signals, n_frames):
    flat = analyze_system(synth_system(n_signals, n_frames, "flat"))
    hem = analyze_system(synth_system(n_signals, n_frames, "hem"))
    ratios = []
    for i in range(n_signals):
        task = f"T{i + 1}"
        f, h = flat.wcrt(task), hem.wcrt(task)
        ratios.append(h / f)
    return flat, hem, sum(ratios) / len(ratios)


def _sweep():
    return {cfg: _analyze_config(*cfg) for cfg in CONFIGS}


def test_scaling_sweep(benchmark):
    results = benchmark(_sweep)

    rows = []
    for (n_signals, n_frames), (flat, hem, ratio) in results.items():
        rows.append((f"{n_signals} signals / {n_frames} frames",
                     flat.iterations, hem.iterations,
                     f"{100 * (1 - ratio):.0f}%"))
    emit("Scaling - HEM benefit and analysis effort vs system size",
         render_table(["configuration", "iters flat", "iters HEM",
                       "mean WCRT reduction"], rows))

    for (n_signals, n_frames), (flat, hem, ratio) in results.items():
        assert flat.converged and hem.converged
        # HEM never hurts; with >= 4 signals per frame the mean
        # reduction is clearly visible.
        assert ratio <= 1.0 + 1e-9
    # Densest packing shows a substantial mean reduction.
    _, _, densest = results[(12, 3)]
    assert densest < 0.9
