"""End-to-end benchmark of the ``repro.serve`` daemon.

Starts a real daemon (background thread, ephemeral port, temp cache
dir) and measures the served-analysis path over actual HTTP:

* **cold latency** — N distinct analyze requests that each miss the
  result store (p50/p99),
* **warm latency** — the identical requests again, all answered from
  the shared content-addressed store (p50/p99),
* **sustained throughput** — several client threads hammering
  warm-cache requests for a fixed window (requests / second),
* **profiler overhead** — the cold pass repeated with the sampling
  profiler attached at 100 Hz; its wall time may exceed the
  unprofiled pass by at most 10%.

The warm numbers are the daemon's value proposition: they bound the
fixed serving overhead (HTTP parse, queue, dispatch, store lookup) a
client pays on a cache hit.  The gate asserts warm p50 stays under a
generous ceiling and the warm path is no slower than the cold one.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --quick  # CI smoke

Emits ``BENCH_serve.json`` into the repository root (override with
``BENCH_OUT_DIR``) in the ``repro-bench/1`` envelope;
``benchmarks/bench_history.py`` tracks ``serve.throughput`` from it.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_history import envelope  # noqa: E402
from repro.obs.profile import SamplingProfiler  # noqa: E402
from repro.serve import ServeClient, daemon_in_thread  # noqa: E402

BENCH_OUT_DIR = Path(os.environ.get(
    "BENCH_OUT_DIR", Path(__file__).resolve().parent.parent))

#: Warm-hit p50 ceiling (seconds).  A served cache hit is one HTTP
#: round-trip + queue + store lookup; 50ms is an order of magnitude of
#: slack over what a healthy host delivers.
MAX_WARM_P50 = 0.050

#: Ceiling on the wall-clock cost of leaving the 100 Hz sampling
#: profiler attached while serving: profiled/unprofiled ratio of the
#: cold-request pass.
MAX_PROFILER_OVERHEAD = 1.10


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _timed_requests(client, count, max_iterations_base):
    """One analyze request per distinct ``max_iterations`` value (a
    distinct content-addressed key each); returns per-request wall."""
    latencies = []
    for i in range(count):
        t0 = time.perf_counter()
        resp = client.analyze(example="rox08",
                              max_iterations=max_iterations_base + i)
        latencies.append(time.perf_counter() - t0)
        assert resp.ok, resp.error
    return latencies


def _throughput(client_factory, threads, duration):
    """Total warm requests completed by *threads* clients in
    *duration* seconds."""
    stop = time.monotonic() + duration
    counts = [0] * threads
    errors = []

    def worker(slot):
        client = client_factory()
        while time.monotonic() < stop:
            try:
                resp = client.analyze(example="rox08")
                assert resp.ok
                counts[slot] += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return

    pool = [threading.Thread(target=worker, args=(i,))
            for i in range(threads)]
    t0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return sum(counts), elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer samples, shorter window")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    requests = 12 if args.quick else 40
    threads = 2 if args.quick else 4
    window = 1.0 if args.quick else 3.0

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        handle = daemon_in_thread(cache_dir=tmp, workers=args.workers)
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()

            cold = _timed_requests(client, requests, 64)
            warm = _timed_requests(client, requests, 64)
            # Same cold workload again (fresh keys), this time with the
            # sampling profiler attached process-wide at 100 Hz.
            with SamplingProfiler(hz=100):
                profiled = _timed_requests(client, requests, 64 + 10000)
            total, elapsed = _throughput(
                lambda: ServeClient(port=handle.port), threads, window)
            health = client.health()
        finally:
            handle.stop()

    rps = total / elapsed if elapsed else 0.0
    profiler_overhead = sum(profiled) / sum(cold) if sum(cold) else 1.0
    payload = {
        "requests": requests,
        "workers": args.workers,
        "throughput_threads": threads,
        "cold_p50_seconds": _percentile(cold, 0.50),
        "cold_p99_seconds": _percentile(cold, 0.99),
        "warm_p50_seconds": _percentile(warm, 0.50),
        "warm_p99_seconds": _percentile(warm, 0.99),
        "warm_mean_seconds": statistics.fmean(warm),
        "sustained_requests": total,
        "sustained_window_seconds": elapsed,
        "sustained_rps": rps,
        "cache_hit_rate": health["requests"]["cache_hit_rate"],
        "profiled_p50_seconds": _percentile(profiled, 0.50),
        "profiler_overhead_ratio": profiler_overhead,
        "quick": args.quick,
    }

    print(f"serve bench ({requests} requests, {args.workers} workers)")
    print(f"  cold  p50 {payload['cold_p50_seconds'] * 1e3:8.2f} ms   "
          f"p99 {payload['cold_p99_seconds'] * 1e3:8.2f} ms")
    print(f"  warm  p50 {payload['warm_p50_seconds'] * 1e3:8.2f} ms   "
          f"p99 {payload['warm_p99_seconds'] * 1e3:8.2f} ms")
    print(f"  sustained {total} requests in {elapsed:.2f}s "
          f"({rps:.0f} req/s, {threads} client threads)")
    print(f"  daemon cache hit rate "
          f"{payload['cache_hit_rate']:.2%}")
    print(f"  profiler overhead (100 Hz) "
          f"{(profiler_overhead - 1.0) * 100:+.1f}% "
          f"(p50 {payload['profiled_p50_seconds'] * 1e3:.2f} ms)")

    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = BENCH_OUT_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(envelope(payload, "serve"), indent=2,
                              sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    if payload["warm_p50_seconds"] > MAX_WARM_P50:
        failures.append(
            f"warm p50 {payload['warm_p50_seconds'] * 1e3:.1f}ms exceeds "
            f"{MAX_WARM_P50 * 1e3:.0f}ms ceiling")
    if payload["warm_p50_seconds"] > payload["cold_p50_seconds"] * 1.5:
        failures.append("warm p50 slower than 1.5x cold p50 — the "
                        "store is not serving hits")
    if profiler_overhead > MAX_PROFILER_OVERHEAD:
        failures.append(
            f"100 Hz profiler overhead "
            f"{(profiler_overhead - 1.0) * 100:.1f}% exceeds "
            f"{(MAX_PROFILER_OVERHEAD - 1.0) * 100:.0f}% ceiling")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
