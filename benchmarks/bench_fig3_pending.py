"""Figure 3 — frame timing vs signal timing: the pending-signal bound.

The paper's Fig. 3 illustrates the derivation of eqs. (7)/(8): the first
of n pending values may just miss a frame and wait up to δ⁺_f(2); each
frame carries at most one fresh value.  This benchmark regenerates the
construction on the paper's S3/F1 pair and verifies both terms of the
max in eq. (7) become active in their respective regimes, plus checks
the bound against brute-force simulated delivery traces.
"""

import pytest

from conftest import emit
from repro.can import CanBusTiming
from repro.com import pending_transport_model
from repro.eventmodels import or_join, periodic, trace_within_bounds
from repro.examples_lib.rox08 import (
    BIT_TIME,
    TASK_SIGNAL,
    build_com_layer,
    build_source_models,
)
from repro.sim import GatewayScenario, arrivals_for_models, simulate_gateway
from repro.viz import render_table


def _build_bound():
    frame_stream = or_join([periodic(250.0), periodic(450.0),
                            periodic(1000.0)])
    signal = periodic(1000.0, "S3")
    return frame_stream, pending_transport_model(signal, frame_stream,
                                                 name="S3@F1")


def _simulate_deliveries():
    layer = build_com_layer()
    models = build_source_models()
    scenario = GatewayScenario(
        layer=layer, bus_timing=CanBusTiming(BIT_TIME),
        signal_arrivals=arrivals_for_models(models, 60_000.0,
                                            mode="worst"),
        cpu_tasks={})
    run = simulate_gateway(scenario, 60_000.0)
    return run.delivered("S3")


def test_fig3_pending_signal_bound(benchmark):
    (frame_stream, bound) = benchmark(_build_bound)

    rows = [(n, periodic(1000.0).delta_min(n), frame_stream.delta_min(n),
             bound.delta_min(n)) for n in range(2, 9)]
    emit("Figure 3 - pending transport bound (eq. 7)",
         render_table(["n", "signal d-(n)", "frames d-(n)",
                       "pending d-(n)"], rows))

    # eq. (7) regime 1: the signal term minus the max frame gap.
    gap = frame_stream.delta_plus(2)
    assert bound.delta_min(2) == pytest.approx(1000.0 - gap)
    # eq. (8): no guarantee the pending value ever moves again.
    assert bound.delta_plus(2) == float("inf")
    # Conservatism against simulated fresh deliveries: deliveries happen
    # *after* the bus hop, which can compress spacing by the frame's
    # response span — so the check applies Def. 9 with the analysed bus
    # response interval before comparing.
    from repro.core.update import InnerJitterSpacingModel
    from repro.examples_lib.rox08 import build_system
    from repro.system import analyze_system

    result = analyze_system(build_system("hem"))
    f1 = result.task_result("F1")
    k = frame_stream.simultaneity()
    shifted = InnerJitterSpacingModel(bound, f1.r_max - f1.r_min,
                                      f1.r_min, k)
    delivered = _simulate_deliveries()
    assert len(delivered) > 30
    assert trace_within_bounds(delivered, shifted)
