"""Batch engine — parallel speedup and warm-cache hit rate.

Runs the 64-point ``bench`` design space three times:

1. cold, serial backend                     -> baseline wall time
2. cold, 4-worker ``ProcessPoolBackend``    -> parallel wall time
3. immediately resumed rerun of (2)         -> warm cache behaviour

The speedup assertion (>= 2x with 4 workers) only fires when the host
actually exposes >= 4 CPUs to this process; on smaller runners the
parallel numbers are still printed and recorded.  The warm-rerun
assertion (>= 90% cache hit rate, measured through the
``batch.cache.*`` obs counters) holds on any machine.

Emits ``BENCH_batch.json`` into the repository root alongside the
per-test snapshot written by the shared conftest fixture.
"""

import json
import os
import time

from bench_history import envelope
from conftest import BENCH_OUT_DIR, emit
from repro import obs
from repro.batch import BatchRunner, ProcessPoolBackend, ResultStore, SerialBackend
from repro.batch.spaces import bench_space
from repro.viz import render_table

POOL_WORKERS = 4
MIN_SPEEDUP = 2.0
MIN_WARM_HIT_RATE = 0.90


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _run(space, jobs, cache_dir, backend):
    runner = BatchRunner(store=ResultStore(cache_dir), backend=backend)
    t0 = time.perf_counter()
    report = runner.run(jobs)
    return report, time.perf_counter() - t0


def _cache_counters():
    counters = obs.metrics().snapshot()["counters"]
    return (counters.get("batch.cache.hits", 0),
            counters.get("batch.cache.misses", 0))


def test_batch_speedup_and_warm_cache(tmp_path):
    space = bench_space()
    jobs = [space.job_for(p) for p in space.grid()]
    assert len(jobs) >= 64

    serial_report, serial_wall = _run(
        space, jobs, tmp_path / "serial", SerialBackend())
    assert serial_report.ok

    pool_report, pool_wall = _run(
        space, jobs, tmp_path / "pool",
        ProcessPoolBackend(POOL_WORKERS))
    assert pool_report.ok
    assert len(pool_report.executed) == len(jobs)
    speedup = serial_wall / pool_wall if pool_wall else float("inf")

    # Resumed rerun against the pool's cache: everything is served from
    # the store.  Measure the hit rate through the obs counters so the
    # number reflects what a monitoring pipeline would see.
    hits_before, misses_before = _cache_counters()
    warm_report, warm_wall = _run(
        space, jobs, tmp_path / "pool", SerialBackend())
    hits, misses = _cache_counters()
    warm_hits = hits - hits_before
    warm_misses = misses - misses_before
    warm_total = warm_hits + warm_misses
    warm_hit_rate = warm_hits / warm_total if warm_total else 0.0

    cpus = _available_cpus()
    rows = [
        ("serial, cold", f"{serial_wall:.2f}s", "-",
         f"{len(serial_report.executed)} executed"),
        (f"{POOL_WORKERS} workers, cold", f"{pool_wall:.2f}s",
         f"{speedup:.2f}x", f"{len(pool_report.executed)} executed"),
        ("resumed rerun", f"{warm_wall:.2f}s", "-",
         f"{100 * warm_hit_rate:.0f}% cache hits"),
    ]
    emit(f"Batch engine - {len(jobs)}-point sweep ({cpus} CPUs visible)",
         render_table(["run", "wall", "speedup", "notes"], rows))

    payload = {
        "points": len(jobs),
        "cpus_visible": cpus,
        "workers": POOL_WORKERS,
        "serial_wall_seconds": serial_wall,
        "pool_wall_seconds": pool_wall,
        "speedup": speedup,
        "warm_wall_seconds": warm_wall,
        "warm_cache_hits": warm_hits,
        "warm_cache_misses": warm_misses,
        "warm_cache_hit_rate": warm_hit_rate,
        "speedup_asserted": cpus >= POOL_WORKERS,
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    (BENCH_OUT_DIR / "BENCH_batch.json").write_text(
        json.dumps(envelope(payload, "batch"), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")

    assert warm_report.ok
    assert len(warm_report.executed) == 0
    assert warm_hit_rate >= MIN_WARM_HIT_RATE
    if cpus >= POOL_WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{POOL_WORKERS}-worker sweep only {speedup:.2f}x faster "
            f"than serial on a {cpus}-CPU host")
