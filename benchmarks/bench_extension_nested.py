"""Extension — receiver WCRT with 0, 1, and 2 levels of unpacking.

The paper evaluates one packing level.  This extension experiment runs
the two-level gateway (signals → CAN frames → backbone super-frame) and
analyses the final receiver CPU under three activation choices:

* **flat** — every super-frame may activate every task (no hierarchy),
* **frames** — unpack one level: each task bounded by its CAN frame's
  embedded stream,
* **signals** — unpack to the leaves: each task bounded by its own
  signal stream (``unpack_deep``).

The WCRTs must be monotone: signals <= frames <= flat — every level of
hierarchy information recovers precision.
"""

import pytest

from conftest import emit
from repro.analysis import SPPScheduler, TaskSpec
from repro.core import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    hsc_pack,
    unpack_path,
)
from repro.eventmodels import periodic
from repro.viz import render_table

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING

#: Receiver tasks: name -> (CET, priority, leaf path).
CONSUMERS = {
    "ctrl_task": (10.0, 1, "F1/wheel_speed"),
    "temp_task": (18.0, 2, "F1/tyre_temp"),
    "steer_task": (25.0, 3, "F2/steer_angle"),
}


def _delivered_backbone():
    f1 = hsc_pack(
        {"wheel_speed": (periodic(100.0, "wheel_speed"), TRIG),
         "tyre_temp": (periodic(800.0, "tyre_temp"), PEND)},
        timer=periodic(500.0), name="F1")
    f2 = hsc_pack(
        {"steer_angle": (periodic(200.0, "steer_angle"), TRIG)},
        name="F2")
    f1 = apply_operation(f1, BusyWindowOutput(12.0, 40.0))
    f2 = apply_operation(f2, BusyWindowOutput(10.0, 55.0))
    backbone = hsc_pack({"F1": (f1, TRIG), "F2": (f2, TRIG)},
                        timer=periodic(1000.0), name="BB")
    return apply_operation(backbone, BusyWindowOutput(2.0, 9.0))


def _wcrt_for_variant(delivered, variant: str):
    specs = []
    for name, (cet, prio, path) in CONSUMERS.items():
        if variant == "flat":
            model = delivered.outer
        elif variant == "frames":
            model = unpack_path(delivered, path.split("/")[0])
        else:
            model = unpack_path(delivered, path)
        specs.append(TaskSpec(name, cet, cet, model, priority=prio))
    result = SPPScheduler().analyze(specs, "RXCPU")
    return {name: result[name].r_max for name in CONSUMERS}


def _sweep():
    delivered = _delivered_backbone()
    return {variant: _wcrt_for_variant(delivered, variant)
            for variant in ("flat", "frames", "signals")}


def test_extension_nested_unpacking(benchmark):
    sweep = benchmark(_sweep)

    rows = []
    for task in CONSUMERS:
        flat = sweep["flat"][task]
        frames = sweep["frames"][task]
        signals = sweep["signals"][task]
        rows.append((task, flat, frames, signals,
                     f"{100 * (1 - signals / flat):.0f}%"))
    emit("Extension - receiver WCRT vs unpacking depth",
         render_table(["task", "R+ flat", "R+ frames", "R+ signals",
                       "total red."], rows))

    for task in CONSUMERS:
        assert sweep["signals"][task] <= sweep["frames"][task] + 1e-9
        assert sweep["frames"][task] <= sweep["flat"][task] + 1e-9
    # Leaf unpacking recovers a substantial reduction for the
    # low-priority consumer.
    assert sweep["signals"]["steer_task"] < 0.7 * \
        sweep["flat"]["steer_task"]
