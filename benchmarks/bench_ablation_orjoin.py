"""Ablation — the two evaluation strategies for the OR-join (eqs. 3/4).

DESIGN.md calls out that the OR-join is implemented twice: as the exact
pairwise contribution-vector DP and as the η-superposition pseudo-
inverse.  This ablation benchmarks both on the paper's F1 activation
join, asserts they agree, and reports the cost ratio — the data behind
choosing the DP as the default.
"""

import pytest

from conftest import emit
from repro.eventmodels import or_join, or_join_superposition, periodic
from repro.viz import render_table

MODELS = lambda: [periodic(250.0, "S1"), periodic(450.0, "S2"),
                  periodic(1000.0, "timer")]
N_RANGE = range(2, 40)


def _evaluate(join_factory):
    join = join_factory(MODELS())
    total = 0.0
    for n in N_RANGE:
        total += join.delta_min(n)
        dp = join.delta_plus(n)
        total += 0.0 if dp == float("inf") else dp
    return join, total


@pytest.mark.parametrize("strategy,factory", [
    ("pairwise-DP", or_join),
    ("superposition", or_join_superposition),
])
def test_orjoin_strategy(benchmark, strategy, factory):
    join, checksum = benchmark(_evaluate, factory)
    emit(f"Ablation - OR-join via {strategy}",
         render_table(["n", "delta-(n)", "delta+(n)"],
                      [(n, join.delta_min(n), join.delta_plus(n))
                       for n in range(2, 10)]))
    assert checksum > 0


def test_orjoin_strategies_agree():
    exact, _ = _evaluate(or_join)
    sup, _ = _evaluate(or_join_superposition)
    for n in N_RANGE:
        assert sup.delta_min(n) == pytest.approx(exact.delta_min(n),
                                                 abs=1e-5)
        assert sup.delta_plus(n) == pytest.approx(exact.delta_plus(n),
                                                  abs=1e-5)
