"""End-to-end benchmark of the curve-compilation pass.

Times ``analyze_system`` with compilation disabled (lazy per-``n``
chain evaluation, the pre-compilation behaviour) against compilation
enabled (``repro.eventmodels.compile``) on

* the paper's RoX08 gateway case study (flat and hierarchical variants),
* a synthetic wide-fanout COM-layer space (``repro.examples_lib.synth``)
  at three sizes,

verifies that both modes produce **bit-identical** analysis results
(response times, utilizations, iteration counts), and records a
``__slots__`` micro-benchmark of the hot event-model classes.

Usage::

    PYTHONPATH=src python benchmarks/bench_compile.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_compile.py --quick  # CI smoke

Emits ``BENCH_compile.json`` into the repository root (override with
``BENCH_OUT_DIR``).  Exit status is non-zero when the compiled mode is
slower than lazy on the RoX08 case or when any case diverges between
the two modes — the CI smoke job runs ``--quick`` as a regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_history import envelope  # noqa: E402
from repro import obs  # noqa: E402
from repro.eventmodels import compile as emc  # noqa: E402
from repro.eventmodels.curves import CachedModel  # noqa: E402
from repro.eventmodels.operations import TaskOutputModel  # noqa: E402
from repro.eventmodels.standard import StandardEventModel  # noqa: E402
from repro.examples_lib.rox08 import build_system as build_rox08  # noqa: E402
from repro.examples_lib.synth import synth_system  # noqa: E402
from repro.system.propagation import analyze_system  # noqa: E402

BENCH_OUT_DIR = Path(os.environ.get(
    "BENCH_OUT_DIR", Path(__file__).resolve().parent.parent))

#: Synthetic wide-fanout sizes: (signals, frames, base_period).  The base
#: period scales with size to keep CAN utilization below 1 (the default
#: 800 overloads the bus beyond ~20 one-byte signals).
SYNTH_SIZES = [(16, 2, 800.0), (24, 3, 1400.0), (32, 4, 2000.0)]
SYNTH_SIZES_QUICK = [(16, 2, 800.0)]


def result_key(result) -> dict:
    """Canonical, comparable digest of a SystemResult."""
    return {
        "iterations": result.iterations,
        "resources": {
            rn: {
                "utilization": rr.utilization,
                "tasks": {tn: (tr.r_min, tr.r_max)
                          for tn, tr in sorted(rr.task_results.items())},
            }
            for rn, rr in sorted(result.resource_results.items())
        },
    }


def time_case(build, repeats: int):
    """Best-of-``repeats`` wall time for lazy and compiled runs plus the
    result digests and compile-cache statistics."""
    lazy_times, compiled_times = [], []
    lazy_key = compiled_key = None
    cache_stats = {}
    for _ in range(repeats):
        emc.configure(enabled=False)
        system = build()
        t0 = time.perf_counter()
        lazy_key = result_key(analyze_system(system))
        lazy_times.append(time.perf_counter() - t0)

        emc.configure(enabled=True, reset_cache=True)
        system = build()
        t0 = time.perf_counter()
        compiled_key = result_key(analyze_system(system))
        compiled_times.append(time.perf_counter() - t0)
        cache_stats = emc.cache().stats()
    emc.configure(enabled=True)
    return {
        "lazy_seconds": min(lazy_times),
        "compiled_seconds": min(compiled_times),
        "speedup": min(lazy_times) / min(compiled_times),
        "identical": lazy_key == compiled_key,
        "iterations": lazy_key["iterations"],
        "compile_cache": cache_stats,
    }


def slots_microbench(n: int = 50_000) -> dict:
    """Instance-construction micro-benchmark for the ``__slots__``-ed hot
    classes.  ``__slots__`` removes the per-instance ``__dict__``; the
    interesting numbers are construction rate and the confirmation that
    no ``__dict__`` exists to pay for."""
    src = StandardEventModel(period=10.0, jitter=4.0)

    def build_many():
        t0 = time.perf_counter()
        for _ in range(n):
            CachedModel(TaskOutputModel(src, 1.0, 3.0))
        return time.perf_counter() - t0

    build_many()  # warm-up
    seconds = build_many()
    sample = CachedModel(TaskOutputModel(src, 1.0, 3.0))
    return {
        "instances": 2 * n,
        "seconds": seconds,
        "instances_per_second": 2 * n / seconds,
        "has_dict": {
            "TaskOutputModel": hasattr(sample.wrapped, "__dict__"),
            "CachedModel": hasattr(sample, "__dict__"),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: rox08 + smallest synth size, "
                             "single repeat")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per case (best-of)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    sizes = SYNTH_SIZES_QUICK if args.quick else SYNTH_SIZES

    obs.configure(enabled=True, reset=True)
    report = {"quick": args.quick, "repeats": repeats, "cases": {}}
    failures = []

    for variant in ("flat", "hem"):
        case = f"rox08_{variant}"
        report["cases"][case] = time_case(
            lambda v=variant: build_rox08(v), repeats)

    for n_signals, n_frames, base_period in sizes:
        case = f"synth_{n_signals}x{n_frames}"
        report["cases"][case] = time_case(
            lambda n=n_signals, f=n_frames, bp=base_period:
                synth_system(n, f, base_period=bp),
            repeats)

    report["slots_microbench"] = slots_microbench()
    snap = obs.metrics().snapshot()
    report["compile_metrics"] = {
        k: v for k, v in sorted(snap.get("counters", {}).items())
        if k.startswith("compile.")}

    for case, row in report["cases"].items():
        flag = "" if row["identical"] else "  RESULTS DIVERGE"
        print(f"{case:>16}: lazy {row['lazy_seconds']:7.3f}s   "
              f"compiled {row['compiled_seconds']:7.3f}s   "
              f"speedup {row['speedup']:7.1f}x{flag}")
        if not row["identical"]:
            failures.append(f"{case}: lazy and compiled results differ")
    mb = report["slots_microbench"]
    print(f"  slots microbench: {mb['instances']} instances in "
          f"{mb['seconds']:.3f}s ({mb['instances_per_second']:,.0f}/s), "
          f"__dict__ present: {mb['has_dict']}")

    # Regression gate: compiled must not be slower than lazy on rox08.
    for variant in ("flat", "hem"):
        row = report["cases"][f"rox08_{variant}"]
        if row["compiled_seconds"] > row["lazy_seconds"]:
            failures.append(
                f"rox08_{variant}: compiled ({row['compiled_seconds']:.3f}s)"
                f" slower than lazy ({row['lazy_seconds']:.3f}s)")

    report["failures"] = failures
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = BENCH_OUT_DIR / "BENCH_compile.json"
    out.write_text(json.dumps(envelope(report, "compile"),
                              indent=2, sort_keys=True))
    print(f"wrote {out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
