"""Validation experiment — analysis bounds vs discrete-event simulation.

Not a table in the paper, but the check that makes the reproduction
credible: the complete example system is simulated under critical-instant
stimuli and every analytic artefact is compared with observation:

* frame and task worst-case response times (bounds must cover, and the
  tightness gap is reported),
* per-signal delivery streams vs the unpacked inner event models.
"""

import pytest

from conftest import emit
from repro.can import CanBusTiming
from repro.eventmodels import trace_within_bounds
from repro.examples_lib.rox08 import (
    BIT_TIME,
    CPU_TASKS,
    TASK_SIGNAL,
    build_com_layer,
    build_source_models,
    build_system,
)
from repro.sim import GatewayScenario, arrivals_for_models, simulate_gateway
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import render_table

HORIZON = 100_000.0


def _simulate():
    layer = build_com_layer()
    models = build_source_models()
    scenario = GatewayScenario(
        layer=layer,
        bus_timing=CanBusTiming(BIT_TIME),
        signal_arrivals=arrivals_for_models(models, HORIZON, mode="worst"),
        cpu_tasks={t: (prio, cet, TASK_SIGNAL[t])
                   for t, (cet, prio) in CPU_TASKS.items()},
    )
    return simulate_gateway(scenario, HORIZON)


def test_simulation_validates_analysis(benchmark):
    run = benchmark(_simulate)
    system = build_system("hem")
    result = analyze_system(system)

    rows = []
    for name in ("F1", "F2", "T1", "T2", "T3"):
        observed = run.responses.worst_case(name)
        bound = result.wcrt(name)
        rows.append((name, observed, bound,
                     f"{100 * observed / bound:.0f}%"))
        assert observed <= bound + 1e-6, name
    emit("Validation - observed WCRT vs analytic bound",
         render_table(["Task/Frame", "observed", "bound", "tightness"],
                      rows))

    # Delivery streams inside the unpacked inner models.
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    frame_out = resolver.port("F1")
    for label in frame_out.labels:
        delivered = run.delivered(label)
        assert len(delivered) > 50, label
        assert trace_within_bounds(delivered, frame_out.inner(label)), \
            label

    # The stimulus actually exercised the system.
    assert run.responses.count("F1") > 300
