"""Table 1 — the source set of the paper's example system.

Regenerates the source table (name, period, transfer type) and
benchmarks the construction + characteristic-function evaluation of the
source event models (the entry cost of the whole analysis pipeline).
"""

import pytest

from conftest import emit
from repro.core import TransferProperty
from repro.examples_lib.rox08 import SOURCES, build_source_models
from repro.viz import render_table


def _evaluate_models():
    models = build_source_models()
    probe = 0.0
    for model in models.values():
        for n in range(2, 64):
            probe += model.delta_min(n)
        for dt in range(0, 4000, 50):
            probe += model.eta_plus(float(dt))
    return models, probe


def test_table1_sources(benchmark):
    models, _ = benchmark(_evaluate_models)

    rows = [(name, period, prop.value)
            for name, (period, prop) in SOURCES.items()]
    emit("Table 1 - Sources",
         render_table(["Source", "Period", "Type"], rows, floatfmt=".0f"))

    # Shape assertions: the paper's source set.
    assert models["S1"].period == 250.0
    assert models["S2"].period == 450.0
    assert models["S4"].period == 400.0
    assert SOURCES["S3"][1] is TransferProperty.PENDING
    assert sum(1 for _, p in SOURCES.values()
               if p is TransferProperty.TRIGGERING) == 3
