"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation around it) and *prints* the reproduced rows — run with

    pytest benchmarks/ --benchmark-only -s

to see them.  Shape assertions (who wins, orderings, conservatism) are
hard assertions: a benchmark run that produces the wrong shape fails.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a reproduced artefact in a recognisable block."""
    bar = "=" * max(len(title), 24)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
