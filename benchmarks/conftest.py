"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation around it) and *prints* the reproduced rows — run with

    pytest benchmarks/ --benchmark-only -s

to see them.  Shape assertions (who wins, orderings, conservatism) are
hard assertions: a benchmark run that produces the wrong shape fails.

Each benchmark test additionally runs with :mod:`repro.obs` enabled and
records a machine-readable entry (wall time, global iterations to
convergence, event-model cache hit rate, and the full metrics snapshot)
into a single ``BENCH_suite.json`` map in the repository root, keyed by
test name — override the directory with the ``BENCH_OUT_DIR``
environment variable.  The file is read-modify-written per test, so a
partial run (``pytest benchmarks/ -k table3``) updates only the entries
it exercised.  The two standalone engine benchmarks
(``benchmarks/bench_compile.py`` → ``BENCH_compile.json``,
``benchmarks/bench_batch_speedup.py`` → ``BENCH_batch.json``) keep
their own files.  These artefacts seed the repo's performance
trajectory: compare them across commits to catch hot-path regressions.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

import pytest

from bench_history import envelope, unwrap
from repro import obs

BENCH_OUT_DIR = Path(os.environ.get(
    "BENCH_OUT_DIR", Path(__file__).resolve().parent.parent))


def emit(title: str, body: str) -> None:
    """Print a reproduced artefact in a recognisable block."""
    bar = "=" * max(len(title), 24)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def _cache_hit_rate(counters: dict) -> float:
    hits = counters.get("eventmodels.cache.hits", 0)
    misses = counters.get("eventmodels.cache.misses", 0)
    total = hits + misses
    return hits / total if total else 0.0


def _load_suite(path: Path) -> dict:
    """Current contents of the suite map (tolerates a missing or
    corrupt file — benchmarks must not fail on a bad artefact).
    Unwraps the provenance envelope; legacy flat maps pass through."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    suite, _ = unwrap(data)
    return suite if isinstance(suite, dict) else {}


@pytest.fixture(autouse=True)
def bench_metrics(request):
    """Instrument every benchmark test and record it in the suite map."""
    obs.configure(enabled=True, reset=True)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - t0
        obs.configure(enabled=False)
    snapshot = obs.metrics().snapshot()
    counters = snapshot["counters"]
    payload = {
        "test": request.node.nodeid,
        "wall_seconds": wall,
        "iterations_to_convergence":
            snapshot["gauges"].get("propagation.iterations_to_convergence"),
        "global_iterations": counters.get("propagation.iterations", 0),
        "cache_hit_rate": _cache_hit_rate(counters),
        "sim_events": counters.get("sim.events", 0),
        "metrics": snapshot,
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = BENCH_OUT_DIR / "BENCH_suite.json"
    suite = _load_suite(out)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    suite[safe] = payload
    out.write_text(
        json.dumps(envelope(suite, "suite"), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
