"""Unit tests for the batch job abstraction and built-in job kinds."""

import json

import pytest

from repro import SPPScheduler, System, TaskSpec, periodic
from repro._errors import ModelError
from repro.analysis import max_wcet_scaling
from repro.batch import (
    Job,
    JobResult,
    job_kinds,
    run_job,
    taskspec_from_dict,
    taskspec_to_dict,
)
from repro.system import system_to_dict


def small_system(name="small", wcet=10.0):
    s = System(name)
    s.add_source("stim", periodic(100.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (wcet / 2, wcet), ["stim"], priority=1)
    s.add_task("b", "cpu", (5.0, 8.0), ["a"], priority=2)
    return s


class TestJobIdentity:
    def test_key_is_content_hash(self):
        payload = {"system": system_to_dict(small_system())}
        a = Job("analyze", payload)
        b = Job("analyze", json.loads(json.dumps(payload)))
        assert a.key == b.key
        assert len(a.key) == 64

    def test_key_ignores_label_and_timeout(self):
        payload = {"system": system_to_dict(small_system())}
        assert Job("analyze", payload).key == \
            Job("analyze", payload, label="x", timeout=9.0).key

    def test_key_depends_on_kind_and_payload(self):
        payload = {"system": system_to_dict(small_system())}
        other = {"system": system_to_dict(small_system(wcet=12.0))}
        assert Job("analyze", payload).key != Job("simulate", payload).key
        assert Job("analyze", payload).key != Job("analyze", other).key

    def test_key_independent_of_payload_dict_order(self):
        a = Job("analyze", {"system": {"x": 1}, "max_iterations": 9})
        b = Job("analyze", {"max_iterations": 9, "system": {"x": 1}})
        assert a.key == b.key

    def test_empty_kind_rejected(self):
        with pytest.raises(ModelError):
            Job("", {})


class TestJobResultRoundTrip:
    def test_dict_round_trip(self):
        result = JobResult("k", "analyze", "lbl", "ok",
                           data={"wcrt": {"a": 1.5}}, duration=0.25)
        clone = JobResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone == result


class TestBuiltinKinds:
    def test_registry_contains_builtins(self):
        kinds = job_kinds()
        for kind in ("analyze", "wcet_scaling", "task_slack", "simulate"):
            assert kind in kinds

    def test_analyze_matches_direct_engine(self):
        from repro import analyze_system
        system = small_system()
        direct = analyze_system(system)
        result = run_job(Job("analyze",
                             {"system": system_to_dict(system)}))
        assert result.ok
        assert result.data["converged"]
        assert result.data["iterations"] == direct.iterations
        for task in ("a", "b"):
            assert result.data["wcrt"][task] == \
                pytest.approx(direct.wcrt(task))
        assert result.data["worst_wcrt"] == \
            pytest.approx(max(direct.wcrt("a"), direct.wcrt("b")))

    def test_wcet_scaling_matches_direct_search(self):
        tasks = [TaskSpec("hi", 5.0, 5.0, periodic(50.0), priority=1),
                 TaskSpec("lo", 3.0, 3.0, periodic(20.0), priority=2)]
        deadlines = {"hi": 10.0, "lo": 20.0}
        direct = max_wcet_scaling(SPPScheduler(), tasks, deadlines)
        result = run_job(Job("wcet_scaling", {
            "scheduler": {"policy": "spp"},
            "tasks": [taskspec_to_dict(t) for t in tasks],
            "deadlines": deadlines,
        }))
        assert result.ok
        assert result.data["factor"] == pytest.approx(direct, rel=1e-6)

    def test_simulate_reports_sound_bounds(self):
        system = small_system()
        result = run_job(Job("simulate", {
            "system": system_to_dict(system), "horizon": 2000.0}))
        assert result.ok
        assert result.data["sound"]
        for task, observed in result.data["observed"].items():
            assert observed <= result.data["analytic"][task] + 1e-9

    def test_unknown_kind_fails_cleanly(self):
        result = run_job(Job("no_such_kind", {}))
        assert result.status == "failed"
        assert "unknown job kind" in result.error


class TestTaskSpecRoundTrip:
    def test_round_trip(self):
        spec = TaskSpec("t", 2.0, 4.0, periodic(100.0), priority=3,
                        slot=5.0, deadline=80.0, blocking=1.5)
        clone = taskspec_from_dict(
            json.loads(json.dumps(taskspec_to_dict(spec))))
        assert clone.name == spec.name
        assert clone.c_min == spec.c_min
        assert clone.c_max == spec.c_max
        assert clone.priority == spec.priority
        assert clone.slot == spec.slot
        assert clone.deadline == spec.deadline
        assert clone.blocking == spec.blocking
        assert clone.event_model.delta_min(5) == \
            spec.event_model.delta_min(5)
