"""Simulator determinism and bus-serialisation regressions.

Two properties the soak oracle's differential replay depends on:

* identical seeds produce bit-identical event traces — all randomness
  is threaded through explicit ``random.Random`` instances, never the
  global generator;
* a non-preemptive bus never overlaps transmissions, even when a
  completion hook synchronously requests the next frame (the
  double-arbitration bug the first soak validation run caught).
"""

import random

from repro.eventmodels import periodic, periodic_with_jitter
from repro.examples_lib.synth import GraphSpace, synth_task_graph
from repro.sim import Simulator
from repro.sim.canbus import CanBusSim
from repro.sim.gateway import arrivals_for_models
from repro.sim.generators import random_jitter_arrivals
from repro.sim.measure import EventTrace, ResponseRecorder
from repro.sim.system_sim import simulate_system


def _random_run(seed: int):
    system = synth_task_graph(seed, GraphSpace())
    horizon = 4.0 * max(src.model.period
                        for src in system.sources.values())
    rng = random.Random(f"determinism:{seed}")
    arrivals = {
        name: random_jitter_arrivals(
            src.model, horizon, rng=random.Random(rng.getrandbits(32)))
        for name, src in system.sources.items()}
    return simulate_system(system, arrivals, horizon)


class TestSeededDeterminism:
    def test_identical_seeds_identical_traces(self):
        for seed in (0, 3, 8):
            a, b = _random_run(seed), _random_run(seed)
            assert a.trace.streams() == b.trace.streams()
            for stream in a.trace.streams():
                assert a.trace.events(stream) == b.trace.events(stream)
            for task in a.responses.tasks():
                assert a.responses.jobs(task) == b.responses.jobs(task)

    def test_does_not_touch_global_random(self):
        random.seed(1234)
        before = random.random()
        random.seed(1234)
        _random_run(5)
        assert random.random() == before

    def test_arrivals_for_models_seeded(self):
        models = {"a": periodic_with_jitter(100.0, 30.0),
                  "b": periodic(70.0)}
        first = arrivals_for_models(models, 1000.0, mode="random",
                                    seed=42)
        second = arrivals_for_models(models, 1000.0, mode="random",
                                     seed=42)
        assert first == second
        third = arrivals_for_models(models, 1000.0, mode="random",
                                    rng=random.Random(42))
        assert third == first  # explicit rng path matches seed path

    def test_different_seeds_differ(self):
        models = {"a": periodic_with_jitter(100.0, 50.0)}
        assert (arrivals_for_models(models, 2000.0, mode="random",
                                    seed=1)
                != arrivals_for_models(models, 2000.0, mode="random",
                                       seed=2))


class TestBusSerialisation:
    def test_completion_hook_chain_never_overlaps(self):
        """A completion hook that immediately requests the successor
        frame must not let _finish's re-arbitration start a second,
        concurrent transmission."""
        sim = Simulator()
        responses = ResponseRecorder()
        trace = EventTrace()
        bus = CanBusSim(sim, recorder=responses,
                        require_unique_ids=False)

        def chain(frame, instance, time):
            trace.record("done.B", time)

        bus.add_frame("B", 2, 2.0, on_complete=chain)
        bus.add_frame(
            "A", 1, 3.0,
            on_complete=lambda f, i, t: (trace.record("done.A", t),
                                         bus.request("B")))
        # Saturate: many A requests queued while each completion
        # immediately enqueues a B — the exact shape of the soak
        # violation (chained tasks on one SPNP resource).
        for t in (0.0, 0.5, 1.0, 1.5, 2.0):
            sim.schedule(t, lambda: bus.request("A"))
        sim.run_until(60.0)

        completions = sorted(trace.events("done.A")
                             + trace.events("done.B"))
        assert len(completions) == 10
        # Every pair of consecutive completions must be separated by at
        # least the tx time of the later one: transmissions serialise.
        labelled = sorted(
            [(t, 3.0) for t in trace.events("done.A")]
            + [(t, 2.0) for t in trace.events("done.B")])
        for (t_prev, _), (t_next, tx_next) in zip(labelled,
                                                  labelled[1:]):
            assert t_next - t_prev >= tx_next - 1e-9, (
                f"overlapping transmissions: completion at {t_next} "
                f"only {t_next - t_prev} after {t_prev} "
                f"(tx {tx_next})")

    def test_same_instant_arrival_does_not_preempt_finished_job(self):
        """CPU boundary case: t0 (P=10, C=1) arrives at exactly the
        instant t1 (P=11, C=9) finishes its critical-instant job
        (t=10).  The arrival must not 'preempt' zero remaining work
        and stretch t1's response to 11 — the busy-window analysis
        counts interference over half-open windows, so its WCRT of 10
        must bound the simulation."""
        from repro.analysis.interface import TaskSpec
        from repro.analysis.spp import SPPScheduler
        from repro.eventmodels import periodic
        from repro.sim.cpu import SppCpuSim
        from repro.sim.generators import worst_case_arrivals

        specs = [TaskSpec("t0", 1.0, 1.0, periodic(10.0), priority=0),
                 TaskSpec("t1", 9.0, 9.0, periodic(11.0), priority=1)]
        results = SPPScheduler().analyze(specs, "cpu")

        sim = Simulator()
        rec = ResponseRecorder()
        cpu = SppCpuSim(sim, rec)
        for i, spec in enumerate(specs):
            cpu.add_task(spec.name, i, spec.c_max)
        for spec in specs:
            for t in worst_case_arrivals(spec.event_model, 500.0):
                sim.schedule(t, lambda _n=spec.name: cpu.activate(_n))
        sim.run_until(1000.0)

        for spec in specs:
            assert rec.worst_case(spec.name) <= \
                results[spec.name].r_max + 1e-6, spec.name

    def test_graph_sample_seed8_envelope_regression(self):
        """The original soak finding: seed-8 graph, out.T3_3 events
        packed tighter than the task's own c_min under random
        arrivals.  Stays fixed."""
        from repro.system.propagation import analyze_system, output_models

        run = _random_run(8)
        system = synth_task_graph(8, GraphSpace())
        result = analyze_system(system)
        bounds = output_models(system, result)
        for task, bound in bounds.items():
            assert run.trace.check_conservative(
                f"out.{task}", bound, n_max=64), (
                f"stream out.{task} violates its propagated envelope")
