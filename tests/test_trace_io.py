"""Unit tests for trace I/O: CSV event traces and the span tracer's
thread-safety / JSONL round-trip guarantees."""

import io
import threading

import pytest

from repro._errors import ModelError
from repro.eventmodels import (
    dump_trace_csv,
    load_trace_csv,
    model_from_trace,
    periodic,
    trace_within_bounds,
)
from repro.obs import Tracer, read_jsonl, tracer_to_jsonl


CSV_TEXT = """time,stream,extra
0.0,F1,x
100.0,F1,y
12.5,F2,z
50.0,F1,
"""


class TestLoadTraceCsv:
    def test_basic_parse(self):
        traces = load_trace_csv(io.StringIO(CSV_TEXT))
        assert traces["F1"] == [0.0, 50.0, 100.0]  # sorted
        assert traces["F2"] == [12.5]

    def test_extra_columns_ignored(self):
        traces = load_trace_csv(io.StringIO(CSV_TEXT))
        assert set(traces) == {"F1", "F2"}

    def test_missing_column_rejected(self):
        with pytest.raises(ModelError):
            load_trace_csv(io.StringIO("a,b\n1,2\n"))

    def test_bad_timestamp_rejected(self):
        bad = "time,stream\nnot-a-number,F1\n"
        with pytest.raises(ModelError) as err:
            load_trace_csv(io.StringIO(bad))
        assert "line 2" in str(err.value)

    def test_custom_columns(self):
        text = "t,frame\n5.0,A\n"
        traces = load_trace_csv(io.StringIO(text), time_column="t",
                                stream_column="frame")
        assert traces == {"A": [5.0]}

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        dump_trace_csv({"F1": [0.0, 100.0], "F2": [55.5]}, path)
        traces = load_trace_csv(path)
        assert traces == {"F1": [0.0, 100.0], "F2": [55.5]}


class TestDumpTraceCsv:
    def test_rows_sorted_by_time(self):
        buffer = io.StringIO()
        dump_trace_csv({"B": [30.0], "A": [10.0, 50.0]}, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "time,stream"
        assert [ln.split(",")[1] for ln in lines[1:]] == ["A", "B", "A"]

    def test_pipeline_to_model(self):
        # Export a simulated trace, re-import, build a model, check it
        # against the analytic bound — the full logging workflow.
        buffer = io.StringIO()
        events = [0.0, 100.0, 200.0, 300.0, 400.0]
        dump_trace_csv({"F1": events}, buffer)
        buffer.seek(0)
        traces = load_trace_csv(buffer)
        observed = model_from_trace(traces["F1"])
        assert observed.delta_min(2) == 100.0
        assert trace_within_bounds(traces["F1"], periodic(100.0))


class TestTracerThreadSafety:
    """The tracer keeps one span stack per thread: concurrent nested
    spans must neither interleave parents across threads nor lose
    spans, and the result must survive a JSONL round-trip."""

    THREADS = 8
    DEPTH = 5
    REPEATS = 20

    def _worker(self, tracer, barrier, errors):
        try:
            barrier.wait()
            for _ in range(self.REPEATS):
                opened = []
                for level in range(self.DEPTH):
                    span = tracer.start(f"level{level}",
                                        thread=threading.get_ident())
                    # the parent must be this thread's previous span,
                    # never another thread's
                    expected = opened[-1].span_id if opened else None
                    assert span.parent_id == expected
                    opened.append(span)
                for span in reversed(opened):
                    assert tracer.current() is span
                    span.finish()
                assert tracer.current() is None
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def test_concurrent_nested_spans(self):
        tracer = Tracer()
        barrier = threading.Barrier(self.THREADS)
        errors = []
        threads = [threading.Thread(target=self._worker,
                                    args=(tracer, barrier, errors))
                   for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        spans = tracer.spans()
        assert len(spans) == self.THREADS * self.REPEATS * self.DEPTH
        # span ids are unique despite concurrent allocation
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)
        # every span's recorded parent lives on the same thread
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id
        # each thread contributed a full, correctly-shaped tree
        by_thread = {}
        for span in spans:
            by_thread.setdefault(span.thread_id, []).append(span)
        assert len(by_thread) == self.THREADS
        for spans_of_thread in by_thread.values():
            assert len(spans_of_thread) == self.REPEATS * self.DEPTH
            roots = [s for s in spans_of_thread if s.parent_id is None]
            assert len(roots) == self.REPEATS

    def test_jsonl_round_trip_preserves_thread_identity(self, tmp_path):
        tracer = Tracer()
        barrier = threading.Barrier(self.THREADS)
        errors = []
        threads = [threading.Thread(target=self._worker,
                                    args=(tracer, barrier, errors))
                   for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        path = tmp_path / "threads.jsonl"
        tracer_to_jsonl(tracer, str(path))
        records = read_jsonl(str(path))
        assert len(records) == len(tracer.spans())
        by_id = {r["span_id"]: r for r in records}
        for record in records:
            assert record["thread_id"] == \
                record["attributes"]["thread"]
            if record["parent_id"] is not None:
                parent = by_id[record["parent_id"]]
                assert parent["thread_id"] == record["thread_id"]
                assert parent["start"] <= record["start"]
                assert parent["end"] >= record["end"]
