"""Unit tests for trace CSV import/export."""

import io

import pytest

from repro._errors import ModelError
from repro.eventmodels import (
    dump_trace_csv,
    load_trace_csv,
    model_from_trace,
    periodic,
    trace_within_bounds,
)


CSV_TEXT = """time,stream,extra
0.0,F1,x
100.0,F1,y
12.5,F2,z
50.0,F1,
"""


class TestLoadTraceCsv:
    def test_basic_parse(self):
        traces = load_trace_csv(io.StringIO(CSV_TEXT))
        assert traces["F1"] == [0.0, 50.0, 100.0]  # sorted
        assert traces["F2"] == [12.5]

    def test_extra_columns_ignored(self):
        traces = load_trace_csv(io.StringIO(CSV_TEXT))
        assert set(traces) == {"F1", "F2"}

    def test_missing_column_rejected(self):
        with pytest.raises(ModelError):
            load_trace_csv(io.StringIO("a,b\n1,2\n"))

    def test_bad_timestamp_rejected(self):
        bad = "time,stream\nnot-a-number,F1\n"
        with pytest.raises(ModelError) as err:
            load_trace_csv(io.StringIO(bad))
        assert "line 2" in str(err.value)

    def test_custom_columns(self):
        text = "t,frame\n5.0,A\n"
        traces = load_trace_csv(io.StringIO(text), time_column="t",
                                stream_column="frame")
        assert traces == {"A": [5.0]}

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        dump_trace_csv({"F1": [0.0, 100.0], "F2": [55.5]}, path)
        traces = load_trace_csv(path)
        assert traces == {"F1": [0.0, 100.0], "F2": [55.5]}


class TestDumpTraceCsv:
    def test_rows_sorted_by_time(self):
        buffer = io.StringIO()
        dump_trace_csv({"B": [30.0], "A": [10.0, 50.0]}, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "time,stream"
        assert [ln.split(",")[1] for ln in lines[1:]] == ["A", "B", "A"]

    def test_pipeline_to_model(self):
        # Export a simulated trace, re-import, build a model, check it
        # against the analytic bound — the full logging workflow.
        buffer = io.StringIO()
        events = [0.0, 100.0, 200.0, 300.0, 400.0]
        dump_trace_csv({"F1": events}, buffer)
        buffer.seek(0)
        traces = load_trace_csv(buffer)
        observed = model_from_trace(traces["F1"])
        assert observed.delta_min(2) == 100.0
        assert trace_within_bounds(traces["F1"], periodic(100.0))
