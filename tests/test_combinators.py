"""Unit tests for the bound combinators (intersection / union)."""

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.eventmodels import (
    check_consistent,
    intersect_bounds,
    model_from_trace,
    periodic,
    periodic_with_jitter,
    sporadic,
    union_bounds,
    verify_dominates,
)


class TestIntersection:
    def test_refines_jitter(self):
        loose = periodic_with_jitter(100.0, 50.0)
        tight = periodic_with_jitter(100.0, 10.0)
        meet = intersect_bounds([loose, tight])
        for n in range(2, 12):
            assert meet.delta_min(n) == tight.delta_min(n)
            assert meet.delta_plus(n) == tight.delta_plus(n)

    def test_sporadic_meets_periodic(self):
        # Sporadic bound (no delta+ info) refined by periodic knowledge.
        meet = intersect_bounds([sporadic(100.0), periodic(100.0)])
        assert meet.delta_plus(2) == 100.0

    def test_trace_refines_datasheet(self):
        datasheet = periodic_with_jitter(100.0, 60.0)
        trace = model_from_trace([0, 95, 200, 295, 400, 500])
        meet = intersect_bounds([datasheet, trace])
        assert meet.delta_min(2) >= trace.delta_min(2)
        assert verify_dominates(datasheet, meet, n_max=5)

    def test_contradiction_detected(self):
        a = periodic(100.0)             # delta+(2) = 100
        b = periodic(150.0)             # delta-(2) = 150 > 100
        meet = intersect_bounds([a, b])
        with pytest.raises(ModelError):
            meet.delta_min(2)

    def test_check_consistent(self):
        assert check_consistent([periodic_with_jitter(100.0, 20.0),
                                 periodic_with_jitter(100.0, 5.0)])
        assert not check_consistent([periodic(100.0), periodic(150.0)])

    def test_single_passthrough(self):
        p = periodic(10.0)
        assert intersect_bounds([p]) is p

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            intersect_bounds([])


class TestUnion:
    def test_covers_both_modes(self):
        slow = periodic(200.0)
        fast = periodic(100.0)
        join = union_bounds([slow, fast])
        assert verify_dominates(join, slow, n_max=24)
        assert verify_dominates(join, fast, n_max=24)

    def test_union_values(self):
        join = union_bounds([periodic_with_jitter(100.0, 30.0),
                             periodic(100.0)])
        assert join.delta_min(2) == 70.0
        assert join.delta_plus(2) == 130.0

    def test_consistency(self):
        join = union_bounds([periodic(100.0), periodic(130.0)])
        assert_delta_consistent(join, n_max=24)

    def test_single_passthrough(self):
        p = periodic(10.0)
        assert union_bounds([p]) is p

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            union_bounds([])


class TestLatticeLaws:
    def test_meet_below_join(self):
        a = periodic_with_jitter(100.0, 30.0)
        b = periodic_with_jitter(100.0, 10.0)
        meet = intersect_bounds([a, b])
        join = union_bounds([a, b])
        assert verify_dominates(join, meet, n_max=24)

    def test_idempotent(self):
        a = periodic_with_jitter(100.0, 30.0)
        meet = intersect_bounds([a, a])
        join = union_bounds([a, a])
        for n in range(2, 12):
            assert meet.delta_min(n) == a.delta_min(n)
            assert join.delta_plus(n) == a.delta_plus(n)
