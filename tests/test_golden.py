"""Golden regression tests: pinned analysis numbers.

These values were produced by the initial validated implementation
(cross-checked against hand calculations and the discrete-event
simulator).  If an intentional algorithm change moves them, update the
constants here *and* EXPERIMENTS.md together.
"""

import pytest

from repro.examples_lib.rox08 import analyze_both_variants, build_system
from repro.system import analyze_system

#: Table 3 — WCRT with flat event models.
GOLDEN_FLAT = {"T1": 24.0, "T2": 120.5, "T3": 377.5}
#: Table 3 — WCRT with hierarchical event models.
GOLDEN_HEM = {"T1": 24.0, "T2": 80.0, "T3": 120.0}
#: Table 2 — bus WCRT of the two frames.
GOLDEN_BUS = {"F1": 180.0, "F2": 180.0}


@pytest.fixture(scope="module")
def comparison():
    return analyze_both_variants()


class TestGoldenRox08:
    def test_flat_wcrt(self, comparison):
        for task, expected in GOLDEN_FLAT.items():
            assert comparison.wcrt_flat[task] == pytest.approx(expected)

    def test_hem_wcrt(self, comparison):
        for task, expected in GOLDEN_HEM.items():
            assert comparison.wcrt_hem[task] == pytest.approx(expected)

    def test_bus_wcrt(self):
        result = analyze_system(build_system("hem"))
        for frame, expected in GOLDEN_BUS.items():
            assert result.wcrt(frame) == pytest.approx(expected)

    def test_reductions(self, comparison):
        assert comparison.reduction_percent("T2") == pytest.approx(
            33.6, abs=0.1)
        assert comparison.reduction_percent("T3") == pytest.approx(
            68.2, abs=0.1)

    def test_eta_plus_fig4_anchor_points(self):
        # Figure 4 anchors: curve values at dt = 2000.
        from repro.system.propagation import _StreamResolver

        system = build_system("hem")
        result = analyze_system(system)
        responses = {}
        for rr in result.resource_results.values():
            responses.update(rr.task_results)
        resolver = _StreamResolver(system, responses, {})
        out = resolver.port("F1")
        assert out.outer.eta_plus(2000.0) == 17
        assert out.inner("S1").eta_plus(2000.0) == 9
        assert out.inner("S2").eta_plus(2000.0) == 5
        assert out.inner("S3").eta_plus(2000.0) == 3
