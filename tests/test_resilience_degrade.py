"""Degraded analysis: health maps, widening, certificates, and the
strict-vs-degraded conservativeness contract."""

import math

import pytest

from repro import AnalysisOutcome, analyze_system
from repro._errors import (
    ConvergenceError,
    ModelError,
    NotSchedulableError,
    UnboundedStreamError,
)
from repro.examples_lib.rox08 import build_system
from repro.examples_lib.stress import (
    OSCILLATING_RESOURCE,
    OVERLOADED_HEALTHY_TASKS,
    OVERLOADED_RESOURCE,
    build_oscillating,
    build_overloaded,
)
from repro.resilience import (
    HEALTH_DIVERGED,
    HEALTH_OK,
    HEALTH_OVERLOADED,
    UnboundedEnvelope,
)
from repro.timebase import EPS


class TestOnFailureArgument:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelError):
            analyze_system(build_system("hem"), on_failure="shrug")

    def test_raise_mode_unchanged(self):
        with pytest.raises(NotSchedulableError):
            analyze_system(build_overloaded())

    def test_degrade_returns_outcome_on_healthy_system(self):
        outcome = analyze_system(build_system("hem"),
                                 on_failure="degrade")
        assert isinstance(outcome, AnalysisOutcome)
        assert outcome.ok() and not outcome.degraded
        assert all(h == HEALTH_OK for h in outcome.health.values())
        assert not outcome.certificates


class TestOverloadDegradation:
    def test_overloaded_resource_quarantined(self):
        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        assert outcome.converged
        assert outcome.health[OVERLOADED_RESOURCE] == HEALTH_OVERLOADED
        health = outcome.resources[OVERLOADED_RESOURCE]
        assert health.error_type == "NotSchedulableError"
        assert health.context.get("utilization", 0) > 1.0

    def test_healthy_neighbours_still_bounded(self):
        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        for task in OVERLOADED_HEALTHY_TASKS:
            wcrt = outcome.wcrt(task)
            assert wcrt is not None and math.isfinite(wcrt)
        assert math.isinf(outcome.wcrt("T_hot"))

    def test_certificate_documents_widening(self):
        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        cert = outcome.certificate_for("T_hot")
        assert cert is not None
        assert cert.reason == HEALTH_OVERLOADED
        assert cert.d2 == pytest.approx(110.0)  # == T_hot's c_min
        assert "superadditivity" in cert.argument

    def test_downstream_wcrt_uses_widened_model(self):
        # sporadic(110) is slower than the true 100-period input, so
        # T_down's degraded bound must be at least its lone-task bound.
        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        assert outcome.wcrt("T_down") >= 20.0 - EPS

    def test_outcome_serialises(self):
        import json

        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["health"][OVERLOADED_RESOURCE] == \
            HEALTH_OVERLOADED
        assert payload["tasks"]["T_hot"]["r_max"] == "inf"
        assert payload["tasks"]["T_down"]["degraded"] is False


class TestDivergenceDegradation:
    def test_diverging_resource_frozen(self):
        outcome = analyze_system(build_oscillating(),
                                 on_failure="degrade")
        assert outcome.converged
        assert outcome.health[OSCILLATING_RESOURCE] == HEALTH_DIVERGED
        assert outcome.health["CPU2"] == HEALTH_OK
        assert outcome.verdicts  # the guard fired

    def test_frozen_certificates_carry_interval(self):
        outcome = analyze_system(build_oscillating(),
                                 on_failure="degrade")
        certs = [c for c in outcome.certificates
                 if c.reason == HEALTH_DIVERGED]
        assert certs
        for cert in certs:
            lo, hi = cert.frozen_interval
            assert 0 <= lo <= hi

    def test_healthy_resource_converges(self):
        outcome = analyze_system(build_oscillating(),
                                 on_failure="degrade")
        wcrt = outcome.wcrt("T_b")
        assert wcrt is not None and math.isfinite(wcrt)

    def test_control_case_converges_cleanly(self):
        outcome = analyze_system(build_oscillating(gain_c=30.0),
                                 on_failure="degrade")
        assert outcome.ok() and not outcome.verdicts


class TestConservativenessContract:
    """Degraded WCRTs dominate strict WCRTs where strict completes."""

    def test_degraded_matches_strict_on_healthy_system(self):
        for variant in ("hem", "flat"):
            system = build_system(variant)
            strict = analyze_system(system)
            outcome = analyze_system(build_system(variant),
                                     on_failure="degrade")
            for rr in strict.resource_results.values():
                for name, tr in rr.task_results.items():
                    assert outcome.wcrt(name) >= tr.r_max - EPS

    def test_degraded_dominates_partial_strict(self):
        # Strict analysis of the overloaded example dies, but its
        # healthy input stage can be analysed in isolation; degraded
        # bounds must dominate those local bounds too.
        from repro import SPPScheduler, System, periodic

        iso = System("input-stage")
        iso.add_source("S_in", periodic(100.0))
        iso.add_source("S_side", periodic(400.0))
        iso.add_resource("CPU_IN", SPPScheduler())
        iso.add_task("T_in", "CPU_IN", (8.0, 10.0), ["S_in"], priority=1)
        iso.add_task("T_side", "CPU_IN", (20.0, 25.0), ["S_side"],
                     priority=2)
        strict = analyze_system(iso)
        outcome = analyze_system(build_overloaded(),
                                 on_failure="degrade")
        for task in ("T_in", "T_side"):
            assert outcome.wcrt(task) >= strict.wcrt(task) - EPS


class TestUnboundedEnvelope:
    def test_zero_cmin_widening_is_unbounded(self):
        from repro.resilience import widen_overload
        from repro.system.model import Task

        task = Task("t", "cpu", 0.0, 5.0, ["s"])
        model, cert = widen_overload(task, HEALTH_OVERLOADED)
        assert isinstance(model, UnboundedEnvelope)
        assert cert.d2 is None

    def test_envelope_poisons_consumers(self):
        env = UnboundedEnvelope("t")
        assert env.delta_min(1000) == 0.0
        with pytest.raises(UnboundedStreamError):
            env.eta_plus(10.0)


class TestStructuralErrorsStillRaise:
    def test_validate_errors_not_swallowed(self):
        from repro import SPPScheduler, System, periodic

        system = System("broken")
        system.add_source("s", periodic(100.0))
        system.add_resource("cpu", SPPScheduler())
        system.add_task("t", "cpu", (1.0, 2.0), ["nope"], priority=1)
        with pytest.raises(ModelError):
            analyze_system(system, on_failure="degrade")


class TestObsSurface:
    def test_quarantine_counters_and_report_footer(self):
        from repro import obs
        from repro.viz import ConvergenceReport

        obs.configure(enabled=True, reset=True)
        try:
            analyze_system(build_overloaded(), on_failure="degrade")
            counters = obs.metrics().snapshot()["counters"]
            assert counters.get("resilience.quarantines") == 1
            assert counters.get("resilience.widenings") == 1
            report = ConvergenceReport.from_tracer(
                obs.get_tracer(), registry=obs.metrics())
            rendered = report.render()
            assert "resilience:" in rendered
            assert "resilience.quarantines=1" in rendered
        finally:
            obs.disable(reset=True)

    def test_divergence_counter_in_degrade(self):
        from repro import obs

        obs.configure(enabled=True, reset=True)
        try:
            analyze_system(build_oscillating(), on_failure="degrade")
            counters = obs.metrics().snapshot()["counters"]
            assert counters.get("propagation.divergence_detected", 0) \
                >= 1
        finally:
            obs.disable(reset=True)


class TestConvergenceErrorPaths:
    """Satellite: the ConvergenceError surface, strict and degraded."""

    def test_strict_hits_iteration_limit_without_guard(self):
        with pytest.raises(ConvergenceError) as err:
            analyze_system(build_oscillating(), guard=False)
        assert err.value.iterations == 64
        assert err.value.context.get("system") == "stress-oscillating"

    def test_strict_guard_aborts_early_with_verdict(self):
        with pytest.raises(ConvergenceError) as err:
            analyze_system(build_oscillating())
        assert err.value.verdict == "monotone_growth"
        assert err.value.iterations < 64
        assert err.value.residuals  # trend evidence attached

    def test_degraded_converges_after_widening(self):
        outcome = analyze_system(build_oscillating(),
                                 on_failure="degrade")
        assert outcome.converged and outcome.degraded

    def test_degraded_bounds_dominate_control(self):
        # The converging control case lower-bounds the degraded run of
        # the diverging one for the healthy CPU2 task.
        control = analyze_system(build_oscillating(gain_c=30.0))
        outcome = analyze_system(build_oscillating(),
                                 on_failure="degrade")
        assert outcome.wcrt("T_b") >= control.wcrt("T_b") - EPS
