"""Unit tests for the periodic resource model (hierarchical scheduling)."""

import pytest

from repro._errors import ModelError, NotSchedulableError
from repro.analysis import (
    HierarchicalSPPScheduler,
    PeriodicResource,
    SPPScheduler,
    TaskSpec,
)
from repro.eventmodels import periodic


class TestPeriodicResource:
    def test_validation(self):
        with pytest.raises(ModelError):
            PeriodicResource(0.0, 1.0)
        with pytest.raises(ModelError):
            PeriodicResource(10.0, 0.0)
        with pytest.raises(ModelError):
            PeriodicResource(10.0, 11.0)

    def test_bandwidth(self):
        assert PeriodicResource(100.0, 25.0).bandwidth == 0.25

    def test_sbf_blackout(self):
        # Gamma(100, 40): worst-case blackout 2*(100-40) = 120.
        server = PeriodicResource(100.0, 40.0)
        assert server.sbf(120.0) == 0.0
        assert server.sbf(119.0) == 0.0

    def test_sbf_first_budget(self):
        server = PeriodicResource(100.0, 40.0)
        assert server.sbf(130.0) == pytest.approx(10.0)
        assert server.sbf(160.0) == pytest.approx(40.0)

    def test_sbf_plateau_between_budgets(self):
        server = PeriodicResource(100.0, 40.0)
        assert server.sbf(200.0) == pytest.approx(40.0)
        assert server.sbf(220.0) == pytest.approx(40.0)

    def test_sbf_second_budget(self):
        server = PeriodicResource(100.0, 40.0)
        assert server.sbf(260.0) == pytest.approx(80.0)

    def test_sbf_monotone(self):
        server = PeriodicResource(50.0, 17.0)
        prev = -1.0
        t = 0.0
        while t < 500.0:
            val = server.sbf(t)
            assert val >= prev - 1e-9
            prev = val
            t += 3.7

    def test_full_bandwidth_degenerates_to_dedicated(self):
        server = PeriodicResource(100.0, 100.0)
        for t in (0.0, 1.0, 50.0, 1000.0):
            assert server.sbf(t) == pytest.approx(t)

    def test_sbf_inverse_roundtrip(self):
        server = PeriodicResource(100.0, 40.0)
        for demand in (1.0, 10.0, 40.0, 41.0, 95.0, 200.0):
            t = server.sbf_inverse(demand)
            assert server.sbf(t) == pytest.approx(demand)
            assert server.sbf(t - 1e-6) < demand

    def test_lsbf_lower_bounds_sbf(self):
        server = PeriodicResource(100.0, 40.0)
        t = 0.0
        while t < 1000.0:
            assert server.lsbf(t) <= server.sbf(t) + 1e-9
            t += 13.1

    def test_as_task_spec(self):
        server = PeriodicResource(100.0, 40.0)
        spec = server.as_task_spec(periodic(100.0), "srv", priority=2)
        assert spec.c_max == 40.0
        assert spec.priority == 2


class TestHierarchicalSPP:
    def _tasks(self):
        return [
            TaskSpec("a", 5.0, 5.0, periodic(100.0), priority=1),
            TaskSpec("b", 10.0, 10.0, periodic(200.0), priority=2),
        ]

    def test_bandwidth_overload_rejected(self):
        server = PeriodicResource(100.0, 5.0)  # 5% for ~10% demand
        with pytest.raises(NotSchedulableError):
            HierarchicalSPPScheduler(server).analyze(self._tasks(), "p")

    def test_wcrt_includes_blackout(self):
        server = PeriodicResource(100.0, 40.0)
        result = HierarchicalSPPScheduler(server).analyze(
            self._tasks(), "p")
        # Highest-priority task: 5 units of demand served no earlier
        # than blackout 120 + 5.
        assert result["a"].r_max == pytest.approx(125.0)

    def test_lower_priority_adds_interference(self):
        server = PeriodicResource(100.0, 40.0)
        result = HierarchicalSPPScheduler(server).analyze(
            self._tasks(), "p")
        # b: own 10 + one 'a' (5) needs sbf >= 15 -> w = 135, but a
        # second 'a' activation at t = 100 lands inside that window:
        # demand 20 -> w = 120 + 20 = 140 (stable).
        assert result["b"].r_max == pytest.approx(140.0)

    def test_full_budget_matches_dedicated_spp(self):
        dedicated = SPPScheduler().analyze(self._tasks(), "cpu")
        server = PeriodicResource(50.0, 50.0)
        shared = HierarchicalSPPScheduler(server).analyze(
            self._tasks(), "p")
        for name in ("a", "b"):
            assert shared[name].r_max == pytest.approx(
                dedicated[name].r_max)

    def test_smaller_budget_never_faster(self):
        big = HierarchicalSPPScheduler(
            PeriodicResource(100.0, 80.0)).analyze(self._tasks(), "p")
        small = HierarchicalSPPScheduler(
            PeriodicResource(100.0, 30.0)).analyze(self._tasks(), "p")
        for name in ("a", "b"):
            assert small[name].r_max >= big[name].r_max
