"""EDF simulator tests (incl. conservatism) and the CAN error model."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro._errors import ModelError
from repro.analysis import (
    CanErrorModel,
    EDFScheduler,
    SPNPScheduler,
    TaskSpec,
)
from repro.can import frame_bits_max
from repro.eventmodels import periodic
from repro.sim import (
    EdfCpuSim,
    ResponseRecorder,
    Simulator,
    worst_case_arrivals,
)


def make_edf():
    sim = Simulator()
    rec = ResponseRecorder()
    return sim, rec, EdfCpuSim(sim, rec)


class TestEdfSim:
    def test_earliest_deadline_runs_first(self):
        sim, rec, cpu = make_edf()
        cpu.add_task("urgent", deadline=5.0, exec_time=2.0)
        cpu.add_task("lazy", deadline=100.0, exec_time=4.0)
        sim.schedule(0.0, lambda: cpu.activate("lazy"))
        sim.schedule(1.0, lambda: cpu.activate("urgent"))
        sim.run_until(100.0)
        # urgent (deadline 6) preempts lazy (deadline 100): lazy runs
        # 0-1, urgent 1-3, lazy resumes 3-6.
        assert rec.jobs("urgent") == [(1.0, 3.0)]
        assert rec.jobs("lazy") == [(0.0, 6.0)]

    def test_no_preemption_by_later_deadline(self):
        sim, rec, cpu = make_edf()
        cpu.add_task("a", deadline=10.0, exec_time=4.0)
        cpu.add_task("b", deadline=50.0, exec_time=2.0)
        sim.schedule(0.0, lambda: cpu.activate("a"))
        sim.schedule(1.0, lambda: cpu.activate("b"))
        sim.run_until(100.0)
        assert rec.jobs("a") == [(0.0, 4.0)]
        assert rec.jobs("b") == [(1.0, 6.0)]

    def test_fifo_tie_break(self):
        sim, rec, cpu = make_edf()
        cpu.add_task("x", deadline=10.0, exec_time=3.0)
        sim.schedule(0.0, lambda: cpu.activate("x"))
        sim.schedule(0.0, lambda: cpu.activate("x"))
        sim.run_until(50.0)
        assert rec.jobs("x") == [(0.0, 3.0), (0.0, 6.0)]

    def test_validation(self):
        _, _, cpu = make_edf()
        cpu.add_task("a", 10.0, 1.0)
        with pytest.raises(ModelError):
            cpu.add_task("a", 10.0, 1.0)
        with pytest.raises(ModelError):
            cpu.add_task("b", 0.0, 1.0)
        with pytest.raises(ModelError):
            cpu.activate("ghost")

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=20.0, max_value=200.0),   # period
        st.floats(min_value=1.0, max_value=10.0)),    # wcet
        min_size=1, max_size=3))
    def test_analysis_covers_simulation(self, params):
        specs = [TaskSpec(f"t{i}", c, c, periodic(round(p, 3)),
                          deadline=round(p, 3))
                 for i, (p, c) in enumerate(params)]
        assume(sum(s.load() for s in specs) < 0.9)
        analysis = EDFScheduler().analyze(specs, "cpu")

        sim, rec, cpu = make_edf()
        for spec in specs:
            cpu.add_task(spec.name, spec.deadline, spec.c_max)
            for t in worst_case_arrivals(spec.event_model, 2000.0):
                sim.schedule(t, lambda _n=spec.name: cpu.activate(_n))
        sim.run_until(5000.0)
        for spec in specs:
            if rec.count(spec.name):
                assert rec.worst_case(spec.name) <= \
                    analysis[spec.name].r_max + 1e-6


class TestCanErrorModel:
    def frames(self):
        return [
            TaskSpec("hi", 1.0, 1.0, periodic(10.0), priority=1),
            TaskSpec("lo", 3.0, 3.0, periodic(30.0), priority=2),
        ]

    def test_validation(self):
        with pytest.raises(ModelError):
            CanErrorModel(burst_errors=-1)
        with pytest.raises(ModelError):
            CanErrorModel(error_rate=-0.1)

    def test_no_errors_no_change(self):
        clean = SPNPScheduler().analyze(self.frames(), "bus")
        with_model = SPNPScheduler(
            error_model=CanErrorModel()).analyze(self.frames(), "bus")
        for name in ("hi", "lo"):
            assert with_model[name].r_max == clean[name].r_max

    def test_burst_adds_recovery(self):
        errors = CanErrorModel(burst_errors=1, recovery_time=5.0)
        clean = SPNPScheduler().analyze(self.frames(), "bus")
        faulty = SPNPScheduler(error_model=errors).analyze(
            self.frames(), "bus")
        for name in ("hi", "lo"):
            assert faulty[name].r_max >= clean[name].r_max + 5.0 - 1e-9

    def test_rate_errors_grow_with_window(self):
        slow = CanErrorModel(error_rate=0.001, recovery_time=5.0)
        fast = CanErrorModel(error_rate=0.01, recovery_time=5.0)
        r_slow = SPNPScheduler(error_model=slow).analyze(
            self.frames(), "bus")["lo"].r_max
        r_fast = SPNPScheduler(error_model=fast).analyze(
            self.frames(), "bus")["lo"].r_max
        assert r_fast >= r_slow

    def test_recovery_helper(self):
        rec = CanErrorModel.recovery_time_for(0.5, frame_bits_max(8))
        assert rec == (31 + 135) * 0.5

    def test_overhead_formula(self):
        m = CanErrorModel(burst_errors=2, error_rate=0.1,
                          recovery_time=4.0)
        assert m.overhead(0.0) == 8.0
        assert m.overhead(10.0) == (2 + 1) * 4.0
        assert m.overhead(10.1) == (2 + 2) * 4.0
