"""Unit tests for the reporting helpers."""

import pytest

from repro._errors import ModelError
from repro.eventmodels import periodic
from repro.viz import (
    eta_plus_series,
    render_step_chart,
    render_table,
    series_to_csv,
)


class TestEtaSeries:
    def test_series_values(self):
        series = eta_plus_series(periodic(100.0), 250.0, 50.0)
        assert series[0] == (0.0, 0)
        assert dict(series)[150.0] == 2


class TestStepChart:
    def test_renders_all_labels(self):
        chart = render_step_chart(
            {"a": [(0.0, 0), (100.0, 5)],
             "b": [(0.0, 0), (100.0, 2)]})
        assert "a" in chart and "b" in chart
        assert "#" in chart and "*" in chart

    def test_title_included(self):
        chart = render_step_chart({"x": [(0.0, 0), (10.0, 3)]},
                                  title="hello")
        assert chart.startswith("hello")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            render_step_chart({})

    def test_degenerate_rejected(self):
        with pytest.raises(ModelError):
            render_step_chart({"x": [(0.0, 0)]})


class TestCsv:
    def test_header_and_rows(self):
        csv = series_to_csv({"a": [(0.0, 1), (10.0, 2)],
                             "b": [(0.0, 3)]})
        lines = csv.splitlines()
        assert lines[0] == "dt,a,b"
        assert lines[1] == "0,1,3"
        assert lines[2] == "10,2,"

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            series_to_csv({})


class TestTable:
    def test_alignment(self):
        table = render_table(["name", "value"],
                             [("x", 1.0), ("longer", 23.456)])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "23.5" in table  # default .1f

    def test_floatfmt(self):
        table = render_table(["v"], [(1.23456,)], floatfmt=".3f")
        assert "1.235" in table

    def test_non_float_cells(self):
        table = render_table(["a", "b"], [(True, "text")])
        assert "True" in table and "text" in table
