"""Unit tests for the CPU and CAN bus simulators (hand-traced scenarios)."""

import pytest

from repro._errors import ModelError
from repro.sim import CanBusSim, ResponseRecorder, Simulator, SppCpuSim


def make_cpu():
    sim = Simulator()
    rec = ResponseRecorder()
    cpu = SppCpuSim(sim, rec)
    return sim, rec, cpu


class TestSppCpuSim:
    def test_single_job(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("t", 1, 10.0)
        sim.schedule(5.0, lambda: cpu.activate("t"))
        sim.run_until(100.0)
        assert rec.jobs("t") == [(5.0, 15.0)]

    def test_preemption(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("hi", 1, 5.0)
        cpu.add_task("lo", 2, 10.0)
        sim.schedule(0.0, lambda: cpu.activate("lo"))
        sim.schedule(3.0, lambda: cpu.activate("hi"))
        sim.run_until(100.0)
        # lo runs 0-3, hi preempts 3-8, lo resumes 8-15.
        assert rec.jobs("hi") == [(3.0, 8.0)]
        assert rec.jobs("lo") == [(0.0, 15.0)]

    def test_no_preemption_by_equal_or_lower(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("a", 1, 5.0)
        cpu.add_task("b", 1, 5.0)
        sim.schedule(0.0, lambda: cpu.activate("a"))
        sim.schedule(1.0, lambda: cpu.activate("b"))
        sim.run_until(100.0)
        assert rec.jobs("a") == [(0.0, 5.0)]
        assert rec.jobs("b") == [(1.0, 10.0)]

    def test_fifo_same_task(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("t", 1, 4.0)
        sim.schedule(0.0, lambda: cpu.activate("t"))
        sim.schedule(0.0, lambda: cpu.activate("t"))
        sim.run_until(100.0)
        assert rec.jobs("t") == [(0.0, 4.0), (0.0, 8.0)]

    def test_nested_preemption(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("p1", 1, 2.0)
        cpu.add_task("p2", 2, 4.0)
        cpu.add_task("p3", 3, 8.0)
        sim.schedule(0.0, lambda: cpu.activate("p3"))
        sim.schedule(1.0, lambda: cpu.activate("p2"))
        sim.schedule(2.0, lambda: cpu.activate("p1"))
        sim.run_until(100.0)
        # p3 0-1, p2 1-2, p1 2-4, p2 4-7, p3 7-14.
        assert rec.jobs("p1") == [(2.0, 4.0)]
        assert rec.jobs("p2") == [(1.0, 7.0)]
        assert rec.jobs("p3") == [(0.0, 14.0)]

    def test_completion_callback(self):
        sim, rec, _ = make_cpu()
        done = []
        cpu = SppCpuSim(sim, rec)
        cpu.add_task("t", 1, 3.0,
                     on_complete=lambda name, t: done.append((name, t)))
        sim.schedule(0.0, lambda: cpu.activate("t"))
        sim.run_until(10.0)
        assert done == [("t", 3.0)]

    def test_duplicate_task_rejected(self):
        _, _, cpu = make_cpu()
        cpu.add_task("t", 1, 1.0)
        with pytest.raises(ModelError):
            cpu.add_task("t", 2, 2.0)

    def test_unknown_activation_rejected(self):
        _, _, cpu = make_cpu()
        with pytest.raises(ModelError):
            cpu.activate("ghost")

    def test_backlog(self):
        sim, rec, cpu = make_cpu()
        cpu.add_task("t", 1, 10.0)
        sim.schedule(0.0, lambda: cpu.activate("t"))
        sim.schedule(1.0, lambda: cpu.activate("t"))
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)
        assert cpu.backlog() == 2


def make_bus():
    sim = Simulator()
    rec = ResponseRecorder()
    bus = CanBusSim(sim, rec)
    return sim, rec, bus


class TestCanBusSim:
    def test_idle_bus_transmits_immediately(self):
        sim, rec, bus = make_bus()
        bus.add_frame("f", 1, 10.0)
        sim.schedule(2.0, lambda: bus.request("f"))
        sim.run_until(100.0)
        assert rec.jobs("f") == [(2.0, 12.0)]

    def test_non_preemptive_blocking(self):
        sim, rec, bus = make_bus()
        bus.add_frame("hi", 1, 5.0)
        bus.add_frame("lo", 2, 10.0)
        sim.schedule(0.0, lambda: bus.request("lo"))
        sim.schedule(1.0, lambda: bus.request("hi"))
        sim.run_until(100.0)
        # lo holds the bus to 10; hi then transmits 10-15.
        assert rec.jobs("lo") == [(0.0, 10.0)]
        assert rec.jobs("hi") == [(1.0, 15.0)]

    def test_priority_arbitration_when_idle(self):
        sim, rec, bus = make_bus()
        bus.add_frame("hi", 1, 5.0)
        bus.add_frame("lo", 2, 5.0)
        sim.schedule(0.0, lambda: bus.request("lo"))
        sim.schedule(0.0, lambda: bus.request("hi"))
        sim.run_until(100.0)
        # Simultaneous queueing: the first request callback runs first
        # and takes the idle bus (lo), then hi wins the next arbitration.
        assert rec.jobs("lo") == [(0.0, 5.0)]
        assert rec.jobs("hi") == [(0.0, 10.0)]

    def test_queued_backlog_ordered_by_priority(self):
        sim, rec, bus = make_bus()
        bus.add_frame("a", 1, 5.0)
        bus.add_frame("b", 2, 5.0)
        bus.add_frame("c", 3, 20.0)
        sim.schedule(0.0, lambda: bus.request("c"))
        sim.schedule(1.0, lambda: bus.request("b"))
        sim.schedule(2.0, lambda: bus.request("a"))
        sim.run_until(100.0)
        # c transmits 0-20; then a (higher prio) 20-25; then b 25-30.
        assert rec.jobs("a") == [(2.0, 25.0)]
        assert rec.jobs("b") == [(1.0, 30.0)]

    def test_fifo_same_frame(self):
        sim, rec, bus = make_bus()
        bus.add_frame("f", 1, 4.0)
        sim.schedule(0.0, lambda: bus.request("f"))
        sim.schedule(0.5, lambda: bus.request("f"))
        sim.run_until(100.0)
        assert rec.jobs("f") == [(0.0, 4.0), (0.5, 8.0)]

    def test_hooks_called(self):
        sim, rec, bus = make_bus()
        events = []
        bus.add_frame(
            "f", 1, 4.0,
            on_start=lambda name, inst: events.append(("start", sim.now)),
            on_complete=lambda name, inst, t: events.append(("done", t)))
        sim.schedule(1.0, lambda: bus.request("f"))
        sim.run_until(100.0)
        assert events == [("start", 1.0), ("done", 5.0)]

    def test_duplicate_id_rejected(self):
        _, _, bus = make_bus()
        bus.add_frame("a", 1, 1.0)
        with pytest.raises(ModelError):
            bus.add_frame("b", 1, 1.0)

    def test_unknown_frame_rejected(self):
        _, _, bus = make_bus()
        with pytest.raises(ModelError):
            bus.request("ghost")

    def test_queue_depth(self):
        sim, rec, bus = make_bus()
        bus.add_frame("a", 1, 10.0)
        bus.add_frame("b", 2, 10.0)
        sim.schedule(0.0, lambda: bus.request("a"))
        sim.schedule(1.0, lambda: bus.request("b"))
        sim.schedule(2.0, lambda: bus.request("b"))
        sim.run_until(3.0)
        assert bus.queue_depth("b") == 2
