"""Unit tests: serve request queue, state machine, request ledger."""

from __future__ import annotations

import asyncio

import pytest

from repro._errors import ModelError
from repro.serve.queue import (
    DEFAULT_PRIORITY,
    QueueClosed,
    QueueFull,
    RequestQueue,
)
from repro.serve.state import (
    DRAINING,
    SERVING,
    STARTING,
    STOPPED,
    ServeStats,
    ServiceStateMachine,
)


def run(coro):
    return asyncio.run(coro)


class TestRequestQueue:
    def test_priority_order_lower_first(self):
        async def scenario():
            q = RequestQueue(capacity=8)
            q.submit("analyze", {"n": 1}, priority=5)
            q.submit("analyze", {"n": 2}, priority=1)
            q.submit("analyze", {"n": 3}, priority=9)
            order = [(await q.pop()).payload["n"] for _ in range(3)]
            return order

        assert run(scenario()) == [2, 1, 3]

    def test_fifo_within_priority(self):
        async def scenario():
            q = RequestQueue(capacity=8)
            for n in range(4):
                q.submit("analyze", {"n": n})
            return [(await q.pop()).payload["n"] for _ in range(4)]

        assert run(scenario()) == [0, 1, 2, 3]

    def test_default_priority(self):
        async def scenario():
            q = RequestQueue(capacity=2)
            item = q.submit("analyze", {})
            return item.priority

        assert run(scenario()) == DEFAULT_PRIORITY

    def test_full_queue_raises_with_retry_after(self):
        async def scenario():
            q = RequestQueue(capacity=2)
            q.submit("analyze", {"n": 1})
            q.submit("analyze", {"n": 2})
            with pytest.raises(QueueFull) as excinfo:
                q.submit("analyze", {"n": 3})
            return excinfo.value

        exc = run(scenario())
        assert exc.depth == 2
        assert exc.retry_after >= 1.0

    def test_closed_queue_rejects(self):
        async def scenario():
            q = RequestQueue(capacity=2)
            q.close()
            with pytest.raises(QueueClosed):
                q.submit("analyze", {})

        run(scenario())

    def test_pop_returns_none_once_closed_and_empty(self):
        async def scenario():
            q = RequestQueue(capacity=2)
            q.submit("analyze", {"n": 1})
            q.close()
            first = await q.pop()
            second = await q.pop()
            return first.payload["n"], second

        assert run(scenario()) == (1, None)

    def test_close_wakes_blocked_popper(self):
        async def scenario():
            q = RequestQueue(capacity=2)
            popper = asyncio.ensure_future(q.pop())
            await asyncio.sleep(0)  # let the popper block
            q.close()
            return await asyncio.wait_for(popper, timeout=5)

        assert run(scenario()) is None

    def test_drain_flushes_in_priority_order(self):
        async def scenario():
            q = RequestQueue(capacity=8)
            q.submit("analyze", {"n": 1}, priority=7, job_key="k1")
            q.submit("analyze", {"n": 2}, priority=3, job_key="k2")
            flushed = q.drain()
            return ([i.job_key for i in flushed], q.depth, q.closed)

        keys, depth, closed = run(scenario())
        assert keys == ["k2", "k1"]
        assert depth == 0
        assert closed

    def test_deadline_expiry(self):
        async def scenario():
            q = RequestQueue(capacity=4)
            expired = q.submit("analyze", {}, deadline=0.0)
            fresh = q.submit("analyze", {}, deadline=60.0)
            forever = q.submit("analyze", {})
            await asyncio.sleep(0.01)
            return (expired.expired(), fresh.expired(),
                    forever.expired())

        assert run(scenario()) == (True, False, False)

    def test_capacity_validated(self):
        with pytest.raises(ModelError):
            RequestQueue(capacity=0)

    def test_retry_after_scales_with_backlog(self):
        async def scenario():
            q = RequestQueue(capacity=64)
            q.configure_estimate(workers=1)
            for _ in range(40):
                q.observe_service_time(2.0)
            for n in range(20):
                q.submit("analyze", {"n": n})
            return q.retry_after()

        # ~20 queued jobs x ~2s each on one worker: way above the floor.
        assert run(scenario()) > 10.0


class TestServiceStateMachine:
    def test_happy_path(self):
        machine = ServiceStateMachine()
        assert machine.state == STARTING
        machine.to(SERVING)
        assert machine.accepting
        machine.to(DRAINING)
        assert not machine.accepting
        machine.to(STOPPED)
        assert machine.state == STOPPED

    def test_illegal_transitions_raise(self):
        machine = ServiceStateMachine()
        with pytest.raises(ModelError):
            machine.to(DRAINING)  # STARTING -> DRAINING is illegal
        machine.to(SERVING)
        machine.to(DRAINING)
        with pytest.raises(ModelError):
            machine.to(SERVING)  # can never un-drain

    def test_idempotent_on_current_state(self):
        machine = ServiceStateMachine()
        machine.to(SERVING)
        machine.to(SERVING)  # signal handler firing twice: no-op
        assert machine.state == SERVING
        assert len(machine.history()) == 2

    def test_history_and_listeners(self):
        seen = []
        machine = ServiceStateMachine()
        machine.add_listener(lambda old, new: seen.append((old, new)))
        machine.to(SERVING)
        machine.to(DRAINING)
        assert seen == [(STARTING, SERVING), (SERVING, DRAINING)]
        states = [entry["state"] for entry in machine.history()]
        assert states == [STARTING, SERVING, DRAINING]


class TestServeStats:
    def test_dispositions_and_cache(self):
        stats = ServeStats()
        stats.request()
        stats.dispose("ok", latency=0.25)
        stats.request()
        stats.dispose("rejected")
        stats.cache(hits=2, misses=1)
        snap = stats.to_dict()
        assert snap["requests"] == 2
        assert snap["ok"] == 1
        assert snap["rejected"] == 1
        assert snap["cache_hits"] == 2
        assert snap["cache_misses"] == 1
        assert snap["cache_hit_rate"] == pytest.approx(2 / 3)
        assert snap["latency_sum"] == pytest.approx(0.25)

    def test_unknown_disposition_raises(self):
        with pytest.raises(ModelError):
            ServeStats().dispose("wat")
