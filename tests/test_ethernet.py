"""Unit tests for the switched-Ethernet substrate."""

import pytest

from repro._errors import ModelError
from repro.ethernet import EthernetLink, Flow, SwitchedNetwork, \
    frame_wire_bytes
from repro.eventmodels import periodic
from repro.system import System, analyze_system, path_latency


class TestFrameWireBytes:
    def test_minimum_frame(self):
        # 46 B payload + 18 header/FCS + 8 preamble + 12 IFG = 84 B
        # (without VLAN).
        assert frame_wire_bytes(46, vlan=False) == 84

    def test_padding_below_minimum(self):
        assert frame_wire_bytes(1, vlan=False) == \
            frame_wire_bytes(46, vlan=False)

    def test_vlan_adds_tag(self):
        # Above the padding region the VLAN frame is 4 B longer.
        assert frame_wire_bytes(100, vlan=True) == \
            frame_wire_bytes(100, vlan=False) + 4

    def test_vlan_padding_compensates(self):
        # At minimum size both frame formats occupy the same wire bytes.
        assert frame_wire_bytes(0, vlan=True) == \
            frame_wire_bytes(0, vlan=False)

    def test_maximum_frame(self):
        assert frame_wire_bytes(1500, vlan=True) == 1542

    def test_range(self):
        with pytest.raises(ModelError):
            frame_wire_bytes(1501)


class TestEthernetLink:
    def test_mbps_factory(self):
        link = EthernetLink.mbps(100.0)
        assert link.byte_time == pytest.approx(0.08)

    def test_transmission_time(self):
        link = EthernetLink.mbps(100.0)
        assert link.transmission_time(1500) == pytest.approx(
            1542 * 0.08)

    def test_max_frame_time(self):
        link = EthernetLink.mbps(1000.0)
        assert link.max_frame_time == pytest.approx(1542 * 0.008)

    def test_validation(self):
        with pytest.raises(ModelError):
            EthernetLink(0.0)
        with pytest.raises(ModelError):
            EthernetLink.mbps(-5.0)


class TestSwitchedNetwork:
    def _network(self):
        net = SwitchedNetwork()
        link = EthernetLink.mbps(100.0)
        net.add_port("sw1.out", link)
        net.add_port("sw2.out", link)
        return net

    def test_duplicate_port_rejected(self):
        net = self._network()
        with pytest.raises(ModelError):
            net.add_port("sw1.out", EthernetLink.mbps(100.0))

    def test_flow_unknown_port_rejected(self):
        net = self._network()
        with pytest.raises(ModelError):
            net.add_flow(Flow("f", "src", ["nope"], 100, 1))

    def test_two_hop_flow_analysis(self):
        net = self._network()
        net.add_flow(Flow("video", "cam", ["sw1.out", "sw2.out"],
                          payload_bytes=1000, priority=1))
        net.add_flow(Flow("bulk", "nas", ["sw1.out"],
                          payload_bytes=1500, priority=2))
        system = System("eth")
        system.add_source("cam", periodic(1000.0))
        system.add_source("nas", periodic(500.0))
        sinks = net.install(system)
        result = analyze_system(system)
        assert result.converged
        # The high-priority video frame is blocked by at most one bulk
        # frame at sw1 plus its own wire time.
        wire_video = EthernetLink.mbps(100.0).transmission_time(1000)
        wire_bulk = EthernetLink.mbps(100.0).transmission_time(1500)
        hop1 = result.wcrt("video@sw1.out")
        assert hop1 == pytest.approx(wire_video + wire_bulk)
        # Second hop has no competing flow: pure wire time.
        assert result.wcrt("video@sw2.out") == pytest.approx(wire_video)
        assert sinks["video"] == "video@sw2.out"

    def test_end_to_end_latency(self):
        net = self._network()
        net.add_flow(Flow("ctrl", "plc", ["sw1.out", "sw2.out"],
                          payload_bytes=100, priority=1))
        system = System("eth")
        system.add_source("plc", periodic(2000.0))
        net.install(system)
        result = analyze_system(system)
        lat = path_latency(system, result,
                           ["plc"] + net.hop_names("ctrl"))
        assert lat.worst_case == pytest.approx(
            result.wcrt("ctrl@sw1.out") + result.wcrt("ctrl@sw2.out"))

    def test_low_priority_sees_interference(self):
        net = self._network()
        net.add_flow(Flow("hi", "a", ["sw1.out"], 1500, priority=1))
        net.add_flow(Flow("lo", "b", ["sw1.out"], 100, priority=2))
        system = System("eth")
        system.add_source("a", periodic(400.0))
        system.add_source("b", periodic(400.0))
        net.install(system)
        result = analyze_system(system)
        assert result.wcrt("lo@sw1.out") > result.wcrt("hi@sw1.out") \
            - EthernetLink.mbps(100.0).transmission_time(1500)
        # lo waits for at least one full hi frame.
        assert result.wcrt("lo@sw1.out") >= \
            EthernetLink.mbps(100.0).transmission_time(1500)
