"""The soak contract registry and oracle.

Covers the registry's shape (unique kebab-case ids, valid severities,
per-contract docs on disk, every id indexed in
``docs/contracts/INVARIANTS_INDEX.md``) and the oracle itself on pinned
sample coordinates — both the graph and the gateway kind must come back
clean on a healthy engine.
"""

import pathlib
import re

from repro.soak import (SampleSpec, all_contracts, contract_ids,
                        evaluate_sample, evaluate_system, get_contract)
from repro.soak.contracts import (PASS, SEVERITIES, SKIP, VIOLATION)
from repro.soak.oracle import (KIND_GATEWAY, KIND_GRAPH,
                               build_sample_system)

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestRegistry:
    def test_expected_contracts_registered(self):
        ids = contract_ids()
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "wcrt-sim-conservative", "envelope-containment",
            "hem-dominates-flat", "fault-monotone-conservative",
            "compiled-lazy-identical", "memo-cold-identical",
            "blame-sums-to-bound", "degrade-certified-sound"}

    def test_ids_are_kebab_case(self):
        for cid in contract_ids():
            assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)*", cid), cid

    def test_severities_valid(self):
        for contract in all_contracts():
            assert contract.severity in SEVERITIES, contract.id

    def test_statements_nonempty(self):
        for contract in all_contracts():
            assert contract.statement.strip()

    def test_get_contract_unknown_raises(self):
        import pytest

        from repro._errors import ModelError
        with pytest.raises(ModelError):
            get_contract("no-such-contract")

    def test_per_contract_docs_exist(self):
        for contract in all_contracts():
            path = REPO / contract.doc
            assert path.is_file(), (
                f"{contract.id}: doc {contract.doc} missing")
            text = path.read_text()
            assert contract.id in text

    def test_every_contract_in_invariants_index(self):
        """The doc-coverage gate: a newly registered contract must be
        added to docs/contracts/INVARIANTS_INDEX.md."""
        index = (REPO / "docs" / "contracts"
                 / "INVARIANTS_INDEX.md").read_text()
        for cid in contract_ids():
            assert f"`{cid}`" in index, (
                f"contract {cid} missing from INVARIANTS_INDEX.md")


class TestOracle:
    def test_graph_sample_all_contracts_clean(self):
        spec = SampleSpec(kind=KIND_GRAPH, seed=7,
                          config={"faults": 2})
        data = evaluate_sample(spec)
        assert data["violations"] == []
        statuses = {o["contract"]: o["status"]
                    for o in data["outcomes"]}
        assert set(statuses) == set(contract_ids())
        assert statuses["wcrt-sim-conservative"] == PASS
        assert statuses["envelope-containment"] == PASS
        assert statuses["fault-monotone-conservative"] == PASS
        # Gateway-only contract does not apply to a graph sample.
        assert statuses["hem-dominates-flat"] == SKIP

    def test_gateway_sample_all_contracts_clean(self):
        spec = SampleSpec(kind=KIND_GATEWAY, seed=3, config={})
        data = evaluate_sample(spec)
        assert data["violations"] == []
        statuses = {o["contract"]: o["status"]
                    for o in data["outcomes"]}
        assert statuses["hem-dominates-flat"] == PASS
        assert statuses["wcrt-sim-conservative"] == SKIP

    def test_evaluate_sample_deterministic(self):
        spec = SampleSpec(kind=KIND_GRAPH, seed=11, config={})
        assert evaluate_sample(spec) == evaluate_sample(spec)

    def test_contract_subset_selection(self):
        spec = SampleSpec(kind=KIND_GRAPH, seed=5, config={})
        data = evaluate_sample(
            spec, contract_ids=["compiled-lazy-identical"])
        assert [o["contract"] for o in data["outcomes"]] \
            == ["compiled-lazy-identical"]

    def test_evaluate_system_matches_sample(self):
        """The shrink predicate agrees with the campaign evaluation on
        the unmodified system."""
        spec = SampleSpec(kind=KIND_GRAPH, seed=9, config={})
        system = build_sample_system(spec)
        outcome = evaluate_system(system, spec,
                                  "wcrt-sim-conservative")
        assert outcome["status"] in (PASS, SKIP)
        assert outcome["status"] != VIOLATION
