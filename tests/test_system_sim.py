"""Tests for the generic system-graph simulator — including the key
property: analysis bounds cover simulated behaviour for random systems."""

import pytest

from repro._errors import ModelError
from repro.analysis import SPNPScheduler, SPPScheduler, TDMAScheduler
from repro.core import TransferProperty
from repro.eventmodels import periodic
from repro.examples_lib.smff import SmffConfig, generate
from repro.sim import simulate_system, worst_case_arrivals
from repro.system import JunctionKind, System, analyze_system

HORIZON = 20_000.0


def arrivals_for(system, horizon=HORIZON, mode="worst"):
    out = {}
    for name, src in system.sources.items():
        out[name] = worst_case_arrivals(src.model, horizon)
    return out


class TestBasicWiring:
    def _chain(self):
        s = System()
        s.add_source("x", periodic(100.0))
        s.add_resource("cpuA", SPPScheduler())
        s.add_resource("cpuB", SPPScheduler())
        s.add_task("t1", "cpuA", (5.0, 5.0), ["x"], priority=1)
        s.add_task("t2", "cpuB", (8.0, 8.0), ["t1"], priority=1)
        return s

    def test_chain_executes(self):
        s = self._chain()
        run = simulate_system(s, arrivals_for(s), HORIZON)
        assert run.responses.count("t1") > 100
        assert run.responses.count("t2") > 100
        # t2 activates only after t1 completes.
        first_t1_done = run.responses.jobs("t1")[0][1]
        first_t2_start = run.responses.jobs("t2")[0][0]
        assert first_t2_start == pytest.approx(first_t1_done)

    def test_chain_within_bounds(self):
        s = self._chain()
        result = analyze_system(s)
        run = simulate_system(s, arrivals_for(s), HORIZON)
        for t in ("t1", "t2"):
            assert run.responses.worst_case(t) <= result.wcrt(t) + 1e-6

    def test_or_junction_fans_through(self):
        s = System()
        s.add_source("a", periodic(100.0))
        s.add_source("b", periodic(150.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("j", JunctionKind.OR, ["a", "b"])
        s.add_task("t", "cpu", (5.0, 5.0), ["j"], priority=1)
        stimuli = arrivals_for(s, 3000.0)
        # run past the arrival horizon so in-flight jobs complete
        run = simulate_system(s, stimuli, 3500.0)
        # every event of either source activates t
        assert run.responses.count("t") == \
            len(stimuli["a"]) + len(stimuli["b"])

    def test_and_junction_gates(self):
        s = System()
        s.add_source("a", periodic(100.0))
        s.add_source("b", periodic(100.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("j", JunctionKind.AND, ["a", "b"])
        s.add_task("t", "cpu", (5.0, 5.0), ["j"], priority=1)
        stimuli = arrivals_for(s, 3000.0)
        run = simulate_system(s, stimuli, 3500.0)
        assert run.responses.count("t") == len(stimuli["a"])

    def test_mixed_policies(self):
        s = System()
        s.add_source("x", periodic(100.0))
        s.add_source("y", periodic(100.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_resource("tdma", TDMAScheduler())
        s.add_task("f", "bus", (10.0, 10.0), ["x"], priority=1)
        s.add_task("slotted", "tdma", (5.0, 5.0), ["f"], slot=10.0)
        s.add_task("other", "tdma", (5.0, 5.0), ["y"], slot=10.0)
        result = analyze_system(s)
        run = simulate_system(s, arrivals_for(s), HORIZON)
        for t in ("f", "slotted", "other"):
            assert run.responses.count(t) > 50
            assert run.responses.worst_case(t) <= result.wcrt(t) + 1e-6

    def test_pack_rejected(self):
        s = System()
        s.add_source("x", periodic(100.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_junction("pk", JunctionKind.PACK, ["x"],
                       properties={"x": TransferProperty.TRIGGERING})
        s.add_task("f", "bus", (10.0, 10.0), ["pk"], priority=1)
        with pytest.raises(ModelError):
            simulate_system(s, arrivals_for(s), 1000.0)


class TestSmffConservatism:
    """The headline property: for random generated systems, every
    analysed WCRT covers the simulated worst case."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_systems_within_bounds(self, seed):
        config = SmffConfig(seed=seed, n_chains=3, chain_length=3,
                            target_utilization=0.5)
        system = generate(config)
        try:
            result = analyze_system(system)
        except Exception:
            pytest.skip("system not schedulable — nothing to validate")
        run = simulate_system(system, arrivals_for(system), HORIZON)
        for task in system.tasks:
            if run.responses.count(task):
                assert run.responses.worst_case(task) <= \
                    result.wcrt(task) + 1e-6, (seed, task)
