"""Unit tests for stream operations: Θ_τ, OR/AND joins, shapers."""

import math

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.eventmodels import (
    DminShaper,
    NullEventModel,
    StandardEventModel,
    TaskOutputModel,
    and_join,
    or_join,
    or_join_superposition,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
)
from repro.timebase import INF


class TestTaskOutputModel:
    """Θ_τ: δ'⁻(n) = max(δ⁻(n) - (r⁺-r⁻), δ'⁻(n-1) + r⁻)."""

    def test_invalid_response_interval(self):
        with pytest.raises(ModelError):
            TaskOutputModel(periodic(100.0), 10.0, 5.0)
        with pytest.raises(ModelError):
            TaskOutputModel(periodic(100.0), -1.0, 5.0)

    def test_zero_span_identity_on_delta_min(self):
        # r- == r+ means pure delay: distances unchanged (recursion term
        # delta(n-1) + r- never dominates for a periodic stream with
        # P > r-).
        m = TaskOutputModel(periodic(100.0), 10.0, 10.0)
        for n in range(2, 10):
            assert m.delta_min(n) == periodic(100.0).delta_min(n)
            assert m.delta_plus(n) == periodic(100.0).delta_plus(n)

    def test_jitter_added(self):
        m = TaskOutputModel(periodic(100.0), 10.0, 40.0)
        # span 30: delta'-(2) = max(100 - 30, 0 + 10) = 70
        assert m.delta_min(2) == 70.0
        assert m.delta_plus(2) == 130.0

    def test_serialisation_floor(self):
        # Large span: consecutive outputs still at least r- apart.
        m = TaskOutputModel(periodic(10.0), 8.0, 200.0)
        assert m.delta_min(2) == 8.0
        assert m.delta_min(3) == 16.0  # recursion: 8 + 8

    def test_recursion_nondecreasing(self):
        m = TaskOutputModel(periodic_with_jitter(100.0, 50.0), 5.0, 90.0)
        assert_delta_consistent(m, n_max=40)

    def test_out_of_order_evaluation(self):
        # delta_min(10) first (fills memo), then delta_min(3).
        m = TaskOutputModel(periodic(100.0), 10.0, 40.0)
        big = m.delta_min(10)
        small = m.delta_min(3)
        fresh = TaskOutputModel(periodic(100.0), 10.0, 40.0)
        assert small == fresh.delta_min(3)
        assert big == fresh.delta_min(10)

    def test_response_span_property(self):
        assert TaskOutputModel(periodic(10.0), 2.0, 9.0).response_span \
            == 7.0

    def test_sporadic_input_keeps_inf(self):
        m = TaskOutputModel(sporadic(100.0), 5.0, 20.0)
        assert m.delta_plus(2) == INF


class TestOrJoinExactValues:
    """Hand-computed eq. (3)/(4) values."""

    def test_two_periodic_dmin(self):
        j = or_join([periodic(100.0), periodic(150.0)])
        # delta-(2): both can align -> 0
        assert j.delta_min(2) == 0.0
        # delta-(3): best packing: two events of the pair (0), plus one
        # more after min(100, 150) = 100?  Contribution (2,1): max(100,0)
        # =100; (1,2): max(0,150)=150; (3,0): 200; (0,3): 300 -> 100.
        assert j.delta_min(3) == 100.0
        assert j.delta_min(4) == 150.0  # (2,2): max(100,150)

    def test_two_periodic_dplus(self):
        j = or_join([periodic(100.0), periodic(150.0)])
        # delta+(2): n-2=0 -> min(delta1+(2), delta2+(2)) = 100
        assert j.delta_plus(2) == 100.0
        # delta+(3): splits (1,0): min(d1+(3), d2+(2)) = min(200,150)=150
        #            (0,1): min(d1+(2), d2+(3)) = min(100,300)=100 -> 150
        assert j.delta_plus(3) == 150.0

    def test_single_stream_passthrough(self):
        p = periodic(100.0)
        assert or_join([p]) is p

    def test_null_neutral(self):
        p = periodic(100.0)
        assert or_join([p, NullEventModel()]) is p

    def test_all_null(self):
        assert isinstance(or_join([NullEventModel()]), NullEventModel)

    def test_three_streams_associative(self):
        a, b, c = periodic(100.0), periodic(130.0), periodic(170.0)
        left = or_join([or_join([a, b]), c])
        right = or_join([a, or_join([b, c])])
        flat = or_join([a, b, c])
        for n in range(2, 16):
            assert left.delta_min(n) == pytest.approx(flat.delta_min(n))
            assert right.delta_min(n) == pytest.approx(flat.delta_min(n))
            assert left.delta_plus(n) == pytest.approx(flat.delta_plus(n))
            assert right.delta_plus(n) == pytest.approx(flat.delta_plus(n))

    def test_commutative(self):
        a, b = periodic_with_jitter(100.0, 30.0), periodic(170.0)
        ab, ba = or_join([a, b]), or_join([b, a])
        for n in range(2, 16):
            assert ab.delta_min(n) == pytest.approx(ba.delta_min(n))
            assert ab.delta_plus(n) == pytest.approx(ba.delta_plus(n))

    def test_sporadic_member_unbounds_partial_dplus(self):
        j = or_join([periodic(100.0), sporadic(400.0)])
        # Two consecutive join events still at most 100 apart (the
        # periodic stream keeps going).
        assert j.delta_plus(2) == 100.0
        # But allocating events to the sporadic stream cannot help the
        # max: (0 to sporadic) dominates, values stay finite.
        assert j.delta_plus(5) == 400.0

    def test_rate_superposition(self):
        j = or_join([periodic(100.0), periodic(200.0)])
        assert j.load(2000) == pytest.approx(0.01 + 0.005, rel=1e-2)

    def test_consistency(self):
        j = or_join([periodic_with_jitter(100.0, 40.0), periodic(170.0),
                     periodic(333.0)])
        assert_delta_consistent(j, n_max=30)


class TestOrJoinSuperpositionEquivalence:
    """The η-superposition OR-join must agree with the exact
    contribution-vector form (they are two evaluations of the same
    mathematical object)."""

    @pytest.mark.parametrize("models", [
        [periodic(100.0), periodic(150.0)],
        [periodic(100.0), periodic(130.0), periodic(170.0)],
        [periodic_with_jitter(100.0, 30.0), periodic(250.0)],
        [periodic_with_burst(100.0, 250.0, 10.0), periodic(400.0)],
    ])
    def test_delta_min_agree(self, models):
        exact = or_join(models)
        sup = or_join_superposition(models)
        for n in range(2, 20):
            assert sup.delta_min(n) == pytest.approx(
                exact.delta_min(n), abs=1e-6), n

    @pytest.mark.parametrize("models", [
        [periodic(100.0), periodic(150.0)],
        [periodic(100.0), periodic(130.0), periodic(170.0)],
        [periodic_with_jitter(100.0, 30.0), periodic(250.0)],
    ])
    def test_delta_plus_agree(self, models):
        exact = or_join(models)
        sup = or_join_superposition(models)
        for n in range(2, 20):
            assert sup.delta_plus(n) == pytest.approx(
                exact.delta_plus(n), abs=1e-6), n

    def test_eta_plus_is_sum(self):
        models = [periodic(100.0), periodic(150.0)]
        sup = or_join_superposition(models)
        for dt in (50.0, 100.5, 333.0, 1000.1):
            assert sup.eta_plus(dt) == sum(m.eta_plus(dt) for m in models)

    def test_randomized_bisection_stays_conservative(self):
        """The superposition join evaluates δ through tolerance-terminated
        bisection; against the exact pairwise join on randomized inputs
        its δ⁻ must never come out *larger* (nor its δ⁺ *smaller*) — the
        snap direction at the step must keep the bound safe."""
        import random

        rng = random.Random(1234)
        for _ in range(40):
            models = []
            for _ in range(rng.randint(2, 4)):
                p = rng.uniform(20.0, 400.0)
                models.append(StandardEventModel(
                    period=p, jitter=rng.uniform(0.0, 2.5 * p),
                    d_min=rng.choice([0.0, rng.uniform(0.0, 0.5 * p)])))
            exact = or_join(models)
            sup = or_join_superposition(models)
            for n in range(2, 24):
                d_exact = exact.delta_min(n)
                d_sup = sup.delta_min(n)
                assert d_sup <= d_exact, (n, d_sup, d_exact)
                assert d_sup == pytest.approx(d_exact, abs=1e-6,
                                              rel=1e-9), n
                p_exact = exact.delta_plus(n)
                p_sup = sup.delta_plus(n)
                assert p_sup >= p_exact, (n, p_sup, p_exact)
                if not math.isinf(p_exact):
                    assert p_sup == pytest.approx(p_exact, abs=1e-6,
                                                  rel=1e-9), n


class TestAndJoin:
    def test_slowest_dominates(self):
        j = and_join([periodic(100.0), periodic(150.0)])
        assert j.delta_min(2) == 150.0
        assert j.delta_plus(2) == 150.0

    def test_single_passthrough(self):
        p = periodic(100.0)
        assert and_join([p]) is p

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            and_join([])

    def test_eta_plus_is_min(self):
        a, b = periodic(100.0), periodic(150.0)
        j = and_join([a, b])
        for dt in (120.0, 500.0, 1000.0):
            assert j.eta_plus(dt) == min(a.eta_plus(dt), b.eta_plus(dt))

    def test_consistency(self):
        j = and_join([periodic_with_jitter(100.0, 20.0), periodic(100.0)])
        assert_delta_consistent(j)


class TestDminShaper:
    def test_negative_distance_rejected(self):
        with pytest.raises(ModelError):
            DminShaper(periodic(100.0), -1.0)

    def test_spacing_enforced(self):
        s = DminShaper(periodic_with_burst(100.0, 250.0, 0.0), 50.0)
        assert s.delta_min(2) == 50.0
        assert s.delta_min(3) == 100.0

    def test_already_spaced_stream_untouched(self):
        s = DminShaper(periodic(100.0), 50.0)
        for n in range(2, 10):
            assert s.delta_min(n) == periodic(100.0).delta_min(n)
        assert s.max_delay == 0.0

    def test_max_delay_burst(self):
        # Burst stream P=100, J=250, d=0 shaped to 50.  The shaping lag
        # (n-1)*50 - delta_min(n) peaks at n=3: 100 - 0 (and stays 100 at
        # n=4: 150 - 50) before the input's period outruns the shaper.
        burst = periodic_with_burst(100.0, 250.0, 0.0)
        s = DminShaper(burst, 50.0)
        assert s.max_delay == pytest.approx(100.0)

    def test_unstable_shaper_inf_delay(self):
        s = DminShaper(periodic(100.0), 150.0)
        assert s.max_delay == INF
        assert s.delta_plus(2) == INF

    def test_delta_plus_grows_by_delay(self):
        burst = periodic_with_burst(100.0, 250.0, 0.0)
        s = DminShaper(burst, 20.0)
        assert s.delta_plus(2) == burst.delta_plus(2) + s.max_delay

    def test_consistency(self):
        s = DminShaper(periodic_with_burst(100.0, 300.0, 5.0), 30.0)
        assert_delta_consistent(s, n_max=30)
