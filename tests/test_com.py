"""Unit tests for the AUTOSAR-style COM layer."""

import pytest

from repro._errors import ModelError
from repro.analysis import SPPScheduler
from repro.can import CanBus, CanBusTiming
from repro.com import (
    ComLayer,
    Frame,
    FrameType,
    Signal,
    frame_activation_model,
    pending_transport_model,
    triggering_transport_model,
)
from repro.core import TransferProperty, is_hierarchical
from repro.eventmodels import or_join, periodic
from repro.system import System, analyze_system
from repro.timebase import INF

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


class TestSignal:
    def test_valid(self):
        s = Signal("spd", 16, TRIG)
        assert s.is_triggering and not s.is_pending

    def test_zero_width_rejected(self):
        with pytest.raises(ModelError):
            Signal("x", 0)

    def test_oversized_rejected(self):
        with pytest.raises(ModelError):
            Signal("x", 65)


class TestFrame:
    def test_payload_derived_from_signals(self):
        f = Frame("f", FrameType.DIRECT,
                  [Signal("a", 12, TRIG), Signal("b", 4, PEND)])
        assert f.payload_bytes == 2

    def test_payload_too_small_rejected(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.DIRECT, [Signal("a", 20, TRIG)],
                  payload_bytes=1)

    def test_payload_above_can_limit(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.DIRECT, [Signal("a", 8, TRIG)],
                  payload_bytes=9)

    def test_periodic_needs_period(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.PERIODIC, [Signal("a", 8, PEND)])

    def test_direct_needs_trigger(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.DIRECT, [Signal("a", 8, PEND)])

    def test_duplicate_signals_rejected(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.DIRECT,
                  [Signal("a", 8, TRIG), Signal("a", 8, TRIG)])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Frame("f", FrameType.DIRECT, [])

    def test_has_timer(self):
        direct = Frame("f", FrameType.DIRECT, [Signal("a", 8, TRIG)])
        mixed = Frame("g", FrameType.MIXED, [Signal("b", 8, TRIG)],
                      period=100.0)
        assert not direct.has_timer
        assert mixed.has_timer


class TestEffectiveTransfer:
    def test_periodic_frame_demotes_triggering(self):
        # "When the frame type is periodic, frames are just sent
        # periodically, not influenced by the arrival of output events."
        sig = Signal("a", 8, TRIG)
        f = Frame("f", FrameType.PERIODIC, [sig], period=100.0)
        assert f.effective_transfer(sig) is PEND
        assert f.triggering_signals() == []

    def test_mixed_keeps_properties(self):
        trig, pend = Signal("a", 8, TRIG), Signal("b", 8, PEND)
        f = Frame("f", FrameType.MIXED, [trig, pend], period=100.0)
        assert f.effective_transfer(trig) is TRIG
        assert f.effective_transfer(pend) is PEND

    def test_signal_lookup(self):
        f = Frame("f", FrameType.DIRECT, [Signal("a", 8, TRIG)])
        assert f.signal("a").name == "a"
        with pytest.raises(ModelError):
            f.signal("zzz")


class TestTimingHelpers:
    def test_triggering_transport_is_identity(self):
        m = periodic(100.0)
        assert triggering_transport_model(m) is m

    def test_pending_transport_eq7(self):
        signal = periodic(1000.0)
        frames = periodic(250.0)
        inner = pending_transport_model(signal, frames)
        assert inner.delta_min(2) == pytest.approx(750.0)
        assert inner.delta_plus(2) == INF

    def test_frame_activation_or_with_timer(self):
        f = Frame("f", FrameType.MIXED,
                  [Signal("a", 8, TRIG), Signal("b", 8, PEND)],
                  period=400.0)
        act = frame_activation_model(f, {"a": periodic(100.0),
                                         "b": periodic(300.0)})
        ref = or_join([periodic(100.0), periodic(400.0)])
        for n in range(2, 10):
            assert act.delta_min(n) == pytest.approx(ref.delta_min(n))

    def test_frame_activation_missing_model(self):
        f = Frame("f", FrameType.DIRECT, [Signal("a", 8, TRIG)])
        with pytest.raises(ModelError):
            frame_activation_model(f, {})

    def test_periodic_frame_activation_is_timer(self):
        f = Frame("f", FrameType.PERIODIC, [Signal("a", 8, TRIG)],
                  period=500.0)
        act = frame_activation_model(f, {"a": periodic(100.0)})
        assert act.delta_min(2) == 500.0


class TestComLayer:
    def _layer(self):
        layer = ComLayer()
        layer.add_frame(Frame("F1", FrameType.MIXED,
                              [Signal("a", 8, TRIG), Signal("b", 8, PEND)],
                              period=500.0, can_id=1))
        layer.add_frame(Frame("F2", FrameType.DIRECT,
                              [Signal("c", 8, TRIG)], can_id=2))
        return layer

    def test_duplicate_frame_rejected(self):
        layer = self._layer()
        with pytest.raises(ModelError):
            layer.add_frame(Frame("F1", FrameType.DIRECT,
                                  [Signal("z", 8, TRIG)], can_id=9))

    def test_signal_in_two_frames_rejected(self):
        layer = self._layer()
        with pytest.raises(ModelError):
            layer.add_frame(Frame("F3", FrameType.DIRECT,
                                  [Signal("a", 8, TRIG)], can_id=3))

    def test_frame_of_signal(self):
        layer = self._layer()
        assert layer.frame_of_signal("b").name == "F1"
        with pytest.raises(ModelError):
            layer.frame_of_signal("zzz")

    def test_build_frame_hem(self):
        layer = self._layer()
        hem = layer.build_frame_hem("F1", {"a": periodic(100.0),
                                           "b": periodic(300.0)})
        assert is_hierarchical(hem)
        assert set(hem.labels) == {"a", "b"}
        assert hem.inner("b").delta_plus(2) == INF

    def test_build_hem_missing_model(self):
        layer = self._layer()
        with pytest.raises(ModelError):
            layer.build_frame_hem("F1", {"a": periodic(100.0)})

    def test_total_payload(self):
        assert self._layer().total_payload_bytes() == 3

    def test_install_full_stack(self):
        layer = self._layer()
        system = System("s")
        for name, period in (("a", 100.0), ("b", 300.0), ("c", 200.0)):
            system.add_source(name, periodic(period, name))
        bus = CanBus.from_bitrate("CAN", 2.0)
        bus.install(system)
        system.add_resource("CPU", SPPScheduler())
        ports = layer.install(system, "CAN", bus.timing,
                              {"a": "a", "b": "b", "c": "c"})
        assert ports == {"a": "F1_rx.a", "b": "F1_rx.b", "c": "F2_rx.c"}
        system.add_task("t", "CPU", (5.0, 5.0), [ports["a"]], priority=1)
        result = analyze_system(system)
        assert result.converged
        assert result.wcrt("t") == 5.0

    def test_install_missing_source(self):
        layer = self._layer()
        system = System("s")
        system.add_source("a", periodic(100.0))
        CanBus.from_bitrate("CAN", 2.0).install(system)
        with pytest.raises(ModelError):
            layer.install(system, "CAN", CanBusTiming(0.5), {"a": "a"})

    def test_install_unknown_bus(self):
        layer = self._layer()
        with pytest.raises(ModelError):
            layer.install(System("s"), "CAN", CanBusTiming(0.5), {})

    def test_install_duplicate_can_id_rejected(self):
        layer = ComLayer()
        layer.add_frame(Frame("F1", FrameType.DIRECT,
                              [Signal("a", 8, TRIG)], can_id=5))
        layer.add_frame(Frame("F2", FrameType.DIRECT,
                              [Signal("b", 8, TRIG)], can_id=5))
        system = System("s")
        system.add_source("a", periodic(100.0))
        system.add_source("b", periodic(100.0))
        CanBus.from_bitrate("CAN", 2.0).install(system)
        with pytest.raises(ModelError):
            layer.install(system, "CAN", CanBusTiming(0.5),
                          {"a": "a", "b": "b"})
