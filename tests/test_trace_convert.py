"""Unit tests for trace-derived models and representation conversion."""

import pytest

from repro._errors import ModelError
from repro.eventmodels import (
    fit_standard,
    model_from_trace,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
    trace_within_bounds,
    verify_dominates,
    violations,
)
from repro.timebase import INF


class TestModelFromTrace:
    def test_periodic_trace(self):
        m = model_from_trace([0, 100, 200, 300, 400])
        assert m.delta_min(2) == 100.0
        assert m.delta_plus(2) == 100.0
        assert m.delta_min(5) == 400.0

    def test_jittered_trace_spread(self):
        m = model_from_trace([0, 90, 200, 310, 400])
        assert m.delta_min(2) == 90.0
        assert m.delta_plus(2) == 110.0

    def test_needs_two_events(self):
        with pytest.raises(ModelError):
            model_from_trace([5.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ModelError):
            model_from_trace([0, 50, 40])

    def test_n_max_truncation(self):
        m = model_from_trace(list(range(0, 1000, 100)), n_max=3)
        assert m.prefix_length == 3

    def test_n_max_too_small(self):
        with pytest.raises(ModelError):
            model_from_trace([0, 1, 2], n_max=1)

    def test_simultaneous_events_allowed(self):
        m = model_from_trace([0.0, 0.0, 100.0])
        assert m.delta_min(2) == 0.0


class TestTraceWithinBounds:
    def test_periodic_trace_inside_model(self):
        trace = [0, 100, 200, 300]
        assert trace_within_bounds(trace, periodic(100.0))

    def test_too_tight_trace_violates(self):
        trace = [0, 50, 100]
        assert not trace_within_bounds(trace, periodic(100.0))

    def test_jitter_headroom(self):
        trace = [0, 80, 200, 270]
        assert trace_within_bounds(trace, periodic_with_jitter(100.0, 30.0))

    def test_check_plus_detects_stall(self):
        trace = [0, 100, 500]
        assert trace_within_bounds(trace, periodic(100.0))  # minus only
        assert not trace_within_bounds(trace, periodic(100.0),
                                       check_plus=True)

    def test_sporadic_bound_allows_stall(self):
        trace = [0, 500, 5000]
        assert trace_within_bounds(trace, sporadic(100.0), check_plus=True)

    def test_short_trace_trivially_ok(self):
        assert trace_within_bounds([42.0], periodic(1.0))

    def test_violations_report(self):
        out = violations([0, 50, 100], periodic(100.0))
        assert out
        n, idx, span, bound = out[0]
        assert n == 2 and span == 50.0 and bound == 100.0

    def test_violations_empty_when_clean(self):
        assert violations([0, 100, 200], periodic(100.0)) == []


class TestFitStandard:
    def test_roundtrip_periodic(self):
        fit = fit_standard(periodic(100.0))
        assert fit.period == pytest.approx(100.0)
        assert fit.jitter == pytest.approx(0.0, abs=1e-6)

    def test_roundtrip_jitter(self):
        src = periodic_with_jitter(100.0, 35.0)
        fit = fit_standard(src)
        assert fit.period == pytest.approx(100.0)
        assert fit.jitter == pytest.approx(35.0, abs=1e-6)

    def test_fit_dominates_burst(self):
        src = periodic_with_burst(100.0, 250.0, 10.0)
        fit = fit_standard(src)
        assert verify_dominates(fit, src, n_max=64)

    def test_fit_sporadic(self):
        src = sporadic(100.0, 20.0)
        fit = fit_standard(src)
        assert fit.sporadic
        assert fit.delta_plus(2) == INF
        assert verify_dominates(fit, src, n_max=64)

    def test_fit_or_join_dominates(self):
        from repro.eventmodels import or_join
        src = or_join([periodic(100.0), periodic(150.0)])
        fit = fit_standard(src)
        assert verify_dominates(fit, src, n_max=64)

    def test_small_horizon_rejected(self):
        with pytest.raises(ModelError):
            fit_standard(periodic(10.0), horizon=4)


class TestVerifyDominates:
    def test_self_dominates(self):
        m = periodic_with_jitter(100.0, 10.0)
        assert verify_dominates(m, m)

    def test_wider_jitter_dominates(self):
        tight = periodic_with_jitter(100.0, 10.0)
        loose = periodic_with_jitter(100.0, 40.0)
        assert verify_dominates(loose, tight)
        assert not verify_dominates(tight, loose)

    def test_different_period_no_domination(self):
        assert not verify_dominates(periodic(100.0), periodic(90.0),
                                    n_max=32)

    def test_finite_cannot_dominate_sporadic(self):
        assert not verify_dominates(periodic(100.0), sporadic(100.0))
        assert verify_dominates(sporadic(100.0), periodic(100.0))
