"""Unit tests for the bounded-delay resource abstraction."""

import pytest

from repro._errors import ModelError
from repro.analysis import (
    BoundedDelayResource,
    HierarchicalSPPScheduler,
    PeriodicResource,
    TaskSpec,
)
from repro.eventmodels import periodic


class TestBoundedDelayResource:
    def test_validation(self):
        with pytest.raises(ModelError):
            BoundedDelayResource(0.0, 10.0)
        with pytest.raises(ModelError):
            BoundedDelayResource(1.5, 10.0)
        with pytest.raises(ModelError):
            BoundedDelayResource(0.5, -1.0)

    def test_sbf_shape(self):
        r = BoundedDelayResource(0.5, 20.0)
        assert r.sbf(10.0) == 0.0
        assert r.sbf(20.0) == 0.0
        assert r.sbf(40.0) == pytest.approx(10.0)

    def test_sbf_inverse_roundtrip(self):
        r = BoundedDelayResource(0.25, 30.0)
        for demand in (0.5, 1.0, 10.0, 100.0):
            t = r.sbf_inverse(demand)
            assert r.sbf(t) == pytest.approx(demand)

    def test_full_bandwidth_zero_delay_is_dedicated(self):
        r = BoundedDelayResource(1.0, 0.0)
        for t in (0.0, 5.0, 123.4):
            assert r.sbf(t) == t

    def test_covering_periodic_resource(self):
        server = PeriodicResource(100.0, 40.0)
        cover = BoundedDelayResource.covering(server)
        assert cover.alpha == pytest.approx(0.4)
        assert cover.delay == pytest.approx(120.0)
        # Conservative: the linear bound never exceeds the exact sbf.
        t = 0.0
        while t < 1000.0:
            assert cover.sbf(t) <= server.sbf(t) + 1e-9
            t += 7.3


class TestSchedulerWithBoundedDelay:
    def _tasks(self):
        return [
            TaskSpec("a", 5.0, 5.0, periodic(100.0), priority=1),
            TaskSpec("b", 10.0, 10.0, periodic(200.0), priority=2),
        ]

    def test_analysis_runs(self):
        server = BoundedDelayResource(0.4, 120.0)
        result = HierarchicalSPPScheduler(server).analyze(
            self._tasks(), "p")
        # a: sbf_inverse(5) = 120 + 12.5 = 132.5.
        assert result["a"].r_max == pytest.approx(132.5)

    def test_covering_is_more_pessimistic_than_exact(self):
        server = PeriodicResource(100.0, 40.0)
        exact = HierarchicalSPPScheduler(server).analyze(
            self._tasks(), "p")
        linear = HierarchicalSPPScheduler(
            BoundedDelayResource.covering(server)).analyze(
                self._tasks(), "p")
        for name in ("a", "b"):
            assert linear[name].r_max >= exact[name].r_max - 1e-9

    def test_non_supply_object_rejected(self):
        with pytest.raises(ModelError):
            HierarchicalSPPScheduler(object())
