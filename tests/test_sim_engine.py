"""Unit tests for the discrete-event engine and stimulus generators."""

import random

import pytest

from repro._errors import ModelError
from repro.eventmodels import (
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    trace_within_bounds,
)
from repro.sim import (
    Simulator,
    periodic_arrivals,
    random_jitter_arrivals,
    worst_case_arrivals,
)


class TestSimulator:
    def test_events_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append(("b", sim.now)))
        sim.schedule(1.0, lambda: log.append(("a", sim.now)))
        sim.run_until(10.0)
        assert log == [("a", 1.0), ("b", 5.0)]

    def test_fifo_within_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run_until(2.0)
        assert log == ["first", "second"]

    def test_schedule_in(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: sim.schedule_in(3.0,
                                                  lambda: log.append(
                                                      sim.now)))
        sim.run_until(10.0)
        assert log == [5.0]

    def test_horizon_respected(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("in"))
        sim.schedule(15.0, lambda: log.append("out"))
        sim.run_until(10.0)
        assert log == ["in"]
        assert sim.pending_events() == 1
        assert sim.now == 10.0

    def test_no_past_scheduling(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule(1.0, lambda: None))
        with pytest.raises(ModelError):
            sim.run_until(10.0)

    def test_stop(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, lambda: log.append(2))
        sim.run_until(10.0)
        assert log == [1]


class TestPeriodicArrivals:
    def test_basic(self):
        assert periodic_arrivals(100.0, 350.0) == [0.0, 100.0, 200.0,
                                                   300.0]

    def test_phase(self):
        assert periodic_arrivals(100.0, 250.0, phase=50.0) == \
            [50.0, 150.0, 250.0]

    def test_validation(self):
        with pytest.raises(ModelError):
            periodic_arrivals(0.0, 100.0)
        with pytest.raises(ModelError):
            periodic_arrivals(10.0, 100.0, phase=-1.0)


class TestWorstCaseArrivals:
    def test_periodic_collapses_to_periodic(self):
        assert worst_case_arrivals(periodic(100.0), 300.0) == \
            [0.0, 100.0, 200.0, 300.0]

    def test_jitter_front_loads(self):
        # PJ(100, 30): delta_min(2) = 70 -> second event at 70.
        arr = worst_case_arrivals(periodic_with_jitter(100.0, 30.0), 250.0)
        assert arr[:3] == [0.0, 70.0, 170.0]

    def test_burst_simultaneous(self):
        arr = worst_case_arrivals(
            periodic_with_burst(100.0, 250.0, 0.0), 100.0)
        assert arr[:3] == [0.0, 0.0, 0.0]

    def test_sequence_respects_model(self):
        m = periodic_with_jitter(100.0, 45.0)
        arr = worst_case_arrivals(m, 5000.0)
        assert trace_within_bounds(arr, m)

    def test_achieves_eta_plus(self):
        # The critical-instant sequence must actually reach the eta+
        # bound in the window anchored at 0.
        m = periodic_with_jitter(100.0, 45.0)
        arr = worst_case_arrivals(m, 5000.0)
        for dt in (100.0, 500.0, 1000.0):
            observed = sum(1 for t in arr if t < dt)
            assert observed == m.eta_plus(dt)


class TestRandomJitterArrivals:
    def test_within_bounds(self):
        m = periodic_with_jitter(100.0, 40.0)
        for seed in range(5):
            arr = random_jitter_arrivals(m, 10_000.0,
                                         rng=random.Random(seed))
            assert trace_within_bounds(arr, m)

    def test_respects_dmin(self):
        m = periodic_with_burst(100.0, 300.0, 25.0)
        arr = random_jitter_arrivals(m, 10_000.0,
                                     rng=random.Random(7))
        gaps = [b - a for a, b in zip(arr, arr[1:])]
        assert all(g >= 25.0 - 1e-9 for g in gaps)

    def test_deterministic_given_rng(self):
        m = periodic_with_jitter(100.0, 40.0)
        a = random_jitter_arrivals(m, 1000.0, rng=random.Random(3))
        b = random_jitter_arrivals(m, 1000.0, rng=random.Random(3))
        assert a == b

    def test_sorted(self):
        m = periodic_with_jitter(50.0, 49.0)
        arr = random_jitter_arrivals(m, 5000.0, rng=random.Random(11))
        assert arr == sorted(arr)
