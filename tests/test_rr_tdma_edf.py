"""Unit tests for the round-robin, TDMA, and EDF analyses."""

import pytest

from repro._errors import ModelError, NotSchedulableError
from repro.analysis import (
    EDFScheduler,
    RoundRobinScheduler,
    TaskSpec,
    TDMAScheduler,
    edf_demand_schedulable,
    synchronous_busy_period,
)
from repro.analysis.tdma import tdma_supply, tdma_supply_inverse
from repro.eventmodels import periodic, periodic_with_jitter


class TestRoundRobin:
    def _tasks(self):
        return [
            TaskSpec("a", 2.0, 2.0, periodic(20.0), priority=0, slot=2.0),
            TaskSpec("b", 4.0, 4.0, periodic(20.0), priority=0, slot=2.0),
        ]

    def test_needs_slot(self):
        bad = [TaskSpec("a", 2.0, 2.0, periodic(20.0))]
        with pytest.raises(ModelError):
            RoundRobinScheduler().analyze(bad, "cpu")

    def test_interference_bounded_by_rounds(self):
        result = RoundRobinScheduler().analyze(self._tasks(), "cpu")
        # a needs 1 round: b can interfere at most one slot (2) and at
        # most its arrivals (4): min is 2 -> r = 4.
        assert result["a"].r_max == 4.0

    def test_interference_bounded_by_arrivals(self):
        tasks = [
            TaskSpec("a", 6.0, 6.0, periodic(30.0), priority=0, slot=2.0),
            TaskSpec("b", 1.0, 1.0, periodic(30.0), priority=0, slot=9.0),
        ]
        result = RoundRobinScheduler().analyze(tasks, "cpu")
        # a needs ceil(6/2)=3 rounds; b could take 27 by slots but only
        # has 1 unit of work per 30 -> interference 1, r = 7.
        assert result["a"].r_max == 7.0

    def test_symmetric_tasks(self):
        result = RoundRobinScheduler().analyze(self._tasks(), "cpu")
        # b needs 2 rounds; a interferes min(eta_a*2, 2*2) = 2 -> 6.
        assert result["b"].r_max == 6.0

    def test_overload_rejected(self):
        tasks = [
            TaskSpec("a", 15.0, 15.0, periodic(20.0), slot=1.0),
            TaskSpec("b", 10.0, 10.0, periodic(20.0), slot=1.0),
        ]
        with pytest.raises(NotSchedulableError):
            RoundRobinScheduler().analyze(tasks, "cpu")


class TestTdmaSupply:
    def test_supply_zero_before_first_slot(self):
        # slot 2 in cycle 10: worst case starts right after own slot.
        assert tdma_supply(0.0, 2.0, 10.0) == 0.0
        assert tdma_supply(8.0, 2.0, 10.0) == 0.0

    def test_supply_ramps_in_slot(self):
        assert tdma_supply(9.0, 2.0, 10.0) == 1.0
        assert tdma_supply(10.0, 2.0, 10.0) == 2.0

    def test_supply_flat_between_slots(self):
        assert tdma_supply(15.0, 2.0, 10.0) == 2.0

    def test_inverse_roundtrip(self):
        for demand in (0.5, 1.0, 2.0, 3.0, 7.5, 20.0):
            t = tdma_supply_inverse(demand, 2.0, 10.0)
            assert tdma_supply(t, 2.0, 10.0) == pytest.approx(demand)
            # minimality: epsilon earlier must not suffice
            assert tdma_supply(t - 1e-6, 2.0, 10.0) < demand

    def test_inverse_zero(self):
        assert tdma_supply_inverse(0.0, 2.0, 10.0) == 0.0


class TestTdmaAnalysis:
    def _tasks(self):
        return [
            TaskSpec("a", 1.0, 1.0, periodic(20.0), slot=2.0),
            TaskSpec("b", 3.0, 3.0, periodic(20.0), slot=3.0),
        ]

    def test_wcrt_includes_wait_for_slot(self):
        result = TDMAScheduler().analyze(self._tasks(), "cpu")
        # cycle 5; a: wait 3 (other slot), then 1 unit -> 4.
        assert result["a"].r_max == 4.0

    def test_full_slot_demand(self):
        result = TDMAScheduler().analyze(self._tasks(), "cpu")
        # b: wait 2, then 3 -> 5.
        assert result["b"].r_max == 5.0

    def test_share_overload_rejected(self):
        tasks = [TaskSpec("a", 5.0, 5.0, periodic(10.0), slot=1.0),
                 TaskSpec("b", 1.0, 1.0, periodic(10.0), slot=4.0)]
        with pytest.raises(NotSchedulableError):
            TDMAScheduler().analyze(tasks, "cpu")

    def test_needs_slot(self):
        with pytest.raises(ModelError):
            TDMAScheduler().analyze(
                [TaskSpec("a", 1.0, 1.0, periodic(10.0))], "cpu")

    def test_isolation_from_other_load(self):
        # TDMA isolates: doubling the other task's demand does not change
        # this task's WCRT (unlike RR/SPP).
        t1 = [TaskSpec("a", 1.0, 1.0, periodic(20.0), slot=2.0),
              TaskSpec("b", 1.0, 1.0, periodic(20.0), slot=3.0)]
        t2 = [TaskSpec("a", 1.0, 1.0, periodic(20.0), slot=2.0),
              TaskSpec("b", 3.0, 3.0, periodic(20.0), slot=3.0)]
        r1 = TDMAScheduler().analyze(t1, "cpu")["a"].r_max
        r2 = TDMAScheduler().analyze(t2, "cpu")["a"].r_max
        assert r1 == r2


class TestEdf:
    def _tasks(self):
        return [
            TaskSpec("a", 1.0, 1.0, periodic(4.0), deadline=4.0),
            TaskSpec("b", 2.0, 2.0, periodic(6.0), deadline=6.0),
            TaskSpec("c", 3.0, 3.0, periodic(12.0), deadline=12.0),
        ]

    def test_busy_period(self):
        # Utilisation ~0.83: synchronous busy period closes.
        length = synchronous_busy_period(self._tasks())
        assert length > 0
        # Workload at the result equals the result (fixed point).
        demand = sum(t.event_model.eta_plus(length) * t.c_max
                     for t in self._tasks())
        assert demand == pytest.approx(length)

    def test_demand_schedulable(self):
        assert edf_demand_schedulable(self._tasks())

    def test_demand_unschedulable_tight_deadlines(self):
        tasks = [
            TaskSpec("a", 3.0, 3.0, periodic(10.0), deadline=3.0),
            TaskSpec("b", 3.0, 3.0, periodic(10.0), deadline=3.0),
        ]
        assert not edf_demand_schedulable(tasks)

    def test_needs_deadline(self):
        with pytest.raises(ModelError):
            edf_demand_schedulable(
                [TaskSpec("a", 1.0, 1.0, periodic(4.0))])

    def test_response_bounds_cover_demand_test(self):
        # If WCRT <= deadline for all tasks, the demand test must agree.
        tasks = self._tasks()
        result = EDFScheduler().analyze(tasks, "cpu")
        if all(result[t.name].r_max <= t.deadline for t in tasks):
            assert edf_demand_schedulable(tasks)

    def test_response_at_least_wcet(self):
        result = EDFScheduler().analyze(self._tasks(), "cpu")
        assert result["c"].r_max >= 3.0

    def test_short_deadline_prioritised(self):
        # A task with a much shorter deadline suffers less interference.
        tasks = [
            TaskSpec("urgent", 1.0, 1.0, periodic(10.0), deadline=2.0),
            TaskSpec("lazy", 4.0, 4.0, periodic(10.0), deadline=10.0),
        ]
        result = EDFScheduler().analyze(tasks, "cpu")
        assert result["urgent"].r_max <= 2.0
        assert result["lazy"].r_max >= result["urgent"].r_max

    def test_overload_rejected(self):
        tasks = [
            TaskSpec("a", 6.0, 6.0, periodic(10.0), deadline=10.0),
            TaskSpec("b", 5.0, 5.0, periodic(10.0), deadline=10.0),
        ]
        with pytest.raises(NotSchedulableError):
            EDFScheduler().analyze(tasks, "cpu")
