"""End-to-end burn-in campaign behaviour.

Exercises the full soak loop: a clean smoke campaign, cache-served
resume (including resume after SIGKILL mid-campaign), and the triage
pipeline on a deliberately planted unsound bound — the campaign must
catch the violation, shrink it to a minimal system, and emit a bundle
whose replay reproduces the violation.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.batch.store import ResultStore
from repro.soak import (load_bundle, replay_bundle, run_campaign)
from repro.soak.report import write_artifacts

REPO = pathlib.Path(__file__).resolve().parent.parent


def _store_indices(cache_dir):
    store = ResultStore(str(cache_dir))
    try:
        return [r.data["index"] for r in store.results()
                if isinstance(r.data, dict) and "index" in r.data]
    finally:
        store.close()


class TestCampaign:
    def test_smoke_campaign_clean(self, tmp_path):
        report = run_campaign("smoke", samples=4, seed=7,
                              cache_dir=str(tmp_path / "soak"),
                              workers=0)
        assert report.samples == 4
        assert report.errors == 0
        assert report.violations == []
        assert report.bundles == []
        assert report.wall > 0
        assert report.samples_per_sec > 0
        # 3 graph + 1 gateway cycle: both kinds exercised.
        indices = _store_indices(tmp_path / "soak")
        assert sorted(indices) == [0, 1, 2, 3]
        # Every contract saw at least one non-skip outcome.
        exercised = {
            cid for cid, by_status in report.contract_counts.items()
            if by_status.get("pass", 0)
            + by_status.get("violation", 0) > 0}
        from repro.soak import contract_ids
        assert exercised == set(contract_ids())

    def test_artifacts(self, tmp_path, monkeypatch):
        report = run_campaign("smoke", samples=1, seed=7,
                              cache_dir=str(tmp_path / "soak"),
                              workers=0)
        (tmp_path / "bench").mkdir()
        monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path / "bench"))
        paths = write_artifacts(report)
        report_json = tmp_path / "soak" / "report.json"
        assert report_json in [pathlib.Path(p) for p in paths]
        loaded = json.loads(report_json.read_text())
        assert loaded["profile"] == "smoke"
        assert loaded["samples"] == 1
        bench = json.loads(
            (tmp_path / "bench" / "BENCH_soak.json").read_text())
        assert bench["schema"] == "repro-bench/1"
        assert bench["payload"]["samples_per_sec"] > 0

    def test_resume_serves_finished_samples_from_cache(self, tmp_path):
        cache = tmp_path / "soak"
        first = run_campaign("smoke", samples=2, seed=7,
                             cache_dir=str(cache), workers=0)
        assert first.samples == 2 and first.cached == 0
        second = run_campaign("smoke", samples=5, seed=7,
                              cache_dir=str(cache), workers=0,
                              resume=True)
        assert second.samples == 5
        assert second.cached == 2
        assert second.resumed_from == 2
        assert sorted(_store_indices(cache)) == [0, 1, 2, 3, 4]

    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        """A killed campaign resumes without re-running or duplicating
        finished samples."""
        cache = tmp_path / "soak"
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "soak", "run", "smoke",
             "--samples", "5", "--seed", "3",
             "--cache-dir", str(cache), "--quiet"],
            cwd=str(REPO), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            results = cache / "results.jsonl"
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if results.exists() and results.read_text().strip():
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign exited before first sample")
                time.sleep(0.1)
            else:
                pytest.fail("no sample landed before the kill window")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        done_before = _store_indices(cache)
        assert done_before, "kill landed before any result persisted"

        report = run_campaign("smoke", samples=5, seed=3,
                              cache_dir=str(cache), workers=0,
                              resume=True)
        assert report.samples == 5
        assert report.cached >= len(done_before)
        assert report.resumed_from == max(done_before) + 1
        indices = _store_indices(cache)
        assert sorted(indices) == [0, 1, 2, 3, 4]
        assert len(indices) == len(set(indices)), \
            "duplicate sample ids after resume"


class TestPlantedViolation:
    def _plant_unsound_bound(self, monkeypatch, factor=0.25):
        """Make every static-priority solver under-report r_max."""
        from repro.analysis.spnp import SPNPScheduler
        from repro.analysis.spp import SPPScheduler

        for cls in (SPPScheduler, SPNPScheduler):
            original = cls.analyze

            def unsound(self, tasks, resource_name="resource",
                        reuse=None, _orig=original):
                rr = _orig(self, tasks, resource_name, reuse=reuse)
                for tr in rr.task_results.values():
                    if tr is not None:
                        tr.r_max = max(tr.r_min, factor * tr.r_max)
                return rr

            monkeypatch.setattr(cls, "analyze", unsound)

    def test_unsound_bound_is_caught_shrunk_and_replayable(
            self, tmp_path, monkeypatch):
        self._plant_unsound_bound(monkeypatch)
        cache = tmp_path / "soak"
        report = run_campaign("smoke", samples=1, seed=7,
                              cache_dir=str(cache), workers=0)
        assert report.samples == 1
        violated = {v["contract"] for v in report.violations}
        assert "wcrt-sim-conservative" in violated

        record = next(v for v in report.violations
                      if v["contract"] == "wcrt-sim-conservative")
        bundle_path = pathlib.Path(record["bundle"])
        assert (bundle_path / "bundle.json").is_file()

        bundle = load_bundle(bundle_path)
        assert bundle["contract"] == "wcrt-sim-conservative"
        assert bundle["shrink"]["shrunk_tasks"] <= 3
        assert len(bundle["system"]["tasks"]) \
            == bundle["shrink"]["shrunk_tasks"]
        assert bundle["repro"].startswith("python -m repro soak replay")

        # While the planted bug is live, the bundle reproduces the
        # violation through the same path the repro command runs.
        outcome = replay_bundle(bundle_path)
        assert outcome["status"] == "violation"
        assert outcome["contract"] == "wcrt-sim-conservative"

    def test_healthy_engine_does_not_reproduce(self, tmp_path,
                                               monkeypatch):
        """A bundle minted under the planted bug stops reproducing once
        the bug is gone — replay re-runs the real analysis."""
        with pytest.MonkeyPatch.context() as patched:
            self._plant_unsound_bound(patched)
            report = run_campaign("smoke", samples=1, seed=7,
                                  cache_dir=str(tmp_path / "soak"),
                                  workers=0)
        record = next(v for v in report.violations
                      if v["contract"] == "wcrt-sim-conservative")
        outcome = replay_bundle(record["bundle"])
        assert outcome["status"] != "violation"
