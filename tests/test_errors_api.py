"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro._errors import (
    AnalysisError,
    ConvergenceError,
    ModelError,
    NotSchedulableError,
    ReproError,
    UnboundedStreamError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ModelError, AnalysisError, NotSchedulableError,
                    ConvergenceError, UnboundedStreamError):
            assert issubclass(exc, ReproError)

    def test_analysis_family(self):
        for exc in (NotSchedulableError, ConvergenceError,
                    UnboundedStreamError):
            assert issubclass(exc, AnalysisError)

    def test_model_error_not_analysis(self):
        assert not issubclass(ModelError, AnalysisError)

    def test_not_schedulable_payload(self):
        err = NotSchedulableError("overload", resource="cpu",
                                  utilization=1.2)
        assert err.resource == "cpu"
        assert err.utilization == 1.2

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise NotSchedulableError("x")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_all_exports(self):
        import repro.analysis
        import repro.can
        import repro.com
        import repro.core
        import repro.ethernet
        import repro.eventmodels
        import repro.flexray
        import repro.sim
        import repro.system
        import repro.viz

        for pkg in (repro.analysis, repro.can, repro.com, repro.core,
                    repro.ethernet, repro.eventmodels, repro.flexray,
                    repro.sim, repro.system, repro.viz):
            for name in pkg.__all__:
                assert hasattr(pkg, name), (pkg.__name__, name)

    def test_quickstart_docstring_pipeline(self):
        # The pipeline shown in the package docstring must actually run.
        from repro import (
            BusyWindowOutput,
            TransferProperty,
            apply_operation,
            hsc_pack,
            periodic,
            unpack,
        )

        frame = hsc_pack(
            {"speed": (periodic(250), TransferProperty.TRIGGERING),
             "diag": (periodic(1000), TransferProperty.PENDING)},
            timer=periodic(1000), name="F1")
        after_bus = apply_operation(frame, BusyWindowOutput(40.0, 120.0))
        per_signal = unpack(after_bus)
        assert set(per_signal) == {"speed", "diag"}
