"""AND-join buffering bounds and FlexRay-vs-simulator cross-checks."""

import pytest

from repro._errors import AnalysisError, ModelError
from repro.analysis import TaskSpec
from repro.eventmodels import periodic, periodic_with_jitter
from repro.flexray import FlexRayConfig, FlexRayStaticScheduler
from repro.sim import (
    ResponseRecorder,
    Simulator,
    TdmaSim,
    worst_case_arrivals,
)
from repro.system import and_join_buffer_bound


class TestAndJoinBufferBound:
    def test_synchronous_same_rate(self):
        # Equal periodic streams: at most one token waits.
        bound = and_join_buffer_bound([periodic(100.0), periodic(100.0)])
        assert bound == 1

    def test_jitter_builds_backlog(self):
        # One stream can run a jitter-burst ahead of its partner.
        fast = periodic_with_jitter(100.0, 250.0)
        bound = and_join_buffer_bound([fast, periodic(100.0)])
        # With J = 250 the fast stream can be ~ (J + P) / P events
        # ahead of the guaranteed partner count.
        assert bound >= 3

    def test_needs_two_inputs(self):
        with pytest.raises(ModelError):
            and_join_buffer_bound([periodic(10.0)])

    def test_diverging_rates_detected(self):
        with pytest.raises(AnalysisError):
            and_join_buffer_bound([periodic(50.0), periodic(100.0)])

    def test_sporadic_partner_unbounded(self):
        from repro.eventmodels import sporadic
        with pytest.raises(AnalysisError):
            and_join_buffer_bound([periodic(100.0), sporadic(100.0)])


class TestFlexRayAgainstTdmaSim:
    """The static segment is a TDMA table: one slot per frame plus an
    idle remainder.  Driving the TDMA simulator with that table must
    stay within the FlexRay analysis bounds."""

    CYCLE = 1000.0
    SLOT = 50.0

    def _analysis(self, em, wire):
        scheduler = FlexRayStaticScheduler(
            FlexRayConfig(self.CYCLE, self.SLOT, 10, bit_time=0.1))
        specs = [TaskSpec("f", wire, wire, em, slot=0)]
        return scheduler.analyze(specs)["f"]

    def _simulate(self, em, wire, horizon=40_000.0):
        sim = Simulator()
        rec = ResponseRecorder()
        # Slot 0 owned by the frame; the rest of the cycle is idle.
        tdma = TdmaSim(sim, rec, [("f", self.SLOT),
                                  ("idle", self.CYCLE - self.SLOT)])
        tdma.add_task("f", wire)
        tdma.add_task("idle", 1.0)
        # Critical instant: activation right after the slot closes.
        for t in worst_case_arrivals(em, horizon, phase=self.SLOT):
            sim.schedule(t, lambda: tdma.activate("f"))
        sim.run_until(horizon * 2)
        return rec

    def test_periodic_frame_conservative(self):
        em = periodic(2000.0)
        bound = self._analysis(em, 10.0).r_max
        rec = self._simulate(em, 10.0)
        assert rec.count("f") > 15
        assert rec.worst_case("f") <= bound + 1e-6

    def test_jittered_frame_conservative(self):
        em = periodic_with_jitter(2200.0, 1800.0)
        bound = self._analysis(em, 10.0).r_max
        rec = self._simulate(em, 10.0)
        assert rec.count("f") > 10
        assert rec.worst_case("f") <= bound + 1e-6

    def test_sim_actually_stresses_the_bound(self):
        # The observed worst case comes close to the analytic bound
        # (within one slot length) — the bound is tight, not vacuous.
        em = periodic(2000.0)
        bound = self._analysis(em, 10.0).r_max
        rec = self._simulate(em, 10.0)
        assert rec.worst_case("f") >= bound - self.SLOT
