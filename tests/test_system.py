"""Unit tests for the system graph and the global propagation engine."""

import pytest

from repro._errors import ConvergenceError, ModelError
from repro.analysis import SPNPScheduler, SPPScheduler
from repro.core import TransferProperty, is_hierarchical
from repro.eventmodels import periodic, periodic_with_jitter
from repro.system import (
    JunctionKind,
    System,
    analyze_system,
    path_latency,
)
from repro.system.junctions import (
    check_and_join_rates,
    decompose_multi_input,
)
from repro.system.propagation import _StreamResolver

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def simple_chain():
    """src -> t1 (cpuA) -> t2 (cpuB)."""
    s = System("chain")
    s.add_source("src", periodic(100.0))
    s.add_resource("cpuA", SPPScheduler())
    s.add_resource("cpuB", SPPScheduler())
    s.add_task("t1", "cpuA", (5.0, 10.0), ["src"], priority=1)
    s.add_task("t2", "cpuB", (8.0, 8.0), ["t1"], priority=1)
    return s


class TestGraphConstruction:
    def test_duplicate_source(self):
        s = System()
        s.add_source("x", periodic(10.0))
        with pytest.raises(ModelError):
            s.add_source("x", periodic(20.0))

    def test_duplicate_task_vs_source(self):
        s = System()
        s.add_source("x", periodic(10.0))
        s.add_resource("cpu", SPPScheduler())
        with pytest.raises(ModelError):
            s.add_task("x", "cpu", (1.0, 1.0), ["x"])

    def test_unknown_resource(self):
        s = System()
        s.add_source("x", periodic(10.0))
        with pytest.raises(ModelError):
            s.add_task("t", "nope", (1.0, 1.0), ["x"])

    def test_validate_unknown_input(self):
        s = System()
        s.add_resource("cpu", SPPScheduler())
        s.add_source("x", periodic(10.0))
        s.add_task("t", "cpu", (1.0, 1.0), ["ghost"])
        with pytest.raises(ModelError):
            s.validate()

    def test_validate_taskless_input(self):
        s = System()
        s.add_resource("cpu", SPPScheduler())
        s.tasks["broken"] = __import__(
            "repro.system.model", fromlist=["Task"]).Task(
                "broken", "cpu", 1.0, 1.0, [])
        with pytest.raises(ModelError):
            s.validate()

    def test_pack_junction_needs_properties(self):
        s = System()
        s.add_source("a", periodic(10.0))
        with pytest.raises(ModelError):
            s.add_junction("j", JunctionKind.PACK, ["a"])

    def test_unpack_single_input(self):
        s = System()
        s.add_source("a", periodic(10.0))
        s.add_source("b", periodic(10.0))
        with pytest.raises(ModelError):
            s.add_junction("u", JunctionKind.UNPACK, ["a", "b"])

    def test_timer_must_be_source(self):
        s = System()
        s.add_resource("cpu", SPPScheduler())
        s.add_source("a", periodic(10.0))
        s.add_task("t", "cpu", (1.0, 1.0), ["a"])
        s.add_junction("j", JunctionKind.PACK, ["a"],
                       properties={"a": TRIG}, timer="t")
        with pytest.raises(ModelError):
            s.validate()


class TestPropagation:
    def test_chain_converges(self):
        result = analyze_system(simple_chain())
        assert result.converged
        assert result.wcrt("t1") == 10.0
        assert result.wcrt("t2") == 8.0

    def test_response_jitter_propagates(self):
        # t1 has response span 5 -> t2 sees jitter but is alone on cpuB,
        # so its own WCRT is just its WCET.
        s = simple_chain()
        result = analyze_system(s)
        responses = {}
        for rr in result.resource_results.values():
            responses.update(rr.task_results)
        resolver = _StreamResolver(s, responses, {})
        t1_out = resolver.port("t1")
        assert t1_out.delta_plus(2) == pytest.approx(100.0 + 5.0)

    def test_shared_resource_interference(self):
        s = System()
        s.add_source("fast", periodic(50.0))
        s.add_source("slow", periodic(200.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("hi", "cpu", (10.0, 10.0), ["fast"], priority=1)
        s.add_task("lo", "cpu", (20.0, 20.0), ["slow"], priority=2)
        result = analyze_system(s)
        # lo: 20 + interference of hi over the window: w=40 -> eta=1
        # ... w = 20 + 10*eta_fast(w): w0=30 -> eta(30)=1 -> 30;
        # eta(30)=1 stable -> 30.
        assert result.wcrt("lo") == 30.0

    def test_or_junction(self):
        s = System()
        s.add_source("a", periodic(100.0))
        s.add_source("b", periodic(150.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("j", JunctionKind.OR, ["a", "b"])
        s.add_task("t", "cpu", (5.0, 5.0), ["j"], priority=1)
        result = analyze_system(s)
        # Burst of 2 (both sources aligned): q=2 window -> 10.
        assert result.wcrt("t") == 10.0

    def test_multi_input_task_implicit_or(self):
        s = System()
        s.add_source("a", periodic(100.0))
        s.add_source("b", periodic(150.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("t", "cpu", (5.0, 5.0), ["a", "b"], priority=1)
        result = analyze_system(s)
        assert result.wcrt("t") == 10.0

    def test_and_junction(self):
        s = System()
        s.add_source("a", periodic(100.0))
        s.add_source("b", periodic(100.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("j", JunctionKind.AND, ["a", "b"])
        s.add_task("t", "cpu", (5.0, 5.0), ["j"], priority=1)
        result = analyze_system(s)
        assert result.wcrt("t") == 5.0

    def test_pack_unpack_roundtrip(self):
        s = System()
        s.add_source("sig", periodic(100.0))
        s.add_source("tick", periodic(400.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("pk", JunctionKind.PACK, ["sig"],
                       properties={"sig": TRIG}, timer="tick")
        s.add_task("frame", "bus", (8.0, 8.0), ["pk"], priority=1)
        s.add_junction("un", JunctionKind.UNPACK, ["frame"])
        s.add_task("consumer", "cpu", (10.0, 10.0), ["un.sig"],
                   priority=1)
        result = analyze_system(s)
        assert result.converged
        assert result.wcrt("consumer") == 10.0

    def test_unpack_flat_stream_rejected(self):
        s = System()
        s.add_source("sig", periodic(100.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_junction("un", JunctionKind.UNPACK, ["sig"])
        s.add_task("t", "cpu", (1.0, 1.0), ["un.sig"], priority=1)
        with pytest.raises(ModelError):
            analyze_system(s)

    def test_cycle_without_seed_rejected(self):
        s = System()
        s.add_source("src", periodic(100.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("a", "cpu", (1.0, 1.0), ["src", "b"], priority=1)
        s.add_task("b", "cpu", (1.0, 1.0), ["a"], priority=2)
        with pytest.raises(ModelError):
            analyze_system(s)

    def test_cycle_with_seed_converges(self):
        # A convergent feedback loop: zero-response-span tasks on
        # dedicated resources; the AND with the feedback stream is
        # dominated by the source after one iteration.
        s = System()
        s.add_source("src", periodic(100.0))
        s.add_resource("cpuA", SPPScheduler())
        s.add_resource("cpuB", SPPScheduler())
        s.add_task("a", "cpuA", (1.0, 1.0), ["src", "b"], priority=1,
                   activation="and")
        s.add_task("b", "cpuB", (1.0, 1.0), ["a"], priority=1)
        # Seed every task in the cycle: the cut point depends on the
        # resolver's traversal entry.
        result = analyze_system(
            s, initial_outputs={"a": periodic(100.0),
                                "b": periodic(100.0)})
        assert result.converged

    def test_divergent_feedback_detected(self):
        # AND-join jitter feedback on a shared resource accumulates
        # response jitter every iteration: a genuinely divergent model
        # that must be reported, not looped on forever.
        s = System()
        s.add_source("src", periodic(100.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("a", "cpu", (1.0, 1.0), ["src", "b"], priority=1,
                   activation="and")
        s.add_task("b", "cpu", (1.0, 1.0), ["a"], priority=2)
        with pytest.raises(ConvergenceError):
            analyze_system(s, initial_outputs={
                "a": periodic(100.0), "b": periodic(100.0)},
                max_iterations=20)

    def test_iteration_limit(self):
        with pytest.raises(ConvergenceError):
            analyze_system(simple_chain(), max_iterations=0)


class TestHierarchicalStreamInSystem:
    def test_hem_reaches_consumer(self):
        s = System()
        s.add_source("sig", periodic(100.0))
        s.add_source("pend", periodic(300.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_junction("pk", JunctionKind.PACK, ["sig", "pend"],
                       properties={"sig": TRIG, "pend": PEND})
        s.add_task("frame", "bus", (8.0, 8.0), ["pk"], priority=1)
        result = analyze_system(s)
        responses = {}
        for rr in result.resource_results.values():
            responses.update(rr.task_results)
        resolver = _StreamResolver(s, responses, {})
        out = resolver.port("frame")
        assert is_hierarchical(out)
        assert set(out.labels) == {"sig", "pend"}


class TestPathLatency:
    def test_chain_latency(self):
        s = simple_chain()
        result = analyze_system(s)
        lat = path_latency(s, result, ["src", "t1", "t2"])
        assert lat.worst_case == 18.0
        assert lat.best_case == 13.0

    def test_pending_sampling_delay_added(self):
        s = System()
        s.add_source("p", periodic(500.0))
        s.add_source("tick", periodic(100.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_junction("pk", JunctionKind.PACK, ["p"],
                       properties={"p": PEND}, timer="tick")
        s.add_task("frame", "bus", (8.0, 8.0), ["pk"], priority=1)
        result = analyze_system(s)
        lat = path_latency(s, result, ["p", "pk", "frame"])
        # pending wait bounded by the frame stream's delta_plus(2) = 100.
        assert lat.sampling_delay == pytest.approx(100.0)
        assert lat.worst_case == pytest.approx(100.0 + 8.0)

    def test_too_short_path(self):
        s = simple_chain()
        result = analyze_system(s)
        with pytest.raises(ModelError):
            path_latency(s, result, ["t1"])

    def test_source_must_lead(self):
        s = simple_chain()
        result = analyze_system(s)
        with pytest.raises(ModelError):
            path_latency(s, result, ["t1", "src"])


class TestJunctionHelpers:
    def test_and_rate_check_passes(self):
        check_and_join_rates([periodic(100.0), periodic(100.0)])

    def test_and_rate_check_fails(self):
        with pytest.raises(ModelError):
            check_and_join_rates([periodic(100.0), periodic(200.0)])

    def test_decompose(self):
        (jname, kind, inputs), (tname, tinputs) = decompose_multi_input(
            "t", ["a", "b"])
        assert jname == "t__sc"
        assert inputs == ["a", "b"]
        assert tinputs == [jname]

    def test_decompose_single_rejected(self):
        with pytest.raises(ModelError):
            decompose_multi_input("t", ["a"])
