"""Unit tests for the CAN bit-timing and identifier substrate."""

import pytest

from repro._errors import ModelError
from repro.can import (
    CanBus,
    CanBusTiming,
    assign_by_deadline,
    assign_by_period,
    frame_bits_max,
    frame_bits_min,
    priority_order,
    validate_identifiers,
)


class TestFrameBits:
    def test_standard_8_bytes(self):
        # Classic Davis et al. value: 8-byte standard frame, worst case
        # 135 bits.
        assert frame_bits_max(8) == 135

    def test_standard_0_bytes(self):
        assert frame_bits_max(0) == 34 + 13 + (34 - 1) // 4 == 55

    def test_standard_min_no_stuffing(self):
        assert frame_bits_min(8) == 34 + 64 + 13 == 111

    def test_extended_larger(self):
        assert frame_bits_max(8, extended_id=True) > frame_bits_max(8)

    def test_extended_8_bytes(self):
        # g = 54: 54 + 64 + 13 + floor(117/4) = 160
        assert frame_bits_max(8, extended_id=True) == 160

    def test_monotone_in_payload(self):
        values = [frame_bits_max(s) for s in range(9)]
        assert values == sorted(values)

    def test_payload_out_of_range(self):
        with pytest.raises(ModelError):
            frame_bits_max(9)
        with pytest.raises(ModelError):
            frame_bits_min(-1)


class TestBusTiming:
    def test_bit_time_validation(self):
        with pytest.raises(ModelError):
            CanBusTiming(0.0)

    def test_from_bitrate(self):
        t = CanBusTiming.from_bitrate(2.0)
        assert t.bit_time == 0.5

    def test_transmission_times(self):
        t = CanBusTiming(0.5)
        assert t.transmission_time_max(4) == frame_bits_max(4) * 0.5
        assert t.transmission_time_min(4) == frame_bits_min(4) * 0.5

    def test_min_below_max(self):
        t = CanBusTiming(1.0)
        for s in range(9):
            assert t.transmission_time_min(s) < t.transmission_time_max(s)

    def test_canbus_frame_time(self):
        bus = CanBus.from_bitrate("b", 2.0)
        lo, hi = bus.frame_time(2)
        assert lo < hi


class TestIdentifiers:
    def test_validate_ok(self):
        validate_identifiers({"a": 1, "b": 2})

    def test_duplicate_rejected(self):
        with pytest.raises(ModelError):
            validate_identifiers({"a": 1, "b": 1})

    def test_range_standard(self):
        with pytest.raises(ModelError):
            validate_identifiers({"a": 0x800})

    def test_range_extended_ok(self):
        validate_identifiers({"a": 0x800}, extended=True)

    def test_assign_by_deadline(self):
        ids = assign_by_deadline({"slow": 100.0, "fast": 10.0})
        assert ids["fast"] < ids["slow"]

    def test_assign_by_period(self):
        ids = assign_by_period({"x": 500.0, "y": 100.0, "z": 300.0})
        assert priority_order(ids) == ["y", "z", "x"]

    def test_deterministic_tie_break(self):
        a = assign_by_period({"b": 100.0, "a": 100.0})
        b = assign_by_period({"a": 100.0, "b": 100.0})
        assert a == b
