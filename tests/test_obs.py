"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers: span nesting and exception safety, histogram percentiles,
JSONL round-trip, the convergence report, and — crucially — that the
disabled fast path adds no spans, no metrics, and no obs-side
allocations to ``analyze_system``.
"""

import tracemalloc
from pathlib import Path

import pytest

from repro import analyze_system, configure, get_tracer, metrics, obs
from repro._errors import ModelError
from repro.examples_lib.rox08 import build_system
from repro.obs import (
    MetricsRegistry,
    Tracer,
    read_jsonl,
    span_to_dict,
    spans_to_jsonl,
    tracer_to_jsonl,
)
from repro.viz import ConvergenceReport, render_convergence_report


@pytest.fixture
def obs_on():
    """Enable observability for one test, clean up afterwards."""
    configure(enabled=True, reset=True)
    yield obs
    configure(enabled=False, reset=True)


@pytest.fixture(autouse=True)
def obs_off_guard():
    """No test may leak a flipped switch into the rest of the suite."""
    yield
    configure(enabled=False)


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                with tracer.span("leaf") as leaf:
                    assert leaf.parent_id == inner.span_id
            assert tracer.current() is outer
        assert tracer.current() is None
        assert [s.name for s in tracer.spans()] == \
            ["leaf", "inner", "outer"]

    def test_exception_marks_span_and_restores_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise ValueError("kaputt")
        assert tracer.current() is None
        boom = tracer.spans("boom")[0]
        assert boom.status == "error"
        assert "kaputt" in boom.error
        assert boom.end is not None
        # the outer span still closed cleanly
        assert tracer.spans("outer")[0].status == "error" or \
            tracer.spans("outer")[0].status == "ok"

    def test_missed_finish_deeper_down_is_recovered(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("forgotten")  # never finished explicitly
        outer.finish()
        assert tracer.current() is None

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("work", phase=1) as span:
            span.set(items=3)
            tracer.event("checkpoint", at="half")
        done = tracer.spans("work")[0]
        assert done.attributes == {"phase": 1, "items": 3}
        assert done.events[0]["name"] == "checkpoint"
        assert done.duration >= 0.0

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")  # must not raise
        assert len(tracer) == 0

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert not reg.is_empty()
        reg.reset()
        assert reg.is_empty()

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)

    def test_histogram_percentile_clamps_out_of_range(self):
        hist = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        # Callers computing p = 100*(1-1/n) can land a hair outside
        # [0, 100] through float error; clamp instead of raising.
        assert hist.percentile(101) == 3.0
        assert hist.percentile(-5) == 1.0
        assert hist.percentile(100.0000000001) == 3.0
        with pytest.raises(ModelError):
            hist.percentile(float("nan"))

    def test_histogram_empty_and_singleton(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0
        assert hist.summary()["count"] == 0
        hist.observe(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0
        assert hist.summary()["p99"] == 7.0

    def test_histogram_p0_p100_exact_min_max(self):
        hist = MetricsRegistry().histogram("h")
        for v in (5.0, -2.0, 9.5, 3.0):
            hist.observe(v)
        assert hist.percentile(0) == -2.0 == hist.min
        assert hist.percentile(100) == 9.5 == hist.max

    def test_delta_since_and_merge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.0)
        mark = reg.mark()
        reg.counter("c").inc(2)
        reg.counter("new").inc()
        reg.gauge("g").set(7.5)
        reg.histogram("h").observe(2.0)
        reg.histogram("h2").observe(9.0)
        delta = reg.delta_since(mark)
        assert delta["counters"] == {"c": 2, "new": 1}
        assert delta["gauges"] == {"g": 7.5}
        assert delta["histograms"] == {"h": [2.0], "h2": [9.0]}

        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        parent.merge_delta(delta)
        snap = parent.snapshot()
        assert snap["counters"]["c"] == 12
        assert snap["counters"]["new"] == 1
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h2"]["max"] == 9.0

    def test_delta_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        mark = reg.mark()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.5)
        delta = json.loads(json.dumps(reg.delta_since(mark)))
        other = MetricsRegistry()
        other.merge_delta(delta)
        assert other.counter("c").value == 1

    def test_empty_delta_merges_as_noop(self):
        reg = MetricsRegistry()
        delta = reg.delta_since(reg.mark())
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}
        reg.merge_delta(delta)
        assert reg.is_empty()

    def test_time_block(self):
        hist = MetricsRegistry().histogram("t")
        with hist.time_block():
            pass
        assert hist.count == 1
        assert hist.values[0] >= 0.0


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", system="s") as outer:
            tracer.event("junction", junction="F1", kind="pack")
            with tracer.span("inner", resource="cpu"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer_to_jsonl(tracer, str(path))
        records = read_jsonl(str(path))
        assert len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["attributes"] == {"system": "s"}
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert by_name["outer"]["events"][0]["junction"] == "F1"
        assert all(r["type"] == "span" for r in records)
        assert all(r["end"] >= r["start"] >= 0.0 for r in records)

    def test_span_to_dict_serialises_odd_attributes(self):
        tracer = Tracer()
        with tracer.span("x", model=object(), names=("a", "b")) as span:
            pass
        record = span_to_dict(span)
        assert isinstance(record["attributes"]["model"], str)
        assert record["attributes"]["names"] == ["a", "b"]

    def test_metrics_to_json(self, tmp_path):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.0)
        path = tmp_path / "metrics.json"
        obs.metrics_to_json(reg, str(path), extra={"wall_seconds": 0.5})
        data = json.loads(Path(path).read_text())
        assert data["counters"]["c"] == 2
        assert data["histograms"]["h"]["count"] == 1
        assert data["wall_seconds"] == 0.5


class TestChromeExport:
    def test_complete_events_and_metadata(self, tmp_path):
        import json

        from repro.obs import tracer_to_chrome

        tracer = Tracer()
        with tracer.span("outer", system="s"):
            tracer.event("checkpoint", junction="F1")
            with tracer.span("inner", resource="cpu"):
                pass
        path = tmp_path / "trace.json"
        payload = tracer_to_chrome(tracer, str(path))
        # file and return value agree and are valid JSON
        assert json.loads(path.read_text()) == payload
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        instant = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert [m["name"] for m in meta][:1] == ["process_name"]
        assert any(m["name"] == "thread_name" for m in meta)
        assert instant[0]["name"] == "checkpoint"
        assert instant[0]["args"]["junction"] == "F1"
        by_name = {e["name"]: e for e in complete}
        outer, inner = by_name["outer"], by_name["inner"]
        # microsecond timestamps, relative to the tracer origin
        assert outer["ts"] >= 0.0
        assert outer["dur"] >= inner["dur"] >= 0.0
        assert inner["ts"] >= outer["ts"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # same (single) thread row for both spans
        assert outer["tid"] == inner["tid"] == 1
        assert outer["pid"] == inner["pid"] == 1
        assert outer["args"]["system"] == "s"

    def test_unfinished_spans_are_skipped(self):
        from repro.obs.export import spans_to_chrome

        tracer = Tracer()
        open_span = tracer.start("open")
        with tracer.span("closed"):
            pass
        payload = spans_to_chrome(tracer.spans() + [open_span])
        names = [e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"]
        assert names == ["closed"]

    def test_error_spans_are_flagged(self):
        from repro.obs.export import spans_to_chrome

        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("kaputt")
        payload = spans_to_chrome(tracer.spans(), t0=tracer.t0)
        event = [e for e in payload["traceEvents"]
                 if e["ph"] == "X"][0]
        assert "error" in event["cat"]
        assert event["args"]["status"] == "error"
        assert "kaputt" in event["args"]["error"]

    def test_explained_run_exports_valid_chrome_trace(self, obs_on):
        import json

        from repro.obs import tracer_to_chrome

        analyze_system(build_system("hem"))
        payload = json.loads(json.dumps(
            tracer_to_chrome(get_tracer())))
        complete = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert {e["name"] for e in complete} >= {
            "global_iteration", "local_analysis"}
        assert all(e["dur"] >= 0.0 for e in complete)


class TestEngineIntegration:
    def test_analyze_system_emits_convergence_spans(self, obs_on):
        result = analyze_system(build_system("hem"))
        tracer = get_tracer()
        iterations = tracer.spans("global_iteration")
        assert len(iterations) == result.iterations
        first, last = iterations[0].attributes, iterations[-1].attributes
        assert first["iteration"] == 1
        assert first["residual_r_max"] > 0.0
        assert first["unstable_models"] == len(first["changed_ports"]) > 0
        assert last["converged"] is True
        assert last["residual_r_max"] == 0.0
        # local analyses nested under their iteration span
        local = tracer.spans("local_analysis")
        assert {s.attributes["resource"] for s in local} == {"CAN", "CPU1"}
        assert all(s.parent_id is not None for s in local)

    def test_analyze_system_emits_metrics(self, obs_on):
        analyze_system(build_system("hem"))
        snap = metrics().snapshot()
        assert snap["counters"]["propagation.iterations"] >= 2
        # With curve compilation on (the default) chain memoisation moves
        # from CachedModel to the compile fingerprint cache.
        assert (snap["counters"].get("compile.cache.hits", 0) > 0
                or snap["counters"].get("eventmodels.cache.hits", 0) > 0)
        assert snap["counters"]["propagation.junction.pack"] > 0
        assert snap["counters"]["propagation.junction.unpack"] > 0
        assert snap["counters"]["busy_window.fixed_point_calls"] > 0
        assert snap["histograms"][
            "propagation.local_analysis_seconds"]["count"] > 0
        assert snap["gauges"]["propagation.iterations_to_convergence"] \
            == snap["counters"]["propagation.iterations"]

    def test_simulator_throughput_metrics(self, obs_on):
        from repro.sim import Simulator

        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run_until(100.0)
        snap = metrics().snapshot()
        assert snap["counters"]["sim.events"] == 10
        assert snap["gauges"]["sim.events_per_second"] > 0

    def test_convergence_report_renders(self, obs_on, tmp_path):
        analyze_system(build_system("hem"))
        report = ConvergenceReport.from_tracer(get_tracer())
        text = report.render()
        assert report.converged is True
        assert "converged" in text
        assert "max |dR+|" in text
        # the same report reconstructed from an exported JSONL trace
        path = tmp_path / "t.jsonl"
        tracer_to_jsonl(get_tracer(), str(path))
        roundtrip = ConvergenceReport.from_records(read_jsonl(str(path)))
        assert roundtrip.iterations == report.iterations
        assert roundtrip.render() == text
        assert render_convergence_report(get_tracer()) == text

    def test_empty_report_is_explicit(self):
        assert "no convergence data" in ConvergenceReport([]).render()

    def test_engine_metrics_footer(self, obs_on):
        from repro.analysis import kernels

        kernels.configure(min_batch=0, min_load=0.0)
        try:
            analyze_system(build_system("hem"))
        finally:
            kernels.configure(min_batch=16, min_load=0.5)
        report = ConvergenceReport.from_tracer(get_tracer(),
                                               registry=metrics())
        snap = metrics().snapshot()
        assert snap["counters"]["kernels.vector_lanes"] > 0
        assert "compile.cache_hit_rate" in snap["gauges"]
        text = report.render()
        assert "engine:" in text
        assert "kernels.vector_lanes=" in text
        assert "compile.cache_hit_rate=" in text

    def test_engine_footer_absent_without_registry(self, obs_on):
        analyze_system(build_system("hem"))
        assert "engine:" not in ConvergenceReport.from_tracer(
            get_tracer()).render()


class TestDisabledFastPath:
    def test_disabled_run_collects_nothing(self):
        configure(enabled=False, reset=True)
        result = analyze_system(build_system("hem"))
        assert result.converged
        assert len(get_tracer()) == 0
        assert metrics().is_empty()

    def test_disabled_run_allocates_nothing_in_obs(self):
        """Regression guard for the near-zero-overhead promise: with the
        switch off, analyze_system on the rox08 example must not
        allocate a single block inside repro/obs/* or repro/explain/* —
        blame attribution and lineage recording are free when off."""
        import repro.explain as explain_pkg

        configure(enabled=False, reset=True)
        system = build_system("hem")
        analyze_system(system)  # warm caches outside the snapshot window
        guarded = (str(Path(obs.__file__).parent),
                   str(Path(explain_pkg.__file__).parent))
        tracemalloc.start()
        try:
            analyze_system(build_system("hem"))
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        blocks = [
            stat for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.startswith(guarded)
        ]
        assert blocks == [], (
            f"obs/explain allocated while disabled: {blocks}")


class TestTraceCli:
    def test_trace_example_produces_convergence_jsonl(self, tmp_path,
                                                      capsys):
        from repro.obs.cli import trace_main

        out = tmp_path / "quickstart.trace.jsonl"
        example = Path(__file__).resolve().parent.parent / "examples" \
            / "quickstart.py"
        code = trace_main([str(example), "--quiet", "--out", str(out)])
        assert code == 0
        records = read_jsonl(str(out))
        convergence = [r for r in records
                       if r["name"] == "global_iteration"]
        assert convergence, "trace has no per-iteration spans"
        assert all("residual_r_max" in r["attributes"]
                   for r in convergence)
        assert convergence[-1]["attributes"]["converged"] is True
        stdout = capsys.readouterr().out
        assert "Convergence of the global fixed-point iteration" in stdout
        assert obs.enabled is False  # CLI must restore the switch

    def test_trace_builtin_rox08(self, tmp_path, capsys, monkeypatch):
        from repro.obs.cli import trace_main

        monkeypatch.chdir(tmp_path)
        code = trace_main(["rox08", "--metrics", "m.json"])
        assert code == 0
        records = read_jsonl("rox08.trace.jsonl")
        assert any(r["name"] == "global_iteration" for r in records)
        assert Path("m.json").exists()

    def test_trace_missing_target(self, capsys):
        from repro.obs.cli import trace_main

        assert trace_main(["no/such/example.py"]) == 2


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.configure is obs.configure
        assert repro.get_tracer is obs.get_tracer
        assert repro.metrics is obs.metrics
        for name in ("obs", "configure", "get_tracer", "metrics"):
            assert name in repro.__all__

    def test_configure_toggles_module_flag(self):
        configure(enabled=True)
        assert obs.enabled is True
        configure(enabled=False)
        assert obs.enabled is False
