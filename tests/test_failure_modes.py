"""Failure-injection tests: overload, divergence, and error reporting
through the full engine stack."""

import pytest

from repro._errors import (
    AnalysisError,
    ConvergenceError,
    ModelError,
    NotSchedulableError,
)
from repro.analysis import SPNPScheduler, SPPScheduler, TaskSpec
from repro.eventmodels import periodic, periodic_with_burst
from repro.system import System, analyze_system


class TestOverloadSurfaces:
    def test_cpu_overload_carries_context(self):
        s = System()
        s.add_source("x", periodic(10.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("t", "cpu", (11.0, 11.0), ["x"], priority=1)
        with pytest.raises(NotSchedulableError) as err:
            analyze_system(s)
        assert err.value.resource == "cpu"
        assert err.value.utilization > 1.0

    def test_upstream_jitter_breaks_downstream_resource(self):
        # The first hop's response jitter (span 44) turns a perfectly
        # periodic source into a jittered stream whose rate exactly
        # matches the FlexRay cycle — the downstream slot's busy window
        # then never closes.  The engine must surface an analysis
        # error, not loop or crash.
        from repro.flexray import FlexRayConfig, FlexRayStaticScheduler

        s = System()
        s.add_source("x", periodic(1000.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_resource("fr", FlexRayStaticScheduler(
            FlexRayConfig(1000.0, 50.0, 10, bit_time=0.1)))
        s.add_task("stage1", "cpu", (1.0, 45.0), ["x"], priority=1)
        s.add_task("frame", "fr", (10.0, 10.0), ["stage1"], slot=0)
        with pytest.raises(AnalysisError):
            analyze_system(s)

    def test_same_chain_without_jitter_is_fine(self):
        # Control: a zero-span first hop keeps the FlexRay slot happy.
        from repro.flexray import FlexRayConfig, FlexRayStaticScheduler

        s = System()
        s.add_source("x", periodic(1000.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_resource("fr", FlexRayStaticScheduler(
            FlexRayConfig(1000.0, 50.0, 10, bit_time=0.1)))
        s.add_task("stage1", "cpu", (45.0, 45.0), ["x"], priority=1)
        s.add_task("frame", "fr", (10.0, 10.0), ["stage1"], slot=0)
        result = analyze_system(s)
        assert result.converged

    def test_bus_overload_from_or_join(self):
        s = System()
        for i in range(4):
            s.add_source(f"s{i}", periodic(40.0))
        s.add_resource("bus", SPNPScheduler())
        s.add_task("frame", "bus", (15.0, 15.0),
                   [f"s{i}" for i in range(4)], priority=1)
        with pytest.raises(NotSchedulableError):
            analyze_system(s)


class TestEngineErrorHygiene:
    def test_graph_errors_before_any_analysis(self):
        s = System()
        s.add_resource("cpu", SPPScheduler())
        s.add_source("x", periodic(10.0))
        s.add_task("t", "cpu", (1.0, 1.0), ["missing"], priority=1)
        with pytest.raises(ModelError):
            analyze_system(s)

    def test_zero_iteration_budget(self):
        s = System()
        s.add_source("x", periodic(10.0))
        s.add_resource("cpu", SPPScheduler())
        s.add_task("t", "cpu", (1.0, 1.0), ["x"], priority=1)
        with pytest.raises(ConvergenceError):
            analyze_system(s, max_iterations=0)

    def test_scheduler_errors_are_analysis_family(self):
        # Any scheduler failure must derive from AnalysisError so sweeps
        # can catch one family (SMFF robustness contract).
        tasks = [TaskSpec("a", 20.0, 20.0, periodic(10.0), priority=1)]
        for scheduler in (SPPScheduler(), SPNPScheduler()):
            with pytest.raises(AnalysisError):
                scheduler.analyze(tasks, "r")
