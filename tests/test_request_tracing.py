"""End-to-end request correlation: one id across every telemetry plane.

The acceptance bar for the tracing tentpole: a request id issued for
``ServeClient.analyze(...)`` must be recoverable from (1) the HTTP
response header, (2) the bus event stream, (3) the Chrome trace export
as one contiguous span tree from request to fixed point, and (4) the
persisted ``ResultStore`` record.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.context import (TraceContext, current_request_id,
                               new_request_id, request_context)
from repro.obs.export import records_to_chrome, span_to_dict
from repro.serve import RequestRejected, ServeClient, daemon_in_thread


@pytest.fixture(autouse=True)
def _obs_isolation():
    yield
    obs.configure(enabled=False, reset=True)
    obs.get_bus().clear()


class _Recorder:
    """Bus sink that keeps every event."""

    name = "test-recorder"

    def __init__(self):
        self.events = []
        self._lock = threading.Lock()

    def handle(self, event):
        with self._lock:
            self.events.append(dict(event))

    def all(self):
        with self._lock:
            return list(self.events)


# ----------------------------------------------------------------------
# context primitives
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_new_request_ids_are_unique(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64

    def test_no_ambient_context_by_default(self):
        assert current_request_id() == ""

    def test_request_context_scopes_the_id(self):
        with request_context(request_id="rid-1") as ctx:
            assert isinstance(ctx, TraceContext)
            assert current_request_id() == "rid-1"
        assert current_request_id() == ""

    def test_context_does_not_cross_threads(self):
        seen = {}

        def probe():
            seen["rid"] = current_request_id()

        with request_context(request_id="rid-2"):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["rid"] == ""


# ----------------------------------------------------------------------
# the e2e acceptance test
# ----------------------------------------------------------------------
class TestEndToEndCorrelation:
    def test_one_id_across_all_planes(self, tmp_path):
        recorder = _Recorder()
        obs.get_bus().subscribe(recorder)
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            resp = client.analyze(example="pipeline")
            tracer = obs.get_tracer()
            spans = [s for s in tracer.spans()
                     if s.request_id == resp.request_id]
            record = handle.daemon.store.get(resp.key)
        finally:
            obs.get_bus().unsubscribe(recorder)
            handle.stop()

        # (1) HTTP header (ServeClient copies the echoed header in).
        rid = resp.request_id
        assert rid and resp.ok

        # (2) bus events carry the id, from span_start to the final
        # job event.
        tagged = [e for e in recorder.all()
                  if e.get("request_id") == rid]
        kinds = {e["type"] for e in tagged}
        assert "span_start" in kinds
        assert "span" in kinds
        assert "job" in kinds

        # (3) the request's spans form ONE contiguous tree rooted at
        # serve.request: every span's parent is another span of the
        # same request.
        assert spans, "no spans stamped with the request id"
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "serve.request"
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, (
                    f"{span.name} parented outside the request tree")
        names = {s.name for s in spans}
        assert {"serve.request", "serve.queue_wait",
                "serve.execute"} <= names
        assert "global_iteration" in names, (
            "analysis spans not stitched under the request")

        # ... and the Chrome export keeps the id on every event.
        chrome = records_to_chrome([span_to_dict(s) for s in spans])
        complete = [e for e in chrome["traceEvents"]
                    if e.get("ph") == "X"]
        assert len(complete) == len(spans)
        assert all(e["args"].get("request_id") == rid
                   for e in complete)

        # (4) the persisted store record.
        assert record is not None
        assert record.request_id == rid
        assert record.to_dict()["request_id"] == rid

    def test_caller_supplied_id_is_honored(self, tmp_path):
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            resp = client.analyze(example="pipeline",
                                  request_id="my-rid-42")
        finally:
            handle.stop()
        assert resp.request_id == "my-rid-42"
        assert resp.data  # a real analysis came back

    def test_rejections_still_echo_an_id(self, tmp_path):
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            with pytest.raises(RequestRejected) as excinfo:
                client.analyze()  # neither system nor example: 400
        finally:
            handle.stop()
        assert excinfo.value.status == 400
        assert excinfo.value.request_id

    def test_distinct_requests_get_distinct_trees(self, tmp_path):
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            first = client.analyze(example="pipeline")
            second = client.explain(example="pipeline")
            tracer = obs.get_tracer()
            assert first.request_id != second.request_id
            for rid in (first.request_id, second.request_id):
                roots = [s for s in tracer.spans("serve.request")
                         if s.request_id == rid]
                assert len(roots) == 1
        finally:
            handle.stop()
