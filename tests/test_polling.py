"""Tests for the polling receive mode (simulator + unpack_polled bound)."""

import pytest

from repro._errors import ModelError
from repro.can import CanBusTiming
from repro.com import ComLayer, Frame, FrameType, Signal
from repro.core import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    unpack_polled,
)
from repro.eventmodels import periodic, trace_within_bounds
from repro.sim import CanBusSim, ComLayerSim, EventTrace, Simulator

TRIG = TransferProperty.TRIGGERING


def build_stack():
    layer = ComLayer()
    layer.add_frame(Frame("F", FrameType.DIRECT,
                          [Signal("a", 8, TRIG)], can_id=1))
    sim = Simulator()
    trace = EventTrace()
    bus = CanBusSim(sim)
    com = ComLayerSim(sim, layer, bus, {"F": 10.0}, trace=trace)
    return sim, trace, com


class TestPollingSim:
    def test_poll_sees_new_value(self):
        sim, trace, com = build_stack()
        com.poll_signal("a", period=100.0)
        sim.schedule(5.0, lambda: com.write_signal("a"))
        sim.run_until(500.0)
        # Delivered at 15; first poll at 100 picks it up.
        assert trace.events("poll.a") == [100.0]

    def test_poll_collapses_multiple_deliveries(self):
        sim, trace, com = build_stack()
        com.poll_signal("a", period=100.0)
        for t in (5.0, 30.0, 60.0):
            sim.schedule(t, lambda: com.write_signal("a"))
        sim.run_until(500.0)
        # Three deliveries before the poll: one activation.
        assert trace.events("poll.a") == [100.0]

    def test_no_activation_without_new_data(self):
        sim, trace, com = build_stack()
        com.poll_signal("a", period=100.0)
        sim.schedule(5.0, lambda: com.write_signal("a"))
        sim.run_until(1000.0)
        assert trace.events("poll.a") == [100.0]  # not repeated

    def test_callback_invoked(self):
        sim, trace, com = build_stack()
        seen = []
        com.poll_signal("a", period=50.0,
                        callback=lambda s, t: seen.append((s, t)))
        sim.schedule(0.0, lambda: com.write_signal("a"))
        sim.run_until(200.0)
        assert seen == [("a", 50.0)]

    def test_interrupt_mode_still_works_alongside(self):
        sim, trace, com = build_stack()
        interrupts = []
        com.on_delivery("a", lambda s, t: interrupts.append(t))
        com.poll_signal("a", period=100.0)
        sim.schedule(5.0, lambda: com.write_signal("a"))
        sim.run_until(200.0)
        assert interrupts == [15.0]
        assert trace.events("poll.a") == [100.0]

    def test_validation(self):
        _, _, com = build_stack()
        with pytest.raises(ModelError):
            com.poll_signal("ghost", 100.0)
        with pytest.raises(ModelError):
            com.poll_signal("a", 0.0)

    def test_polled_stream_within_unpack_polled_bound(self):
        # Drive the frame fast, poll slowly: the poll.a stream must be
        # inside the shaped unpacked model (min distance >= poll period).
        layer = ComLayer()
        layer.add_frame(Frame("F", FrameType.DIRECT,
                              [Signal("a", 8, TRIG)], can_id=1))
        sim = Simulator()
        trace = EventTrace()
        bus = CanBusSim(sim)
        com = ComLayerSim(sim, layer, bus, {"F": 10.0}, trace=trace)
        com.poll_signal("a", period=250.0)
        source = periodic(100.0, "a")
        t = 0.0
        while t < 10_000.0:
            sim.schedule(t, lambda: com.write_signal("a"))
            t += 100.0
        sim.run_until(20_000.0)

        hem = layer.build_frame_hem("F", {"a": source})
        delivered = apply_operation(hem, BusyWindowOutput(10.0, 10.0))
        polled_bound = unpack_polled(delivered, "a", poll_period=250.0)
        observed = trace.events("poll.a")
        assert len(observed) > 20
        assert trace_within_bounds(observed, polled_bound)
