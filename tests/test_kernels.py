"""Unit tests for the batched busy-window kernels.

Covers the :class:`~repro.analysis.kernels.EtaTable` dispatch kinds, the
runtime switches (``configure`` / env-flag mirrors), the batch-worthwhile
heuristic, the joint vector fixed point (including the warm-start
overshoot guard), and scalar-vs-batched equality on a small resource.
"""

import math

import pytest

from repro._errors import NotSchedulableError
from repro.analysis import SPPScheduler, TaskSpec
from repro.analysis import kernels
from repro.eventmodels import (
    StandardEventModel,
    freeze,
    periodic,
    periodic_with_jitter,
)
from repro.eventmodels.base import EventModel, NullEventModel


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    snap = (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
            kernels.min_batch_lanes, kernels.min_batch_load)
    yield
    (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
     kernels.min_batch_lanes, kernels.min_batch_load) = snap


def spp_tasks(n=6, util=0.8):
    tasks = []
    share = util / n
    for i in range(n):
        period = 60.0 * (i + 2) + 3.0 * (i % 3)
        em = StandardEventModel(period=period, jitter=0.4 * period,
                                d_min=1.0 + 0.2 * i)
        tasks.append(TaskSpec(name=f"t{i}", event_model=em,
                              c_min=0.5 * share * period,
                              c_max=share * period, priority=i + 1))
    return tasks


def result_digest(rr):
    return {n: (t.r_min, t.r_max, tuple(t.busy_times), t.q_max)
            for n, t in rr.task_results.items()}


# ----------------------------------------------------------------------
# EtaTable
# ----------------------------------------------------------------------
class _CustomEta(EventModel):
    """Overrides eta_plus -> must dispatch per-lane (scalar kind)."""

    def delta_min(self, n):
        return max(0.0, (n - 1) * 7.0)

    def delta_plus(self, n):
        return max(0.0, (n - 1) * 9.0)

    def eta_plus(self, dt):
        if dt <= 0:
            return 0
        return int(math.ceil(dt / 7.0))


class TestEtaTable:
    XS = [0.0, 0.5, 1.0, 7.0, 49.999, 50.0, 123.4, 9999.0]

    def check_matches_model(self, model):
        tab = kernels.EtaTable(model)
        expect = [model.eta_plus(x) for x in self.XS]
        assert list(tab.eta_many(self.XS)) == expect
        assert [tab.eta_one(x) for x in self.XS] == expect
        if kernels._np is not None:
            xs = kernels._np.asarray(self.XS, dtype=float)
            got = tab.eta_many_np(xs)
            assert [float(v) for v in got] == [float(e) for e in expect]

    def test_null_kind(self):
        tab = kernels.EtaTable(NullEventModel())
        assert tab.kind == kernels._KIND_NULL
        self.check_matches_model(NullEventModel())

    def test_sem_kind(self):
        model = StandardEventModel(period=50.0, jitter=120.0, d_min=4.0)
        assert kernels.EtaTable(model).kind == kernels._KIND_SEM
        self.check_matches_model(model)

    def test_sem_without_dmin(self):
        self.check_matches_model(StandardEventModel(period=33.0,
                                                    jitter=10.0))

    def test_table_kind_compiled(self):
        model = freeze(periodic_with_jitter(40.0, 90.0), n_max=256)
        assert kernels.EtaTable(model).kind == kernels._KIND_TABLE
        self.check_matches_model(model)

    def test_scalar_kind_custom_override(self):
        model = _CustomEta()
        assert kernels.EtaTable(model).kind == kernels._KIND_SCALAR
        self.check_matches_model(model)

    def test_table_grows_beyond_seed(self):
        model = freeze(periodic(10.0), n_max=4096)
        tab = kernels.EtaTable(model)
        # Far beyond the initial _TABLE_SEED samples.
        big = 10.0 * (kernels._TABLE_SEED * 8) + 5.0
        assert tab.eta_one(big) == model.eta_plus(big)


# ----------------------------------------------------------------------
# switches & heuristics
# ----------------------------------------------------------------------
class TestSwitches:
    def test_configure_round_trip(self):
        kernels.configure(vectorized=False, numpy=False,
                          warm_starts=False, min_batch=3, min_load=0.25)
        assert not kernels.active()
        assert not kernels.use_numpy()
        assert not kernels.warm_start
        snap = kernels.stats()
        assert snap["enabled"] is False
        assert snap["backend"] == "python"
        assert snap["min_batch_lanes"] == 3
        assert snap["min_batch_load"] == 0.25
        kernels.configure(vectorized=True)
        assert kernels.active()

    def test_stats_counters_present(self):
        snap = kernels.stats()
        for key in ("batches", "lanes", "iterations", "warm_start"):
            assert key in snap

    def test_batch_worthwhile_lane_gate(self):
        kernels.configure(vectorized=True, min_batch=8, min_load=0.5)
        assert not kernels.batch_worthwhile(7, 0.9)
        assert kernels.batch_worthwhile(8, 0.9)

    def test_batch_worthwhile_load_gate(self):
        kernels.configure(vectorized=True, min_batch=8, min_load=0.5)
        assert not kernels.batch_worthwhile(100, 0.1)
        assert kernels.batch_worthwhile(100, 0.5)
        # Unknown load: the lane gate alone decides.
        assert kernels.batch_worthwhile(100)

    def test_batch_worthwhile_disabled(self):
        kernels.configure(vectorized=False, min_batch=0)
        assert not kernels.batch_worthwhile(10 ** 6, 1.0)

    def test_min_batch_zero_forces_batching(self):
        kernels.configure(vectorized=True, min_batch=0)
        assert kernels.batch_worthwhile(1, 0.0)


# ----------------------------------------------------------------------
# solve_round
# ----------------------------------------------------------------------
def _affine_eval(slopes, offsets):
    def eval_fn(ws, idx):
        return [slopes[i] * w + offsets[i] for i, w in zip(idx, ws)]
    return eval_fn


class TestSolveRound:
    def test_converges_to_affine_fixed_points(self):
        slopes, offsets = [0.5, 0.25, 0.0], [10.0, 30.0, 7.0]
        expect = [o / (1.0 - s) for s, o in zip(slopes, offsets)]
        values, errors, steps = kernels.solve_round(
            offsets, [None] * 3, _affine_eval(slopes, offsets),
            ["a", "b", "c"], ["a", "b", "c"], "res")
        assert errors == [None, None, None]
        assert values == pytest.approx(expect)
        assert all(s >= 1 for s in steps)

    def test_warm_start_overshoot_restarts_cold(self):
        slopes, offsets = [0.5], [10.0]
        # Hint far above the fixed point (20): the first evaluation
        # decreases, so the lane must restart from the cold start and
        # still land exactly on 20.
        values, errors, _ = kernels.solve_round(
            offsets, [1000.0], _affine_eval(slopes, offsets),
            ["a"], ["a"], "res")
        assert errors == [None]
        assert values[0] == pytest.approx(20.0)

    def test_blowup_recorded_not_raised(self):
        values, errors, _ = kernels.solve_round(
            [1.0], [None], _affine_eval([2.0], [1.0]),
            ["a"], ["a"], "res", limit=1e6)
        assert values == [None]
        assert isinstance(errors[0], NotSchedulableError)

    def test_good_hint_converges_immediately(self):
        # The exact fixed point as hint: one evaluation confirms it.
        _, errors, steps = kernels.solve_round(
            [10.0], [20.0], _affine_eval([0.5], [10.0]),
            ["a"], ["a"], "res")
        assert errors == [None]
        assert steps[0] == 1


# ----------------------------------------------------------------------
# batched vs scalar equality
# ----------------------------------------------------------------------
class TestBatchedEqualsScalar:
    def analyze_modes(self, tasks):
        sched = SPPScheduler()
        kernels.configure(vectorized=False)
        scalar = result_digest(sched.analyze(tasks, "res"))
        digests = {"scalar": scalar}
        kernels.configure(vectorized=True, numpy=False, min_batch=0)
        digests["python"] = result_digest(sched.analyze(tasks, "res"))
        if kernels._np is not None:
            kernels.configure(numpy=True)
            digests["numpy"] = result_digest(sched.analyze(tasks, "res"))
        return digests

    def test_small_spp_resource_bit_identical(self):
        digests = self.analyze_modes(spp_tasks())
        for name, digest in digests.items():
            assert digest == digests["scalar"], name

    def test_warm_start_off_bit_identical(self):
        tasks = spp_tasks(util=0.9)
        kernels.configure(vectorized=False)
        scalar = result_digest(SPPScheduler().analyze(tasks, "res"))
        kernels.configure(vectorized=True, min_batch=0, warm_starts=False)
        assert result_digest(SPPScheduler().analyze(tasks, "res")) == scalar

    def test_stats_count_batches(self):
        kernels.configure(vectorized=True, min_batch=0)
        before = kernels.stats()["batches"]
        SPPScheduler().analyze(spp_tasks(), "res")
        assert kernels.stats()["batches"] > before

    def test_gate_keeps_tiny_resources_scalar(self):
        kernels.configure(vectorized=True, min_batch=16)
        before = kernels.stats()["batches"]
        SPPScheduler().analyze(spp_tasks(n=3), "res")
        assert kernels.stats()["batches"] == before
