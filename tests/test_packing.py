"""Unit tests for the frame-packing optimiser."""

import pytest

from repro._errors import ModelError
from repro.com import (
    Signal,
    estimate_bus_load,
    pack_by_period,
    pack_first_fit,
)
from repro.core import TransferProperty
from repro.eventmodels import periodic

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def signal_set():
    """Register-communication scenario: all signals pending, frames are
    pure periodic.  Declaration order interleaves fast/slow signals on
    purpose, so first-fit mixes rates per frame."""
    signals = []
    models = {}
    for i in range(1, 5):
        fast = Signal(f"fast{i}", 16, PEND)
        slow = Signal(f"slow{i}", 16, PEND)
        signals += [fast, slow]
        models[fast.name] = periodic(100.0, fast.name)
        models[slow.name] = periodic(2000.0, slow.name)
    return signals, models


class TestFillAndBuild:
    def test_all_signals_packed_once(self):
        signals, models = signal_set()
        layer = pack_by_period(signals, models)
        packed = [s.name for f in layer.frames.values()
                  for s in f.signals]
        assert sorted(packed) == sorted(s.name for s in signals)

    def test_payload_limit_respected(self):
        signals, models = signal_set()
        for builder in (pack_by_period, pack_first_fit):
            layer = builder(signals, models)
            for frame in layer.frames.values():
                assert sum(s.width_bits for s in frame.signals) <= 64

    def test_period_packing_groups_rates(self):
        signals, models = signal_set()
        layer = pack_by_period(signals, models)
        # With 16-bit signals and 64-bit frames: 4 per frame — the
        # period sort puts the four fast signals in one frame.
        f1 = list(layer.frames.values())[0]
        assert all(s.name.startswith("fast") for s in f1.signals)

    def test_pending_only_frame_is_periodic(self):
        signals, models = signal_set()
        layer = pack_by_period(signals, models)
        slow_frame = [f for f in layer.frames.values()
                      if all(s.name.startswith("slow")
                             for s in f.signals)]
        assert slow_frame
        assert slow_frame[0].frame_type.value == "periodic"

    def test_derived_timer_follows_fastest_pending(self):
        signals, models = signal_set()
        layer = pack_by_period(signals, models)
        for frame in layer.frames.values():
            fastest = min(models[s.name].period for s in frame.signals)
            assert frame.period == fastest

    def test_explicit_timer_respected(self):
        signals, models = signal_set()
        layer = pack_by_period(signals, models, timer_period=500.0)
        assert all(f.period == 500.0 for f in layer.frames.values())

    def test_triggering_only_group_is_direct(self):
        signals = [Signal("a", 32, TRIG), Signal("b", 32, TRIG)]
        models = {"a": periodic(100.0), "b": periodic(150.0)}
        layer = pack_by_period(signals, models)
        assert all(f.frame_type.value == "direct"
                   for f in layer.frames.values())

    def test_validation(self):
        signals, models = signal_set()
        with pytest.raises(ModelError):
            pack_by_period([], models)
        with pytest.raises(ModelError):
            pack_by_period(signals, {})
        with pytest.raises(ModelError):
            pack_by_period([Signal("dup", 8, TRIG),
                            Signal("dup", 8, TRIG)],
                           {"dup": periodic(100.0)})


class TestBusLoadComparison:
    def test_period_packing_not_worse_than_first_fit(self):
        signals, models = signal_set()
        smart = estimate_bus_load(pack_by_period(signals, models), models)
        naive = estimate_bus_load(pack_first_fit(signals, models), models)
        assert smart <= naive + 1e-9

    def test_load_positive_and_below_capacity(self):
        signals, models = signal_set()
        load = estimate_bus_load(pack_by_period(signals, models), models)
        assert 0 < load < 1.0

    def test_interleaved_order_hurts_first_fit(self):
        # First-fit mixes fast and slow per frame: every frame's timer
        # is dragged to the fast rate, nearly doubling the bus load
        # compared to the period-grouped packing.
        signals, models = signal_set()
        smart = estimate_bus_load(pack_by_period(signals, models), models)
        naive = estimate_bus_load(pack_first_fit(signals, models), models)
        assert naive > 1.5 * smart
