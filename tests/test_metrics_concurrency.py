"""MetricsRegistry mark/delta/merge/discard under concurrent mutation.

The batch runner takes deltas while pool callbacks merge worker deltas
back, and the serial backend discards marks while the engine is still
incrementing counters on other threads (simulators, future sharded
backends).  These tests drive the registry from several writer threads
while the snapshot machinery runs concurrently and assert the
*conservation* property: nothing recorded is lost or double counted
once the dust settles.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry

WRITERS = 4
INCS_PER_WRITER = 2_000


def hammer(registry, writer_id, stop=None):
    """One writer thread's workload: counters + histogram samples."""
    counter = registry.counter("work.items")
    mine = registry.counter(f"work.writer{writer_id}")
    hist = registry.histogram("work.seconds")
    for i in range(INCS_PER_WRITER):
        counter.inc()
        mine.inc()
        hist.observe(float(i % 7))


def advance(mark, delta):
    """The mark implied by ``mark`` plus everything in ``delta``.

    Re-calling ``registry.mark()`` after taking a delta would lose any
    increments that landed between the two calls; advancing the old
    mark by the delta's own contents closes that window exactly."""
    counters = dict(mark.get("counters", {}))
    for name, inc in delta.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + inc
    histograms = dict(mark.get("histograms", {}))
    for name, samples in delta.get("histograms", {}).items():
        histograms[name] = histograms.get(name, 0) + len(samples)
    gauges = dict(mark.get("gauges", {}))
    gauges.update(delta.get("gauges", {}))
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


class TestConcurrentDeltas:
    def test_conservation_across_concurrent_deltas(self):
        """Deltas taken mid-flight, merged into a second registry,
        account for every recorded increment exactly once."""
        registry = MetricsRegistry()
        folded = MetricsRegistry()
        mark = registry.mark()  # before any work exists
        writers = [threading.Thread(target=hammer,
                                    args=(registry, w))
                   for w in range(WRITERS)]
        for t in writers:
            t.start()

        while any(t.is_alive() for t in writers):
            delta = registry.delta_since(mark)
            folded.merge_delta(delta)
            mark = advance(mark, delta)
        for t in writers:
            t.join()
        # final catch-up delta after every writer has finished
        folded.merge_delta(registry.delta_since(mark))

        total = WRITERS * INCS_PER_WRITER
        source = registry.snapshot()
        merged = folded.snapshot()
        assert source["counters"]["work.items"] == total
        assert merged["counters"]["work.items"] == total
        for w in range(WRITERS):
            assert merged["counters"][f"work.writer{w}"] == \
                INCS_PER_WRITER
        assert merged["histograms"]["work.seconds"]["count"] == total
        assert merged["histograms"]["work.seconds"]["total"] == \
            pytest.approx(source["histograms"]["work.seconds"]["total"])

    def test_in_flight_deltas_are_valid_payloads(self):
        """Every delta taken mid-mutation is internally consistent:
        non-negative counter increments, histogram samples lists."""
        registry = MetricsRegistry()
        writers = [threading.Thread(target=hammer, args=(registry, w))
                   for w in range(2)]
        for t in writers:
            t.start()
        try:
            for _ in range(50):
                delta = registry.delta_since(registry.mark())
                for name, inc in delta["counters"].items():
                    assert inc >= 0, name
                for name, samples in delta["histograms"].items():
                    assert isinstance(samples, list)
        finally:
            for t in writers:
                t.join()

    def test_observers_see_monotone_counts(self):
        """Snapshots taken while writers run never go backwards."""
        registry = MetricsRegistry()
        writers = [threading.Thread(target=hammer, args=(registry, w))
                   for w in range(2)]
        seen = []
        for t in writers:
            t.start()
        while any(t.is_alive() for t in writers):
            snap = registry.snapshot()
            seen.append(snap["counters"].get("work.items", 0))
        for t in writers:
            t.join()
        assert seen == sorted(seen)
        assert registry.snapshot()["counters"]["work.items"] == \
            2 * INCS_PER_WRITER


class TestDiscardSince:
    def test_discard_rolls_back_to_mark(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc(5)
        registry.gauge("level").set(1.0)
        registry.histogram("h").observe(0.5)
        mark = registry.mark()
        registry.counter("keep").inc(10)
        registry.counter("new").inc(3)
        registry.gauge("level").set(9.0)
        registry.gauge("fresh").set(2.0)
        registry.histogram("h").observe(1.5)
        registry.discard_since(mark)
        snap = registry.snapshot()
        assert snap["counters"]["keep"] == 5
        assert snap["counters"]["new"] == 0  # created after the mark
        assert snap["gauges"]["level"] == 1.0
        assert snap["gauges"]["fresh"] is None
        assert snap["histograms"]["h"]["count"] == 1

    def test_discard_off_main_thread(self):
        """The serial batch path discards from whatever thread runs the
        sweep (e.g. the ``repro top`` worker thread)."""
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        mark = registry.mark()
        registry.counter("c").inc(100)
        errors = []

        def discard():
            try:
                registry.discard_since(mark)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=discard)
        t.start()
        t.join()
        assert not errors
        assert registry.snapshot()["counters"]["c"] == 2

    def test_mark_then_merge_then_discard_cycle(self):
        """A full runner-style cycle keeps both registries coherent."""
        parent = MetricsRegistry()
        parent.counter("batch.jobs").inc(1)
        mark = parent.mark()
        # simulate a worker delta arriving while a doomed serial job
        # also wrote into the parent
        parent.counter("doomed.iterations").inc(40)
        parent.discard_since(mark)  # job timed out: unhappen it
        parent.merge_delta({"counters": {"propagation.iterations": 12},
                            "gauges": {"depth": 2.0},
                            "histograms": {"seconds": [0.1, 0.2]}})
        snap = parent.snapshot()
        assert snap["counters"]["batch.jobs"] == 1
        assert snap["counters"]["doomed.iterations"] == 0
        assert snap["counters"]["propagation.iterations"] == 12
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["seconds"]["count"] == 2
