"""Equal-priority SPP ties are conservative interference.

Regression pin for the interferer-set rule in
:mod:`repro.analysis.spp`: the set is ``{j != i : prio_j <= prio_i}``,
not strictly ``<``.  The tie-break between equal priorities is
implementation-defined on a real platform, so each tied task must
assume it loses every race; a strict ``<`` would certify response
times a tie-losing execution can exceed.
"""

import pytest

from repro.analysis import SPPScheduler, TaskSpec
from repro.analysis import kernels
from repro.eventmodels import periodic


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    snap = (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
            kernels.min_batch_lanes, kernels.min_batch_load)
    yield
    (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
     kernels.min_batch_lanes, kernels.min_batch_load) = snap


def tied_pair():
    return [
        TaskSpec(name="a", event_model=periodic(100.0), c_min=10.0,
                 c_max=10.0, priority=1),
        TaskSpec(name="b", event_model=periodic(100.0), c_min=15.0,
                 c_max=15.0, priority=1),
    ]


class TestEqualPriorityTies:
    def test_tied_tasks_interfere_both_ways(self):
        rr = SPPScheduler().analyze(tied_pair(), "cpu")
        # Each task's WCRT includes the other's full execution: with a
        # strict < rule these would be 10 and 15.
        assert rr.task_results["a"].r_max == 25.0
        assert rr.task_results["b"].r_max == 25.0

    def test_tie_is_not_self_interference(self):
        rr = SPPScheduler().analyze(
            [TaskSpec(name="solo", event_model=periodic(100.0),
                      c_min=10.0, c_max=10.0, priority=1)], "cpu")
        assert rr.task_results["solo"].r_max == 10.0

    def test_strict_priorities_unaffected(self):
        tasks = [
            TaskSpec(name="hi", event_model=periodic(100.0), c_min=10.0,
                     c_max=10.0, priority=1),
            TaskSpec(name="lo", event_model=periodic(100.0), c_min=15.0,
                     c_max=15.0, priority=2),
        ]
        rr = SPPScheduler().analyze(tasks, "cpu")
        assert rr.task_results["hi"].r_max == 10.0  # no tie, no victim
        assert rr.task_results["lo"].r_max == 25.0

    def test_interferer_details_count_ties(self):
        rr = SPPScheduler().analyze(tied_pair(), "cpu")
        assert rr.task_results["a"].details["interferers"] == 1.0
        assert rr.task_results["b"].details["interferers"] == 1.0

    def test_batched_path_applies_same_tie_rule(self):
        kernels.configure(vectorized=False)
        scalar = SPPScheduler().analyze(tied_pair(), "cpu")
        kernels.configure(vectorized=True, min_batch=0)
        batched = SPPScheduler().analyze(tied_pair(), "cpu")
        for name in ("a", "b"):
            assert batched.task_results[name].r_max == \
                scalar.task_results[name].r_max == 25.0
