"""Property-based tests (hypothesis) on the core invariants.

These pin the mathematical backbone of the library:

* structural invariants of every δ/η pair,
* the Galois connection between η⁺ and δ⁻ (paper eq. (1)),
* equivalence of the two OR-join evaluations (eqs. (3)/(4)),
* conservatism of analyses against the discrete-event simulator,
* conservatism of every lossy conversion (freeze, fit_standard).
"""

import math
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import SPNPScheduler, SPPScheduler, TaskSpec
from repro.analysis.resource_model import PeriodicResource
from repro.core import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    hsc_pack,
)
from repro.eventmodels import (
    StandardEventModel,
    TaskOutputModel,
    fit_standard,
    freeze,
    or_join,
    or_join_superposition,
    periodic,
    trace_within_bounds,
    verify_dominates,
)
from repro.sim import (
    CanBusSim,
    ResponseRecorder,
    Simulator,
    SppCpuSim,
    worst_case_arrivals,
)
from repro.timebase import INF

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
periods = st.floats(min_value=10.0, max_value=1000.0,
                    allow_nan=False, allow_infinity=False)
jitters = st.floats(min_value=0.0, max_value=500.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def sem_models(draw):
    p = draw(periods)
    j = draw(jitters)
    if j >= p:
        d = draw(st.floats(min_value=0.0, max_value=p / 2))
    else:
        d = None
    return StandardEventModel(round(p, 3), round(j, 3),
                              None if d is None else round(d, 3))


# ----------------------------------------------------------------------
# δ/η structure
# ----------------------------------------------------------------------
class TestDeltaStructure:
    @given(sem_models())
    def test_delta_monotone_and_ordered(self, m):
        prev_min = prev_plus = 0.0
        for n in range(2, 24):
            dmin, dplus = m.delta_min(n), m.delta_plus(n)
            assert dmin >= prev_min - 1e-9
            assert dplus >= prev_plus - 1e-9
            assert dmin <= dplus + 1e-9
            prev_min, prev_plus = dmin, dplus

    @given(sem_models(), st.integers(2, 10), st.integers(2, 10))
    def test_delta_min_superadditive(self, m, a, b):
        # δ⁻(a + b - 1) >= δ⁻(a) + δ⁻(b): split a window at an event.
        assert m.delta_min(a + b - 1) >= \
            m.delta_min(a) + m.delta_min(b) - 1e-9

    @given(sem_models(), st.integers(2, 10), st.integers(2, 10))
    def test_delta_plus_subadditive(self, m, a, b):
        assert m.delta_plus(a + b - 1) <= \
            m.delta_plus(a) + m.delta_plus(b) + 1e-9


class TestGaloisConnection:
    @given(sem_models(), st.integers(2, 30))
    def test_eta_of_delta(self, m, n):
        # Events n fit in any window just above δ⁻(n)...
        d = m.delta_min(n)
        assert m.eta_plus(d + 1e-6) >= n
        # ...but a window clearly below δ⁻(n) holds fewer (evaluated a
        # hair under the boundary to stay off float-rounding edges).
        if d > 1e-3:
            assert m.eta_plus(d - 1e-6) <= n - 1 \
                or m.delta_min(n + 1) <= d + 1e-6

    @given(sem_models(),
           st.floats(min_value=0.1, max_value=5000.0, allow_nan=False))
    def test_delta_of_eta(self, m, dt):
        # δ⁻(η⁺(Δt)) < Δt by eq. (1).
        n = m.eta_plus(dt)
        if n >= 2:
            assert m.delta_min(n) < dt

    @given(sem_models(),
           st.floats(min_value=0.0, max_value=5000.0, allow_nan=False))
    def test_eta_min_below_eta_plus(self, m, dt):
        assert m.eta_min(dt) <= m.eta_plus(dt)


# ----------------------------------------------------------------------
# OR-join equivalence and conservatism
# ----------------------------------------------------------------------
class TestOrJoinProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(sem_models(), min_size=2, max_size=3))
    def test_pairwise_equals_superposition(self, models):
        exact = or_join(models)
        sup = or_join_superposition(models)
        for n in range(2, 12):
            assert sup.delta_min(n) == pytest.approx(
                exact.delta_min(n), abs=1e-5)
            e, s = exact.delta_plus(n), sup.delta_plus(n)
            if math.isinf(e) or math.isinf(s):
                assert math.isinf(e) == math.isinf(s)
            else:
                assert s == pytest.approx(e, abs=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(sem_models(), min_size=2, max_size=3),
           st.integers(0, 10_000))
    def test_merged_traces_within_join(self, models, seed):
        # Any interleaving of per-stream worst-case traces (with random
        # phases) must respect the OR-join bound.
        rng = random.Random(seed)
        merged = []
        for m in models:
            phase = rng.uniform(0.0, m.period)
            merged.extend(worst_case_arrivals(m, 4000.0, phase=phase))
        merged.sort()
        assume(len(merged) >= 2)
        join = or_join(models)
        assert trace_within_bounds(merged[:60], join)


# ----------------------------------------------------------------------
# Θ_τ conservatism against simulation
# ----------------------------------------------------------------------
class TestOutputModelConservatism:
    @settings(max_examples=20, deadline=None)
    @given(sem_models(), st.floats(min_value=1.0, max_value=50.0))
    def test_single_task_output_stream(self, m, wcet):
        assume(wcet / m.period < 0.9)
        # Simulate the task alone under worst-case arrivals; its
        # completion stream must fall inside Θ_τ of its analysis bounds.
        spec = TaskSpec("t", wcet, wcet, m, priority=1)
        analysis = SPPScheduler().analyze([spec], "cpu")["t"]

        sim = Simulator()
        rec = ResponseRecorder()
        cpu = SppCpuSim(sim, rec)
        cpu.add_task("t", 1, wcet)
        for t in worst_case_arrivals(m, 3000.0):
            sim.schedule(t, lambda: cpu.activate("t"))
        sim.run_until(6000.0)
        completions = [c for _, c in rec.jobs("t")]
        assume(len(completions) >= 2)
        out_model = TaskOutputModel(m, analysis.r_min, analysis.r_max)
        assert trace_within_bounds(completions, out_model)


# ----------------------------------------------------------------------
# Analysis vs simulation (SPP and SPNP)
# ----------------------------------------------------------------------
class TestAnalysisConservatism:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(periods,
                              st.floats(min_value=1.0, max_value=30.0)),
                    min_size=1, max_size=3))
    def test_spp_bounds_simulation(self, params):
        specs = [TaskSpec(f"t{i}", c, c, periodic(round(p, 3)),
                          priority=i)
                 for i, (p, c) in enumerate(params)]
        assume(sum(s.load() for s in specs) < 0.95)
        results = SPPScheduler().analyze(specs, "cpu")

        sim = Simulator()
        rec = ResponseRecorder()
        cpu = SppCpuSim(sim, rec)
        for i, spec in enumerate(specs):
            cpu.add_task(spec.name, i, spec.c_max)
        for spec in specs:
            for t in worst_case_arrivals(spec.event_model, 5000.0):
                sim.schedule(t, lambda _n=spec.name: cpu.activate(_n))
        sim.run_until(10_000.0)
        for spec in specs:
            if rec.count(spec.name):
                assert rec.worst_case(spec.name) <= \
                    results[spec.name].r_max + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(periods,
                              st.floats(min_value=1.0, max_value=30.0)),
                    min_size=1, max_size=3))
    def test_spnp_bounds_simulation(self, params):
        specs = [TaskSpec(f"f{i}", c, c, periodic(round(p, 3)),
                          priority=i)
                 for i, (p, c) in enumerate(params)]
        assume(sum(s.load() for s in specs) < 0.95)
        results = SPNPScheduler().analyze(specs, "bus")

        sim = Simulator()
        rec = ResponseRecorder()
        bus = CanBusSim(sim, rec)
        for i, spec in enumerate(specs):
            bus.add_frame(spec.name, i, spec.c_max)
        for spec in specs:
            for t in worst_case_arrivals(spec.event_model, 5000.0):
                sim.schedule(t, lambda _n=spec.name: bus.request(_n))
        sim.run_until(10_000.0)
        for spec in specs:
            if rec.count(spec.name):
                assert rec.worst_case(spec.name) <= \
                    results[spec.name].r_max + 1e-6


# ----------------------------------------------------------------------
# HEM invariants
# ----------------------------------------------------------------------
class TestHemProperties:
    @settings(max_examples=25, deadline=None)
    @given(sem_models(), sem_models(), sem_models())
    def test_pack_invariants(self, trig, pend, timer):
        hem = hsc_pack(
            {"t": (trig, TransferProperty.TRIGGERING),
             "p": (pend, TransferProperty.PENDING)},
            timer=timer, name="F")
        # Triggering inner untouched (eqs. 5/6).
        for n in range(2, 8):
            assert hem.inner("t").delta_min(n) == trig.delta_min(n)
        # Pending inner: inf plus-bound (eq. 8) and at least the frame
        # floor (eq. 7).
        assert hem.inner("p").delta_plus(2) == INF
        for n in range(2, 8):
            assert hem.inner("p").delta_min(n) >= \
                hem.outer.delta_min(n) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(sem_models(), sem_models(),
           st.floats(min_value=0.0, max_value=20.0),
           st.floats(min_value=0.0, max_value=50.0))
    def test_inner_update_monotone(self, trig, timer, r_min, span):
        hem = hsc_pack(
            {"t": (trig, TransferProperty.TRIGGERING)},
            timer=timer, name="F")
        out = apply_operation(hem, BusyWindowOutput(r_min, r_min + span))
        inner = out.inner("t")
        for n in range(2, 10):
            # Def. 9: min distances only shrink (down to the spacing
            # floor), max distances only grow.
            assert inner.delta_min(n) <= \
                max(trig.delta_min(n), (n - 1) * r_min) + 1e-9
            assert inner.delta_plus(n) >= trig.delta_plus(n) - 1e-9
            assert inner.delta_min(n) >= (n - 1) * r_min - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(sem_models(), sem_models())
    def test_hem_is_outer_for_flat_consumers(self, a, b):
        hem = hsc_pack(
            {"a": (a, TransferProperty.TRIGGERING),
             "b": (b, TransferProperty.TRIGGERING)}, name="F")
        join = or_join([a, b])
        for n in range(2, 10):
            assert hem.delta_min(n) == pytest.approx(join.delta_min(n))


# ----------------------------------------------------------------------
# Lossy conversions stay conservative
# ----------------------------------------------------------------------
class TestConversionConservatism:
    @settings(max_examples=30, deadline=None)
    @given(sem_models())
    def test_freeze_dominates(self, m):
        assert verify_dominates(freeze(m, n_max=16), m, n_max=48)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(sem_models(), min_size=2, max_size=3))
    def test_fit_standard_dominates_join(self, models):
        join = or_join(models)
        fit = fit_standard(join)
        assert verify_dominates(fit, join, n_max=48)


# ----------------------------------------------------------------------
# Supply functions
# ----------------------------------------------------------------------
class TestSupplyProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.1, max_value=2000.0))
    def test_sbf_inverse_is_minimal(self, period, frac, demand):
        server = PeriodicResource(period, max(period * frac, 1e-3))
        t = server.sbf_inverse(demand)
        assert server.sbf(t) >= demand - 1e-6
        assert server.sbf(max(0.0, t - 1e-4)) < demand + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.0, max_value=3000.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_sbf_superadditive_window(self, period, frac, t, dt):
        # Supply in a longer window never decreases.
        server = PeriodicResource(period, max(period * frac, 1e-3))
        assert server.sbf(t + dt) >= server.sbf(t) - 1e-9
