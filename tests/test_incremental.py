"""Dirty-set incremental re-analysis: memo layer, propagation wiring,
batch/serve integration.

The memo layer's contract is *soundness by fingerprint equality*: a
reuse happens only when the structural fingerprint of an analysis input
(or a task's influence cone) matches the previous run exactly — so an
incremental run is bit-identical to a cold one, it just skips redundant
solver work.
"""

import pytest

from repro import System, analyze_system, periodic
from repro.analysis import SPPScheduler, TaskSpec, TDMAScheduler
from repro.analysis.memo import (
    AnalysisMemo,
    LocalAnalysisMemo,
    memo_for,
    memo_pool_stats,
    resource_fingerprint,
    scheduler_key,
    spec_fingerprint,
)
from repro.batch import Axis, DesignSpace
from repro.batch.jobs import Job, run_job
from repro.eventmodels import StandardEventModel
from repro.eventmodels.base import EventModel
from repro.system import system_to_dict


def make_specs(n=4, util=0.6, scale_last=1.0):
    specs = []
    share = util / n
    for i in range(n):
        period = 70.0 * (i + 2)
        cmax = share * period * (scale_last if i == n - 1 else 1.0)
        specs.append(TaskSpec(
            name=f"t{i}",
            event_model=StandardEventModel(period=period,
                                           jitter=0.3 * period),
            c_min=0.5 * cmax, c_max=cmax, priority=i + 1))
    return specs


def digest(rr):
    return {n: (t.r_min, t.r_max, tuple(t.busy_times), t.q_max)
            for n, t in rr.task_results.items()}


class _Unfingerprintable(EventModel):
    """No registry entry -> fingerprint None -> memoisation disabled."""

    def delta_min(self, n):
        return max(0.0, (n - 1) * 50.0)

    def delta_plus(self, n):
        return max(0.0, (n - 1) * 50.0)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_spec_fingerprint_stable_and_discriminating(self):
        a, b = make_specs(2)
        assert spec_fingerprint(a) == spec_fingerprint(a)
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_spec_fingerprint_sees_wcet_change(self):
        spec = make_specs(1)[0]
        bumped = TaskSpec(name=spec.name, event_model=spec.event_model,
                          c_min=spec.c_min, c_max=spec.c_max * 2.0,
                          priority=spec.priority)
        assert spec_fingerprint(spec) != spec_fingerprint(bumped)

    def test_unfingerprintable_model_poisons_key(self):
        spec = TaskSpec(name="x", event_model=_Unfingerprintable(),
                        c_min=1.0, c_max=2.0, priority=1)
        assert spec_fingerprint(spec) is None
        assert resource_fingerprint(SPPScheduler(), [spec]) is None

    def test_scheduler_key_discriminates_parameters(self):
        assert scheduler_key(SPPScheduler()) == \
            scheduler_key(SPPScheduler())
        assert scheduler_key(SPPScheduler(utilization_limit=0.7)) != \
            scheduler_key(SPPScheduler())

    def test_resource_fingerprint_is_order_sensitive(self):
        specs = make_specs(3)
        sched = SPPScheduler()
        assert resource_fingerprint(sched, specs) != \
            resource_fingerprint(sched, list(reversed(specs)))


# ----------------------------------------------------------------------
# LocalAnalysisMemo
# ----------------------------------------------------------------------
class TestLocalMemo:
    def test_identical_rerun_is_whole_resource_hit(self):
        memo = LocalAnalysisMemo()
        specs = make_specs()
        first, info1 = memo.analyze(SPPScheduler(), specs, "cpu")
        second, info2 = memo.analyze(SPPScheduler(), specs, "cpu")
        assert info1["resource_hit"] == 0
        assert info2["resource_hit"] == 1
        assert digest(second) == digest(first)
        assert memo.stats()["resource_hits"] == 1

    def test_single_task_edit_reuses_influence_cone(self):
        # SPP: only same-or-higher priorities influence a task, so
        # editing the lowest-priority task leaves every other task's
        # cone untouched.
        memo = LocalAnalysisMemo()
        memo.analyze(SPPScheduler(), make_specs(), "cpu")
        edited = make_specs(scale_last=1.5)
        result, info = memo.analyze(SPPScheduler(), edited, "cpu")
        assert info["resource_hit"] == 0
        assert info["reused_tasks"] == len(edited) - 1
        # Bit-identical to a cold analysis of the edited set.
        cold = SPPScheduler().analyze(edited, "cpu")
        assert digest(result) == digest(cold)

    def test_tdma_reuse_is_per_task(self):
        # TDMA influence is own spec + cycle length: editing one task's
        # WCET leaves the others reusable.
        def tdma_specs(scale=1.0):
            out = []
            for i, spec in enumerate(make_specs(util=0.3)):
                cmax = spec.c_max * (scale if i == 0 else 1.0)
                out.append(TaskSpec(name=spec.name,
                                    event_model=spec.event_model,
                                    c_min=0.5 * cmax, c_max=cmax,
                                    slot=5.0))
            return out

        memo = LocalAnalysisMemo()
        memo.analyze(TDMAScheduler(), tdma_specs(), "bus")
        result, info = memo.analyze(TDMAScheduler(), tdma_specs(1.4),
                                    "bus")
        assert info["reused_tasks"] == 3
        cold = TDMAScheduler().analyze(tdma_specs(1.4), "bus")
        assert digest(result) == digest(cold)

    def test_unfingerprintable_input_never_reuses(self):
        spec = TaskSpec(name="x", event_model=_Unfingerprintable(),
                        c_min=1.0, c_max=2.0, priority=1)
        memo = LocalAnalysisMemo()
        memo.analyze(SPPScheduler(), [spec], "cpu")
        _, info = memo.analyze(SPPScheduler(), [spec], "cpu")
        assert info["resource_hit"] == 0
        assert info["reused_tasks"] == 0

    def test_lru_eviction_bounds_entries(self):
        memo = LocalAnalysisMemo(max_entries=2)
        for scale in (1.0, 1.1, 1.2, 1.3):
            memo.analyze(SPPScheduler(), make_specs(scale_last=scale),
                         "cpu")
        assert memo.stats()["entries"] == 2


# ----------------------------------------------------------------------
# AnalysisMemo + analyze_system
# ----------------------------------------------------------------------
def two_stage(scale=1.0):
    s = System("inc")
    s.add_source("src0", periodic(100.0))
    s.add_source("src1", periodic(140.0))
    s.add_resource("front", SPPScheduler())
    s.add_task("f0", "front", (5.0, 10.0), ["src0"], priority=1)
    s.add_task("f1", "front", (5.0, 12.0), ["src1"], priority=2)
    s.add_resource("back", SPPScheduler())
    s.add_task("b0", "back", (4.0 * scale, 8.0 * scale), ["f0"],
               priority=1)
    s.add_task("b1", "back", (4.0, 9.0), ["f1"], priority=2)
    return s


def sys_digest(result):
    return (result.iterations,
            {rn: digest(rr)
             for rn, rr in sorted(result.resource_results.items())},
            tuple(sorted(result.path_latencies.items())))


class TestSystemMemo:
    def test_memoised_run_bit_identical_including_iterations(self):
        cold = sys_digest(analyze_system(two_stage()))
        memo = AnalysisMemo()
        warm1 = sys_digest(analyze_system(two_stage(), memo=memo))
        warm2 = sys_digest(analyze_system(two_stage(), memo=memo))
        assert warm1 == cold
        assert warm2 == cold
        assert memo.stats()["resource_hits"] > 0

    def test_single_axis_sweep_reuses_unchanged_resource(self):
        memo = AnalysisMemo()
        for scale in (1.0, 1.2, 1.4):
            warm = sys_digest(analyze_system(two_stage(scale),
                                             memo=memo))
            assert warm == sys_digest(analyze_system(two_stage(scale)))
        stats = memo.stats()
        assert stats["task_reuses"] > 0
        assert 0.0 < stats["reuse_rate"] <= 1.0

    def test_busy_memo_is_skipped_not_awaited(self):
        memo = AnalysisMemo()
        assert memo.acquire()
        try:
            # Analysis still succeeds while the memo is held elsewhere.
            result = analyze_system(two_stage(), memo=memo)
            assert result.converged
        finally:
            memo.release()


# ----------------------------------------------------------------------
# memo pool, batch jobs, design spaces
# ----------------------------------------------------------------------
class TestPoolAndBatch:
    def test_memo_for_is_per_group_singleton(self):
        a = memo_for("test-incremental-group-a")
        assert memo_for("test-incremental-group-a") is a
        assert memo_for("test-incremental-group-b") is not a

    def test_memo_pool_stats_lists_groups(self):
        memo_for("test-incremental-group-stats")
        stats = memo_pool_stats()
        assert "test-incremental-group-stats" in stats
        assert "reuse_rate" in stats["test-incremental-group-stats"]

    def test_job_option_routes_through_named_memo(self):
        payload = {"system": system_to_dict(two_stage())}
        cold = run_job(Job("analyze", payload))
        assert cold.ok
        assert "incremental" not in cold.data
        warm = run_job(Job("analyze", payload,
                           options={"incremental": "test-inc-job"}))
        assert warm.ok
        assert warm.data["incremental"]["group"] == "test-inc-job"
        # Options never change what the job computes...
        assert warm.data["wcrt"] == cold.data["wcrt"]
        assert warm.data["iterations"] == cold.data["iterations"]
        # ...nor its content key (cache identity).
        assert Job("analyze", payload).key == \
            Job("analyze", payload,
                options={"incremental": "test-inc-job"}).key

    def test_second_incremental_job_reuses(self):
        payload = {"system": system_to_dict(two_stage())}
        options = {"incremental": "test-inc-job-reuse"}
        run_job(Job("analyze", payload, options=options))
        again = run_job(Job("analyze", payload, options=options))
        assert again.data["incremental"]["reused_tasks"] > 0
        assert again.data["incremental"]["reuse_rate"] > 0.0

    def test_design_space_incremental_flag_sets_job_option(self):
        def build(wcet_scale):
            return two_stage(wcet_scale)

        space = DesignSpace(
            "inc-space", [Axis("wcet_scale", values=(1.0, 1.2))],
            builder=build, incremental=True)
        jobs = space.jobs()
        assert all(job.options == {"incremental": "space:inc-space"}
                   for _, job in jobs)
        cold_space = DesignSpace(
            "inc-space", [Axis("wcet_scale", values=(1.0, 1.2))],
            builder=build)
        assert all(job.options == {} for _, job in cold_space.jobs())
        # Same content keys either way: one cache entry per point.
        assert [j.key for _, j in jobs] == \
            [j.key for _, j in cold_space.jobs()]
