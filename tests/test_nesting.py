"""Unit tests for nested stream hierarchies (hierarchies of hierarchies)."""

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.core import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    depth,
    hsc_pack,
    is_hierarchical,
    shift_hierarchy,
    unpack_deep,
    unpack_path,
    unpack_signal,
)
from repro.eventmodels import periodic
from repro.timebase import INF

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def can_frame(name="F1"):
    """Level-1 hierarchy: two signals in a CAN frame."""
    return hsc_pack(
        {"S1": (periodic(250.0, "S1"), TRIG),
         "S2": (periodic(450.0, "S2"), PEND)},
        timer=periodic(1000.0), name=name)


def backbone():
    """Level-2 hierarchy: two CAN frames re-packed into a backbone
    super-frame (a gateway forwarding onto a faster network)."""
    f1 = can_frame("F1")
    f2 = hsc_pack({"S3": (periodic(400.0, "S3"), TRIG)}, name="F2")
    return hsc_pack(
        {"F1": (f1, TRIG), "F2": (f2, TRIG)},
        timer=periodic(2000.0), name="B")


class TestDepth:
    def test_flat_is_zero(self):
        assert depth(periodic(100.0)) == 0

    def test_single_level(self):
        assert depth(can_frame()) == 1

    def test_nested(self):
        assert depth(backbone()) == 2


class TestUnpackDeep:
    def test_leaf_paths(self):
        leaves = unpack_deep(backbone())
        assert set(leaves) == {"F1/S1", "F1/S2", "F2/S3"}

    def test_leaves_are_flat(self):
        for leaf in unpack_deep(backbone()).values():
            assert not is_hierarchical(leaf)

    def test_single_level_no_prefix(self):
        assert set(unpack_deep(can_frame())) == {"S1", "S2"}

    def test_flat_rejected(self):
        with pytest.raises(ModelError):
            unpack_deep(periodic(100.0))


class TestUnpackPath:
    def test_two_level_path(self):
        b = backbone()
        leaf = unpack_path(b, "F1/S1")
        assert leaf is b.inner("F1").inner("S1")

    def test_intermediate_path(self):
        b = backbone()
        mid = unpack_path(b, "F1")
        assert is_hierarchical(mid)

    def test_descend_into_flat_rejected(self):
        with pytest.raises(ModelError):
            unpack_path(backbone(), "F1/S1/deeper")

    def test_unknown_component(self):
        with pytest.raises(ModelError):
            unpack_path(backbone(), "F9/S1")


class TestNestedOuter:
    def test_backbone_outer_is_or_of_frame_outers(self):
        b = backbone()
        # The super-frame is triggered by each CAN frame's transmission
        # requests plus its own timer: the combined rate exceeds each
        # member's.
        assert b.outer.eta_plus(2000.0) >= \
            b.inner("F1").eta_plus(2000.0)

    def test_consistency(self):
        b = backbone()
        assert_delta_consistent(b, n_max=20)
        assert_delta_consistent(b.inner("F1"), n_max=20)


class TestNestedInnerUpdate:
    def test_operation_descends_into_nested_hierarchy(self):
        b = backbone()
        out = apply_operation(b, BusyWindowOutput(10.0, 50.0))
        # The nested F1 is still hierarchical after the hop...
        f1_after = out.inner("F1")
        assert is_hierarchical(f1_after)
        # ...and its leaf signals were shifted too.
        s1_before = b.inner("F1").inner("S1")
        s1_after = f1_after.inner("S1")
        k = b.outer.simultaneity()
        shift = (50.0 - 10.0) + (k - 1) * 10.0
        assert s1_after.delta_plus(2) == pytest.approx(
            s1_before.delta_plus(2) + shift)

    def test_leaf_delta_min_shifted_or_floored(self):
        b = backbone()
        out = apply_operation(b, BusyWindowOutput(10.0, 50.0))
        for path, leaf in unpack_deep(out).items():
            assert_delta_consistent(leaf, n_max=12)
            # spacing floor from Def. 9
            assert leaf.delta_min(3) >= 2 * 10.0 - 1e-9

    def test_pending_leaf_keeps_inf(self):
        b = backbone()
        out = apply_operation(b, BusyWindowOutput(10.0, 50.0))
        assert unpack_path(out, "F1/S2").delta_plus(2) == INF

    def test_two_hops_compose(self):
        b = backbone()
        hop1 = apply_operation(b, BusyWindowOutput(10.0, 50.0))
        hop2 = apply_operation(hop1, BusyWindowOutput(5.0, 20.0))
        leaves = unpack_deep(hop2)
        assert set(leaves) == {"F1/S1", "F1/S2", "F2/S3"}
        for leaf in leaves.values():
            assert_delta_consistent(leaf, n_max=10)


class TestShiftHierarchy:
    def test_flat_shift(self):
        shifted = shift_hierarchy(periodic(100.0), 20.0, 5.0, 2)
        assert shifted.delta_min(2) == pytest.approx(
            max(100.0 - 25.0, 5.0))

    def test_identity_shift_preserves_values(self):
        b = can_frame()
        shifted = shift_hierarchy(b, 0.0, 0.0, 1)
        for n in range(2, 10):
            assert shifted.delta_min(n) == pytest.approx(b.delta_min(n))
            assert shifted.inner("S1").delta_min(n) == pytest.approx(
                b.inner("S1").delta_min(n))

    def test_rule_preserved(self):
        shifted = shift_hierarchy(can_frame(), 10.0, 2.0, 1)
        assert shifted.rule.name == "pack"
