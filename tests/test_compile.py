"""Tests for the curve-compilation pass (repro.eventmodels.compile).

Soundness is non-negotiable: a compiled curve must *bound* its source —
equal on the sampled prefix and, with the source attached, equal
everywhere; detached, the extension must stay conservative (δ⁻ never
overestimated, δ⁺ never underestimated).  Every operation type the
engine compiles is covered by a paired property test.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import obs
from repro.core import (
    BusyWindowOutput,
    ShaperOperation,
    TransferProperty,
    apply_operation,
    hsc_or,
    hsc_pack,
)
from repro.core.constructors import PendingInnerModel
from repro.core.hem import HierarchicalEventModel
from repro.core.update import InnerJitterSpacingModel
from repro.eventmodels import (
    CompiledEventModel,
    StandardEventModel,
    compile_model,
    fingerprint,
    maybe_compile,
    or_join,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
)
from repro.eventmodels import compile as emc
from repro.eventmodels.curves import CachedModel
from repro.eventmodels.operations import (
    DminShaper,
    TaskOutputModel,
    _PairwiseOrJoin,
    and_join,
)
from repro.examples_lib.rox08 import build_system as build_rox08
from repro.examples_lib.synth import synth_system
from repro.system.propagation import analyze_system

INF = math.inf


@pytest.fixture(autouse=True)
def _reset_compile_config():
    """Each test starts from the default configuration and a cold cache;
    module-level knobs never leak between tests."""
    emc.configure(enabled=True, n_hint=33, min_depth=2, reset_cache=True)
    yield
    emc.configure(enabled=True, n_hint=33, min_depth=2, reset_cache=True)


def make_chains():
    """One representative lazy chain per compiled operation type."""
    a = periodic_with_jitter(100.0, 30.0, "a")
    b = periodic(250.0, "b")
    c = periodic_with_burst(100.0, 250.0, 10.0, "c")
    frame = or_join([a, b, c], name="frame")
    return {
        "theta": TaskOutputModel(frame, 2.0, 9.0, name="theta"),
        "or": or_join([TaskOutputModel(a, 1.0, 4.0), b, c], name="or"),
        "and": and_join([TaskOutputModel(a, 1.0, 4.0), b], name="and"),
        "shaper": DminShaper(or_join([a, b]), 5.0, name="shaper"),
        "inner_update": InnerJitterSpacingModel(
            or_join([a, c]), jitter=7.0, spacing=2.0, k=3),
        "pending": PendingInnerModel(c, frame, name="pending"),
    }


# ----------------------------------------------------------------------
# exactness with the source attached
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", list(make_chains()))
def test_compiled_exact_within_and_beyond_prefix(kind):
    lazy = make_chains()[kind]
    compiled = compile_model(make_chains()[kind], n_hint=16)
    assert isinstance(compiled, CompiledEventModel)
    # within the prefix and far beyond it (forces repeated growth)
    for n in list(range(0, 17)) + [18, 31, 64, 130, 257]:
        assert compiled.delta_min(n) == lazy.delta_min(n), (kind, n)
        assert compiled.delta_plus(n) == lazy.delta_plus(n), (kind, n)


@pytest.mark.parametrize("kind", list(make_chains()))
def test_compiled_eta_matches_lazy(kind):
    lazy = make_chains()[kind]
    compiled = compile_model(make_chains()[kind], n_hint=8)
    for dt in (0.0, 1.0, 49.9, 50.0, 123.4, 1000.0, 12345.6):
        assert compiled.eta_plus(dt) == lazy.eta_plus(dt), (kind, dt)
        assert compiled.eta_min(dt) == lazy.eta_min(dt), (kind, dt)


def test_block_apis_match_pointwise():
    for kind, lazy in make_chains().items():
        ref_min = [lazy.delta_min(n) for n in range(40)]
        ref_plus = [lazy.delta_plus(n) for n in range(40)]
        fresh = make_chains()[kind]
        assert fresh.delta_min_block(39) == ref_min, kind
        assert fresh.delta_plus_block(39) == ref_plus, kind


def test_or_join_block_matches_contribution_vector_dp():
    """The merge-based block evaluation of the pairwise OR-join must be
    bit-identical to the per-n contribution-vector optimisation on
    randomized inputs."""
    rng = random.Random(42)
    for _ in range(50):
        def mk():
            p = rng.uniform(2.0, 50.0)
            m = StandardEventModel(
                period=p, jitter=rng.uniform(0.0, 80.0),
                d_min=rng.choice([0.0, rng.uniform(0.0, 0.9 * p)]))
            if rng.random() < 0.5:
                m = TaskOutputModel(m, rng.uniform(0.0, 4.0),
                                    rng.uniform(4.0, 9.0))
            return m

        join = _PairwiseOrJoin(mk(), mk())
        block_min = join.delta_min_block(48)
        block_plus = join.delta_plus_block(48)
        fresh = _PairwiseOrJoin(join._a, join._b)  # cold caches
        for n in range(49):
            assert block_min[n] == fresh.delta_min(n), n
            assert block_plus[n] == fresh.delta_plus(n), n


# ----------------------------------------------------------------------
# conservativeness when detached
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", list(make_chains()))
def test_detached_extension_is_conservative(kind):
    """Beyond the prefix a detached curve must never overestimate δ⁻ nor
    underestimate δ⁺ — for every compiled operation type."""
    lazy = make_chains()[kind]
    detached = compile_model(make_chains()[kind], n_hint=12,
                             keep_source=False)
    assert detached.source is None
    for n in range(0, 13):
        assert detached.delta_min(n) == lazy.delta_min(n), (kind, n)
        assert detached.delta_plus(n) == lazy.delta_plus(n), (kind, n)
    for n in range(13, 80):
        assert detached.delta_min(n) <= lazy.delta_min(n) + 1e-9, (kind, n)
        assert detached.delta_plus(n) >= lazy.delta_plus(n) - 1e-9, (kind, n)


def test_detach_drops_source_and_stays_conservative():
    lazy = make_chains()["theta"]
    compiled = compile_model(make_chains()["theta"], n_hint=10)
    compiled.detach()
    assert compiled.source is None
    for n in range(0, 60):
        assert compiled.delta_min(n) <= lazy.delta_min(n) + 1e-9
        assert compiled.delta_plus(n) >= lazy.delta_plus(n) - 1e-9


def test_detected_period_makes_detached_curve_exact():
    """A Θ_τ chain over a jittered periodic source has an exactly linear
    tail; period detection must reproduce the lazy values exactly."""
    lazy = TaskOutputModel(periodic_with_jitter(50.0, 20.0), 1.0, 6.0)
    detached = compile_model(
        TaskOutputModel(periodic_with_jitter(50.0, 20.0), 1.0, 6.0),
        n_hint=24, keep_source=False, detect_period=True)
    assert detached._n_period is not None
    for n in range(0, 200):
        assert detached.delta_min(n) == lazy.delta_min(n), n
        assert detached.delta_plus(n) == lazy.delta_plus(n), n


# ----------------------------------------------------------------------
# fingerprints and the cross-iteration cache
# ----------------------------------------------------------------------
def test_fingerprint_is_stable_and_semantic():
    a1 = TaskOutputModel(periodic(100.0), 2.0, 9.0)
    a2 = TaskOutputModel(periodic(100.0), 2.0, 9.0)
    b = TaskOutputModel(periodic(100.0), 2.0, 9.5)  # different response
    assert fingerprint(a1) == fingerprint(a2)
    assert fingerprint(a1) != fingerprint(b)


def test_fingerprint_none_poisons_chain():
    from repro.eventmodels.base import EventModel

    class Mystery(EventModel):
        name = "mystery"

        def delta_min(self, n):
            return periodic(10.0).delta_min(n)

        def delta_plus(self, n):
            return periodic(10.0).delta_plus(n)

    m = Mystery()
    assert fingerprint(m) is None
    assert fingerprint(TaskOutputModel(m, 1.0, 2.0)) is None


def test_cache_shares_equal_chains():
    emc.configure(reset_cache=True)
    m1 = maybe_compile(TaskOutputModel(periodic(100.0), 2.0, 9.0))
    m2 = maybe_compile(TaskOutputModel(periodic(100.0), 2.0, 9.0))
    assert isinstance(m1, CompiledEventModel)
    assert m2 is m1  # same object out of the fingerprint cache
    stats = emc.cache().stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_cache_lru_eviction():
    emc.configure(cache_size=2, reset_cache=True)
    try:
        ms = [maybe_compile(TaskOutputModel(periodic(100.0 + i), 1.0, 2.0))
              for i in range(3)]
        assert all(isinstance(m, CompiledEventModel) for m in ms)
        assert len(emc.cache()) == 2
    finally:
        emc.configure(cache_size=4096, reset_cache=True)


def test_min_depth_threshold_skips_shallow_chains():
    emc.configure(min_depth=3)
    shallow = TaskOutputModel(periodic(100.0), 1.0, 2.0)  # depth 2
    assert maybe_compile(shallow) is shallow
    deep = TaskOutputModel(shallow, 1.0, 2.0)  # depth 3
    assert isinstance(maybe_compile(deep), CompiledEventModel)


def test_leaf_models_never_compiled():
    p = periodic(10.0)
    assert maybe_compile(p) is p


def test_disabled_switch_returns_model_unchanged():
    emc.configure(enabled=False)
    chain = TaskOutputModel(periodic(100.0), 2.0, 9.0)
    assert maybe_compile(chain) is chain


def test_hierarchical_compile_preserves_structure():
    frame = hsc_pack(
        {"s1": (periodic_with_jitter(100.0, 30.0),
                TransferProperty.TRIGGERING),
         "s2": (periodic(400.0), TransferProperty.PENDING)},
        timer=periodic(200.0), name="F1")
    out = apply_operation(frame, BusyWindowOutput(2.0, 9.0))
    compiled = maybe_compile(out)
    assert isinstance(compiled, HierarchicalEventModel)
    assert compiled.labels == out.labels
    assert type(compiled.rule) is type(out.rule)
    for n in range(0, 40):
        assert compiled.delta_min(n) == out.delta_min(n)
        for label in out.labels:
            assert (compiled.inner(label).delta_min(n)
                    == out.inner(label).delta_min(n)), (label, n)


def test_hierarchical_compile_identity_when_nothing_to_do():
    frame = hsc_or({"x": periodic(100.0), "y": periodic(300.0)})
    # outer is a CachedModel or-join chain (compilable); inners are leaf
    # standard models.  Re-compiling the compiled result is an identity.
    once = maybe_compile(frame)
    again = maybe_compile(once)
    assert again is once


# ----------------------------------------------------------------------
# engine integration: results must be bit-identical on/off
# ----------------------------------------------------------------------
def _digest(result):
    return (result.iterations,
            {rn: (rr.utilization,
                  {tn: (tr.r_min, tr.r_max)
                   for tn, tr in rr.task_results.items()})
             for rn, rr in result.resource_results.items()})


@pytest.mark.parametrize("build", [
    lambda: build_rox08("flat"),
    lambda: build_rox08("hem"),
    lambda: synth_system(6, 2),
], ids=["rox08-flat", "rox08-hem", "synth-6x2"])
def test_analyze_system_bit_identical_compiled_vs_lazy(build):
    emc.configure(enabled=False)
    lazy = _digest(analyze_system(build()))
    emc.configure(enabled=True, reset_cache=True)
    compiled = _digest(analyze_system(build()))
    assert lazy == compiled


def test_obs_counters_emitted():
    obs.configure(enabled=True, reset=True)
    try:
        emc.configure(reset_cache=True)
        analyze_system(build_rox08("hem"))
        counters = obs.metrics().snapshot()["counters"]
        assert counters.get("compile.compilations", 0) > 0
        assert counters.get("compile.cache.hits", 0) > 0
    finally:
        obs.disable(reset=True)


def test_env_flag_controls_default(monkeypatch):
    assert emc._env_flag("REPRO_COMPILE_TESTPROBE", True) is True
    monkeypatch.setenv("REPRO_COMPILE_TESTPROBE", "0")
    assert emc._env_flag("REPRO_COMPILE_TESTPROBE", True) is False
    monkeypatch.setenv("REPRO_COMPILE_TESTPROBE", "1")
    assert emc._env_flag("REPRO_COMPILE_TESTPROBE", False) is True


# ----------------------------------------------------------------------
# __slots__ on the hot classes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("build", [
    lambda: TaskOutputModel(periodic(10.0), 1.0, 2.0),
    lambda: _PairwiseOrJoin(periodic(10.0), periodic(20.0)),
    lambda: CachedModel(periodic(10.0)),
    lambda: compile_model(TaskOutputModel(periodic(10.0), 1.0, 2.0)),
], ids=["TaskOutputModel", "_PairwiseOrJoin", "CachedModel",
        "CompiledEventModel"])
def test_hot_classes_have_no_instance_dict(build):
    assert not hasattr(build(), "__dict__")
