"""Unit tests for the persistent JSONL result store."""

import json

from repro.batch import JobResult, ResultStore
from repro.batch.store import INDEX_NAME, RESULTS_NAME


def result(key, status="ok", **data):
    return JobResult(key, "analyze", f"label-{key}", status,
                     data=data, duration=0.01)


class TestStoreBasics:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result("k1", answer=42))
        got = store.get("k1")
        assert got.ok
        assert got.data["answer"] == 42
        assert store.get("missing") is None
        assert "k1" in store
        assert len(store) == 1

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result("k1", status="failed"))
        store.put(result("k1", status="ok", attempt=2))
        assert store.get("k1").ok
        assert store.get("k1").data["attempt"] == 2
        assert len(store) == 1

    def test_completed_keys_only_ok(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result("good"))
        store.put(result("bad", status="failed"))
        store.put(result("slow", status="timeout"))
        assert store.completed_keys() == ["good"]

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result("k1"))
        store.clear()
        assert len(store) == 0
        assert store.get("k1") is None
        assert not (tmp_path / RESULTS_NAME).exists()


class TestPersistence:
    def test_results_survive_reopen(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(result("k1", answer=1))
            store.put(result("k2", status="failed"))
        reopened = ResultStore(tmp_path)
        assert reopened.get("k1").data["answer"] == 1
        assert reopened.get("k2").status == "failed"
        assert len(reopened) == 2

    def test_fast_path_uses_index(self, tmp_path):
        with ResultStore(tmp_path) as store:
            for i in range(5):
                store.put(result(f"k{i}", i=i))
        index = json.loads((tmp_path / INDEX_NAME).read_text())
        assert len(index["offsets"]) == 5
        assert index["size"] == (tmp_path / RESULTS_NAME).stat().st_size
        reopened = ResultStore(tmp_path)
        assert sorted(reopened.keys()) == [f"k{i}" for i in range(5)]
        assert reopened.get("k3").data["i"] == 3

    def test_stale_index_triggers_rescan(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(result("k1"))
        # Append behind the index's back: sizes now disagree.
        with open(tmp_path / RESULTS_NAME, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(result("k2").to_dict()) + "\n")
        reopened = ResultStore(tmp_path)
        assert sorted(reopened.keys()) == ["k1", "k2"]

    def test_corrupt_index_triggers_rescan(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(result("k1"))
        (tmp_path / INDEX_NAME).write_text("{not json")
        reopened = ResultStore(tmp_path)
        assert reopened.get("k1") is not None

    def test_torn_final_line_is_ignored(self, tmp_path):
        """A crash mid-append must not poison the whole cache."""
        with ResultStore(tmp_path) as store:
            store.put(result("k1"))
            store.put(result("k2"))
        with open(tmp_path / RESULTS_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "status": "o')  # torn write
        reopened = ResultStore(tmp_path)
        assert sorted(reopened.keys()) == ["k1", "k2"]
        assert reopened.get("k3") is None

    def test_periodic_checkpoint(self, tmp_path):
        store = ResultStore(tmp_path, checkpoint_every=2)
        store.put(result("k1"))
        assert not (tmp_path / INDEX_NAME).exists()
        store.put(result("k2"))
        assert (tmp_path / INDEX_NAME).exists()
