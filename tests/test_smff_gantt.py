"""Tests for the random system generator, Gantt rendering, and CAN FD
timing extensions."""

import pytest

from repro._errors import ModelError, ReproError
from repro.can import CanBusTiming, fd_frame_bits_max, fd_payload_size
from repro.examples_lib.smff import SmffConfig, chain_paths, generate
from repro.sim import ResponseRecorder, Simulator, SppCpuSim
from repro.system import analyze_system, path_latency
from repro.viz import gantt_from_recorder, render_gantt


class TestSmffGenerator:
    def test_deterministic(self):
        a = generate(SmffConfig(seed=42))
        b = generate(SmffConfig(seed=42))
        assert set(a.tasks) == set(b.tasks)
        assert all(a.tasks[t].c_max == b.tasks[t].c_max for t in a.tasks)

    def test_different_seeds_differ(self):
        a = generate(SmffConfig(seed=1))
        b = generate(SmffConfig(seed=2))
        assert any(a.tasks[t].c_max != b.tasks[t].c_max
                   for t in a.tasks if t in b.tasks) or \
            set(a.tasks) != set(b.tasks)

    def test_target_utilization_respected(self):
        system = generate(SmffConfig(seed=7, target_utilization=0.5))
        result = analyze_system(system)
        for rr in result.resource_results.values():
            assert rr.utilization <= 0.55

    @pytest.mark.parametrize("seed", range(12))
    def test_many_seeds_analyse_cleanly(self, seed):
        # Robustness sweep: every generated system either converges or
        # raises a library error — never crashes, never returns junk.
        config = SmffConfig(seed=seed, n_chains=3,
                            target_utilization=0.55)
        system = generate(config)
        try:
            result = analyze_system(system)
        except ReproError:
            return
        assert result.converged
        for name in system.tasks:
            wcrt = result.wcrt(name)
            assert wcrt is not None and wcrt > 0

    def test_chain_paths_latency(self):
        config = SmffConfig(seed=3, n_chains=2, chain_length=2)
        system = generate(config)
        result = analyze_system(system)
        for path in chain_paths(config):
            lat = path_latency(system, result, path)
            assert lat.worst_case >= lat.best_case > 0

    def test_validation(self):
        with pytest.raises(ModelError):
            SmffConfig(n_cpus=0)
        with pytest.raises(ModelError):
            SmffConfig(target_utilization=1.5)


class TestGantt:
    def test_render_shape(self):
        chart = render_gantt({"a": [(0.0, 5.0)], "b": [(5.0, 8.0)]},
                             t_end=10.0, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a |")
        assert "#" in lines[0]
        # a busy in the first half only
        assert lines[0].split("|")[1][:3].count("#") >= 2
        assert lines[0].split("|")[1][-2:] == ".."

    def test_from_recorder(self):
        sim = Simulator()
        rec = ResponseRecorder()
        cpu = SppCpuSim(sim, rec)
        cpu.add_task("hi", 1, 3.0)
        cpu.add_task("lo", 2, 6.0)
        sim.schedule(0.0, lambda: cpu.activate("lo"))
        sim.schedule(1.0, lambda: cpu.activate("hi"))
        sim.run_until(50.0)
        chart = gantt_from_recorder(rec, width=30)
        assert "hi |" in chart and "lo |" in chart

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            render_gantt({})
        with pytest.raises(ModelError):
            render_gantt({"a": []})


class TestCanFd:
    def test_payload_rounding(self):
        assert fd_payload_size(9) == 12
        assert fd_payload_size(33) == 48
        assert fd_payload_size(64) == 64

    def test_payload_too_large(self):
        with pytest.raises(ModelError):
            fd_payload_size(65)

    def test_data_bits_monotone(self):
        sizes = [fd_frame_bits_max(s) for s in (0, 8, 16, 64)]
        assert sizes == sorted(sizes)

    def test_dual_rate_wire_time(self):
        timing = CanBusTiming(2.0)  # 500 kbit/s at µs units
        slow_only = (29 + fd_frame_bits_max(64)) * 2.0
        dual = timing.fd_transmission_time_max(64)
        assert dual < slow_only  # data phase at 4x rate is faster

    def test_fd_beats_classic_for_bulk(self):
        # 64 FD bytes vs 8 classic frames of 8 bytes.
        timing = CanBusTiming(2.0)
        fd = timing.fd_transmission_time_max(64)
        classic = 8 * timing.transmission_time_max(8)
        assert fd < classic

    def test_bad_data_rate(self):
        with pytest.raises(ModelError):
            CanBusTiming(2.0).fd_transmission_time_max(8,
                                                       data_bit_time=0.0)
