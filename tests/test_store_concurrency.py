"""Regression: concurrent ResultStore writers never tear records.

The serve daemon shares one store across dispatcher threads, and a
daemon can run next to a ``python -m repro batch`` process over the
same cache dir.  Appends therefore hold an ``fcntl`` advisory lock
around the seek/write/fsync sequence.  These tests hammer the log from
two real processes (and from threads in-process) and assert that every
record survives intact — a torn or interleaved line would fail the
JSON parse or drop a key.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.batch.jobs import JobResult
from repro.batch.store import ResultStore

#: Per-writer record count; paired with the padded payload this gives
#: each process hundreds of syscall-sized appends to collide on.
RECORDS_PER_WRITER = 150

_WRITER_SCRIPT = """
import sys, time
from pathlib import Path
from repro.batch.jobs import JobResult
from repro.batch.store import ResultStore

cache_dir, tag, count, start_file = sys.argv[1:5]
store = ResultStore(cache_dir)
# Barrier: both writers spin until the parent drops the start file, so
# the appends genuinely overlap instead of running back-to-back.
deadline = time.monotonic() + 30
while not Path(start_file).exists():
    if time.monotonic() > deadline:
        raise SystemExit("start file never appeared")
    time.sleep(0.001)
pad = tag * 512
for i in range(int(count)):
    store.put(JobResult(key=f"{tag}-{i}", kind="concurrency_probe",
                        label=tag, status="ok",
                        data={"i": i, "tag": tag, "pad": pad}))
store.close()
"""


def _spawn_writer(cache_dir: Path, tag: str, start_file: Path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, str(cache_dir), tag,
         str(RECORDS_PER_WRITER), str(start_file)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def test_two_processes_append_without_torn_records(tmp_path):
    cache_dir = tmp_path / "cache"
    start_file = tmp_path / "go"
    writers = [_spawn_writer(cache_dir, tag, start_file)
               for tag in ("aa", "bb")]
    time.sleep(0.2)  # let both processes reach the barrier
    start_file.touch()
    for proc in writers:
        _out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()

    # Every raw line is intact JSON with a key: nothing tore.
    lines = (cache_dir / "results.jsonl").read_bytes().splitlines()
    assert len(lines) == 2 * RECORDS_PER_WRITER
    seen = set()
    for line in lines:
        record = json.loads(line)  # raises on an interleaved write
        assert record["data"]["pad"] == record["data"]["tag"] * 512
        seen.add(record["key"])

    # And a fresh store (index is stale: both children checkpointed
    # concurrently) rescans to the complete key set.
    store = ResultStore(cache_dir)
    expected = {f"{tag}-{i}" for tag in ("aa", "bb")
                for i in range(RECORDS_PER_WRITER)}
    assert seen == expected
    assert set(store.keys()) == expected
    probe = store.get("aa-17")
    assert probe.ok and probe.data["i"] == 17


def test_threaded_writers_share_one_store(tmp_path):
    """In-process concurrency (the daemon's dispatcher threads)."""
    store = ResultStore(tmp_path / "cache")
    errors = []

    def writer(tag: str) -> None:
        try:
            for i in range(100):
                store.put(JobResult(key=f"{tag}-{i}", kind="probe",
                                    label=tag, status="ok",
                                    data={"i": i}))
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in ("t1", "t2", "t3")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors
    assert len(store) == 300
    rescan = ResultStore(tmp_path / "cache")
    assert len(rescan) == 300


def test_interleaved_processes_index_correct_offsets(tmp_path):
    """A store whose log another process appended to mid-run still
    indexes its own records at the right offsets."""
    cache_dir = tmp_path / "cache"
    local = ResultStore(cache_dir)
    local.put(JobResult(key="local-0", kind="probe", label="",
                        status="ok", data={"who": "local"}))

    # A foreign process appends behind our back.
    foreign = ResultStore(cache_dir)
    foreign.put(JobResult(key="foreign-0", kind="probe", label="",
                          status="ok", data={"who": "foreign"}))
    foreign.close()

    # Our next append must land *after* the foreign record and index
    # the true offset — lock-held seek-to-end guarantees both.
    local.put(JobResult(key="local-1", kind="probe", label="",
                        status="ok", data={"who": "local"}))
    assert local.get("local-1").data["who"] == "local"

    rescan = ResultStore(cache_dir)
    assert set(rescan.keys()) == {"local-0", "foreign-0", "local-1"}
    for key in rescan.keys():
        assert rescan.get(key).ok
