"""DivergenceGuard trend detection in isolation and in the engine."""

import pytest

from repro.resilience import DivergenceGuard, GuardVerdict
from repro.resilience.guards import (
    VERDICT_MODEL_DRIFT,
    VERDICT_MONOTONE_GROWTH,
    VERDICT_OSCILLATION,
)


def feed(guard, residuals, responses_stable=False, models_stable=True):
    verdict = None
    for i, residual in enumerate(residuals, start=1):
        verdict = guard.observe(i, residual, responses_stable,
                                models_stable)
        if verdict is not None:
            return verdict
    return verdict


class TestGuardUnit:
    def test_silent_before_min_iterations(self):
        guard = DivergenceGuard(window=4, min_iterations=10)
        assert feed(guard, [float(i) for i in range(1, 10)]) is None

    def test_monotone_growth_detected(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        verdict = feed(guard, [2.0 ** i for i in range(1, 16)])
        assert isinstance(verdict, GuardVerdict)
        assert verdict.verdict == VERDICT_MONOTONE_GROWTH
        assert len(verdict.residuals) == 4

    def test_shrinking_residuals_never_fire(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        assert feed(guard, [100.0 / i for i in range(1, 40)]) is None

    def test_converged_residuals_never_fire(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        assert feed(guard, [0.0] * 40) is None

    def test_period_two_oscillation_detected(self):
        guard = DivergenceGuard(window=6, min_iterations=6)
        verdict = feed(guard, [5.0, 9.0] * 10)
        assert verdict is not None
        assert verdict.verdict == VERDICT_OSCILLATION

    def test_model_drift_detected(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        verdict = feed(guard, [0.0] * 20, responses_stable=True,
                       models_stable=False)
        assert verdict is not None
        assert verdict.verdict == VERDICT_MODEL_DRIFT

    def test_reset_clears_history(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        assert feed(guard, [2.0 ** i for i in range(1, 12)]) is not None
        guard.reset()
        assert feed(guard, [1.0 / i for i in range(1, 12)]) is None

    def test_verdict_serialises(self):
        guard = DivergenceGuard(window=4, min_iterations=6)
        verdict = feed(guard, [2.0 ** i for i in range(1, 16)])
        payload = verdict.to_dict()
        assert payload["verdict"] == VERDICT_MONOTONE_GROWTH
        assert payload["iteration"] == verdict.iteration

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DivergenceGuard(window=1)


class TestGuardInEngine:
    def test_custom_guard_instance_used(self):
        from repro import analyze_system
        from repro._errors import ConvergenceError
        from repro.examples_lib.stress import build_oscillating

        eager = DivergenceGuard(window=4, min_iterations=6)
        with pytest.raises(ConvergenceError) as err:
            analyze_system(build_oscillating(), guard=eager)
        lazy_iters = None
        with pytest.raises(ConvergenceError) as err2:
            analyze_system(build_oscillating())
        lazy_iters = err2.value.iterations
        assert err.value.iterations < lazy_iters

    def test_guard_emits_metric(self):
        from repro import analyze_system, obs
        from repro._errors import ConvergenceError
        from repro.examples_lib.stress import build_oscillating

        obs.configure(enabled=True, reset=True)
        try:
            with pytest.raises(ConvergenceError):
                analyze_system(build_oscillating())
            counters = obs.metrics().snapshot()["counters"]
            assert counters.get("propagation.divergence_detected") == 1
        finally:
            obs.disable(reset=True)

    def test_healthy_examples_unaffected_by_default_guard(self):
        from repro import analyze_system
        from repro.examples_lib.rox08 import build_system

        result = analyze_system(build_system("hem"))
        assert result.converged
