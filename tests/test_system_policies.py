"""System-graph integration with the non-SPP schedulers and describe()."""

import pytest

from repro.analysis import (
    EDFScheduler,
    HierarchicalSPPScheduler,
    PeriodicResource,
    RoundRobinScheduler,
    TDMAScheduler,
)
from repro.eventmodels import periodic
from repro.examples_lib.rox08 import build_system
from repro.system import System, analyze_system


class TestPoliciesInGraph:
    def test_tdma_resource(self):
        s = System()
        s.add_source("x", periodic(100.0))
        s.add_source("y", periodic(100.0))
        s.add_resource("bus", TDMAScheduler())
        s.add_task("a", "bus", (2.0, 2.0), ["x"], slot=3.0)
        s.add_task("b", "bus", (4.0, 4.0), ["y"], slot=5.0)
        result = analyze_system(s)
        assert result.converged
        assert result.wcrt("a") == 7.0  # wait 5 (other slot) + 2

    def test_round_robin_resource(self):
        s = System()
        s.add_source("x", periodic(50.0))
        s.add_source("y", periodic(50.0))
        s.add_resource("cpu", RoundRobinScheduler())
        s.add_task("a", "cpu", (2.0, 2.0), ["x"], slot=2.0)
        s.add_task("b", "cpu", (2.0, 2.0), ["y"], slot=2.0)
        result = analyze_system(s)
        assert result.wcrt("a") == 4.0

    def test_edf_resource(self):
        s = System()
        s.add_source("x", periodic(10.0))
        s.add_source("y", periodic(15.0))
        s.add_resource("cpu", EDFScheduler())
        s.add_task("a", "cpu", (2.0, 2.0), ["x"], deadline=10.0)
        s.add_task("b", "cpu", (3.0, 3.0), ["y"], deadline=15.0)
        result = analyze_system(s)
        assert result.converged
        assert result.wcrt("a") <= 10.0
        assert result.wcrt("b") <= 15.0

    def test_hierarchical_server_resource(self):
        s = System()
        s.add_source("x", periodic(100.0))
        s.add_resource("partition", HierarchicalSPPScheduler(
            PeriodicResource(50.0, 25.0)))
        s.add_task("a", "partition", (5.0, 5.0), ["x"], priority=1)
        result = analyze_system(s)
        # blackout 2*(50-25)=50, then 5 of supply at full rate.
        assert result.wcrt("a") == pytest.approx(55.0)

    def test_mixed_policy_chain(self):
        # TDMA bus feeding an SPP CPU: jitter from the bus propagates.
        from repro.analysis import SPPScheduler

        s = System()
        s.add_source("x", periodic(100.0))
        s.add_source("y", periodic(100.0))
        s.add_resource("bus", TDMAScheduler())
        s.add_resource("cpu", SPPScheduler())
        s.add_task("tx", "bus", (2.0, 2.0), ["x"], slot=3.0)
        s.add_task("other", "bus", (4.0, 4.0), ["y"], slot=5.0)
        s.add_task("consume", "cpu", (10.0, 10.0), ["tx"], priority=1)
        result = analyze_system(s)
        assert result.converged
        assert result.wcrt("consume") == 10.0


class TestDescribe:
    def test_paper_system_description(self):
        text = build_system("hem").describe()
        assert "System" in text
        assert "F1_pack [pack] timer=F1_timer" in text
        assert "T3 on CPU1" in text
        assert "CAN: spnp" in text

    def test_extras_rendered(self):
        s = System()
        s.add_source("x", periodic(10.0))
        s.add_resource("cpu", TDMAScheduler())
        s.add_task("t", "cpu", (1.0, 1.0), ["x"], slot=2.0,
                   blocking=0.5)
        text = s.describe()
        assert "slot=2.0" in text
        assert "blocking=0.5" in text
