"""Smoke tests: every shipped example must run and produce its output."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_examples_discovered():
    assert len(EXAMPLES) >= 4
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert len(output) > 100  # produced a real report


def test_quickstart_shows_gap():
    output = run_example("quickstart")
    assert "unpacked" in output
    assert "flat view" in output


def test_automotive_gateway_reproduces_table3():
    output = run_example("automotive_gateway")
    assert "R+ flat" in output and "R+ HEM" in output
    assert "Figure 4" in output


def test_simulation_vs_analysis_all_ok():
    output = run_example("simulation_vs_analysis")
    assert "VIOLATION" not in output
    assert output.count("OK") >= 5


def test_nested_gateway_depth_two():
    output = run_example("nested_gateway")
    assert "depth: 2" in output
    assert "F1/wheel_speed" in output.replace("'", "")
