"""Event bus, sinks, tracer ring buffer, and worker trace lanes."""

import json
import threading

import pytest

from repro import obs
from repro.obs.bus import EventBus
from repro.obs.export import records_to_chrome
from repro.obs.sinks import ChromeTraceSink, JsonlEventSink
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a quiet bus and disabled obs."""
    obs.get_bus().clear()
    obs.configure(enabled=False, reset=True)
    yield
    obs.get_bus().clear()
    obs.configure(enabled=False, reset=True,
                  max_spans=obs.trace.DEFAULT_MAX_FINISHED,
                  ship_worker_spans=False)


class Collector:
    """Minimal sink: remembers every event it was handed."""

    def __init__(self, interests=None):
        if interests is not None:
            self.interests = frozenset(interests)
        self.events = []

    def handle(self, event):
        self.events.append(dict(event))


class TestEventBus:
    def test_subscribe_publish_unsubscribe(self):
        bus = EventBus()
        sink = Collector()
        assert not bus.active
        bus.subscribe(sink)
        assert bus.active and len(bus) == 1
        bus.publish({"type": "job", "key": "k"})
        assert len(sink.events) == 1
        assert sink.events[0]["type"] == "job"
        assert "t" in sink.events[0]  # bus stamps a timestamp
        assert bus.unsubscribe(sink)
        assert not bus.active
        bus.publish({"type": "job", "key": "k2"})
        assert len(sink.events) == 1
        assert not bus.unsubscribe(sink)  # already gone

    def test_plain_callable_sink(self):
        bus = EventBus()
        seen = []
        handler = seen.append
        bus.subscribe(handler)
        bus.publish({"type": "anything"})
        assert len(seen) == 1
        assert bus.unsubscribe(handler)
        assert not bus.active

    def test_interest_filtering(self):
        bus = EventBus()
        only_jobs = Collector(interests={"job"})
        everything = Collector()
        bus.subscribe(only_jobs)
        bus.subscribe(everything)
        bus.publish({"type": "job"})
        bus.publish({"type": "iteration"})
        assert [e["type"] for e in only_jobs.events] == ["job"]
        assert [e["type"] for e in everything.events] == [
            "job", "iteration"]

    def test_metric_interest_flag(self):
        bus = EventBus()
        aggregatorish = Collector(interests={"job"})
        bus.subscribe(aggregatorish)
        assert bus.active
        assert not bus.metric_interest  # no metric subscriber
        wants_all = Collector()
        bus.subscribe(wants_all)
        assert bus.metric_interest  # None interests = everything
        bus.unsubscribe(wants_all)
        assert not bus.metric_interest

    def test_metric_publishing_gated_on_interest(self):
        metric_sink = Collector(interests={"metric"})
        obs.get_bus().subscribe(metric_sink)
        obs.metrics().counter("test.bus.counter").inc(3)
        obs.metrics().gauge("test.bus.gauge").set(1.5)
        obs.metrics().histogram("test.bus.hist").observe(0.25)
        kinds = [(e["kind"], e["name"]) for e in metric_sink.events]
        assert ("counter", "test.bus.counter") in kinds
        assert ("gauge", "test.bus.gauge") in kinds
        assert ("histogram", "test.bus.hist") in kinds

        obs.get_bus().clear()
        job_sink = Collector(interests={"job"})
        obs.get_bus().subscribe(job_sink)
        obs.metrics().counter("test.bus.counter").inc()
        assert job_sink.events == []  # not even constructed/dispatched

    def test_sink_exception_isolated_and_counted(self):
        bus = EventBus()

        def broken(_event):
            raise RuntimeError("boom")

        healthy = Collector()
        bus.subscribe(broken)
        bus.subscribe(healthy)
        bus.publish({"type": "job"})
        bus.publish({"type": "job"})
        assert len(healthy.events) == 2
        assert bus.sink_errors == 2

    def test_sink_may_unsubscribe_from_handler(self):
        bus = EventBus()

        class OneShot(Collector):
            def handle(self, event):
                super().handle(event)
                bus.unsubscribe(self)

        sink = OneShot()
        bus.subscribe(sink)
        bus.publish({"type": "a"})
        bus.publish({"type": "b"})
        assert [e["type"] for e in sink.events] == ["a"]

    def test_publish_threadsafe(self):
        bus = EventBus()
        sink = Collector()
        bus.subscribe(sink)

        def spam(n):
            for i in range(200):
                bus.publish({"type": "job", "n": n, "i": i})

        threads = [threading.Thread(target=spam, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink.events) == 800


class TestTracerRingBuffer:
    def test_cap_evicts_oldest_and_counts(self):
        tracer = Tracer(max_finished=5)
        for i in range(8):
            tracer.start(f"s{i}").finish()
        assert len(tracer) == 5
        assert tracer.dropped == 3
        assert [s.name for s in tracer.spans()] == [
            "s3", "s4", "s5", "s6", "s7"]

    def test_unbounded_when_none(self):
        tracer = Tracer(max_finished=None)
        for i in range(50):
            tracer.start(f"s{i}").finish()
        assert len(tracer) == 50 and tracer.dropped == 0

    def test_reset_zeroes_dropped(self):
        tracer = Tracer(max_finished=1)
        tracer.start("a").finish()
        tracer.start("b").finish()
        assert tracer.dropped == 1
        tracer.reset()
        assert tracer.dropped == 0 and len(tracer) == 0

    def test_global_tracer_eviction_bumps_counter(self):
        obs.configure(enabled=True, reset=True, max_spans=3)
        tracer = obs.get_tracer()
        for i in range(7):
            tracer.start(f"s{i}").finish()
        assert tracer.dropped == 4
        counters = obs.metrics().snapshot()["counters"]
        assert counters["trace.spans_dropped"] == 4

    def test_configure_zero_means_unbounded(self):
        obs.configure(enabled=True, reset=True, max_spans=0)
        assert obs.get_tracer().max_finished is None


class TestTracerBusEvents:
    def test_span_lifecycle_published(self):
        sink = Collector()
        obs.get_bus().subscribe(sink)
        tracer = Tracer()
        with tracer.span("outer", resource="cpu") as span:
            tracer.event("tick", n=1)
            span.set(tasks=2)
        kinds = [e["type"] for e in sink.events]
        assert kinds == ["span_start", "span_point", "span"]
        finished = sink.events[-1]
        assert finished["name"] == "outer"
        assert finished["status"] == "ok"
        assert finished["attributes"] == {"resource": "cpu", "tasks": 2}
        assert finished["end"] >= finished["start"]

    def test_error_span_carries_error(self):
        sink = Collector(interests={"span"})
        obs.get_bus().subscribe(sink)
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("nope")
        assert sink.events[-1]["status"] == "error"
        assert "nope" in sink.events[-1]["error"]


class TestAdoptAndChromeLanes:
    def test_adopted_workers_get_distinct_lanes(self):
        tracer = Tracer()
        parent = tracer.start("parent")
        parent.finish()
        ident = parent.thread_id  # fork: workers report the same ident
        for worker in ("101", "102"):
            tracer.adopt({"name": "job", "span_id": 0,
                          "parent_id": None, "thread_id": ident,
                          "start": 1.0, "end": 2.0, "status": "ok",
                          "attributes": {}}, worker=worker)
        payload = obs.spans_to_chrome(tracer.spans())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len({e["tid"] for e in complete}) == 3
        names = {e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert f"thread-{ident}" in names
        assert f"worker-101 thread-{ident}" in names
        assert f"worker-102 thread-{ident}" in names

    def test_adopt_preserves_record_fields(self):
        tracer = Tracer()
        span = tracer.adopt({
            "name": "local_analysis", "span_id": 7, "parent_id": 3,
            "thread_id": 42, "start": 5.0, "end": 6.5,
            "status": "error", "error": "ValueError('x')",
            "attributes": {"resource": "bus"},
            "events": [{"name": "tick", "time": 5.5}],
        }, worker="77")
        assert span.worker == "77"
        assert span.duration == pytest.approx(1.5)
        record = obs.span_to_dict(span)
        assert record["worker"] == "77"
        assert record["error"] == "ValueError('x')"
        assert record["events"][0]["name"] == "tick"

    def test_records_to_chrome_skips_unfinished(self):
        payload = records_to_chrome([
            {"name": "open", "span_id": 1, "thread_id": 1,
             "start": 0.0, "end": None},
            {"name": "done", "span_id": 2, "thread_id": 1,
             "start": 0.0, "end": 1.0},
        ])
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["done"]


class TestSinks:
    def test_jsonl_sink_streams_and_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(str(path))
        obs.get_bus().subscribe(sink)
        tracer = Tracer()
        tracer.start("one").finish()
        # flushed per event: readable before close
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # span_start + span
        sink.close()
        assert sink.written == 2

    def test_jsonl_span_only_matches_posthoc_exporter(self, tmp_path):
        live = tmp_path / "live.jsonl"
        sink = JsonlEventSink(str(live), span_only=True)
        obs.get_bus().subscribe(sink)
        tracer = Tracer()
        sink._t0 = tracer.t0
        with tracer.span("outer"):
            tracer.start("inner").finish()
        sink.close()
        posthoc = tmp_path / "posthoc.jsonl"
        obs.tracer_to_jsonl(tracer, str(posthoc))
        live_records = obs.read_jsonl(str(live))
        post_records = obs.read_jsonl(str(posthoc))
        assert len(live_records) == len(post_records) == 2
        for lr, pr in zip(
                sorted(live_records, key=lambda r: r["span_id"]),
                sorted(post_records, key=lambda r: r["span_id"])):
            assert lr["name"] == pr["name"]
            assert lr["span_id"] == pr["span_id"]
            assert lr["parent_id"] == pr["parent_id"]
            assert lr["start"] == pytest.approx(pr["start"])
            assert lr["end"] == pytest.approx(pr["end"])

    def test_chrome_sink_payload(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        obs.get_bus().subscribe(sink)
        tracer = Tracer()
        tracer.start("a").finish()
        tracer.start("b").finish()
        assert sink.count == 2
        sink.close()
        payload = json.loads(path.read_text())
        complete = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert sorted(e["name"] for e in complete) == ["a", "b"]

    def test_closed_sinks_ignore_events(self, tmp_path):
        sink = JsonlEventSink(str(tmp_path / "x.jsonl"))
        sink.close()
        sink.handle({"type": "span"})  # no error, nothing written
        assert sink.written == 0
        sink.close()  # idempotent
