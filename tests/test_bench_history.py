"""Bench envelopes, BENCH_HISTORY.jsonl, and the regression gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import bench_history  # noqa: E402


def write_compile(out_dir, speedups, enveloped=True):
    payload = {"cases": {f"case{i}": {"speedup": s, "identical": True}
                         for i, s in enumerate(speedups)}}
    doc = bench_history.envelope(payload, "compile",
                                 host="h", git_sha="sha",
                                 timestamp=1.0) if enveloped else payload
    (out_dir / "BENCH_compile.json").write_text(json.dumps(doc))


def write_batch(out_dir, points=64, wall=2.0, hit_rate=1.0,
                enveloped=True):
    payload = {"points": points, "pool_wall_seconds": wall,
               "warm_cache_hit_rate": hit_rate}
    doc = bench_history.envelope(payload, "batch", host="h",
                                 git_sha="sha",
                                 timestamp=1.0) if enveloped else payload
    (out_dir / "BENCH_batch.json").write_text(json.dumps(doc))


class TestEnvelope:
    def test_explicit_provenance(self):
        env = bench_history.envelope({"a": 1}, "compile", host="ci-3",
                                     git_sha="abc", timestamp=42.0)
        assert env["schema"] == bench_history.SCHEMA
        assert env["bench"] == "compile"
        assert env["host"] == "ci-3"
        assert env["git_sha"] == "abc"
        assert env["timestamp"] == 42.0
        assert env["payload"] == {"a": 1}

    def test_env_var_fallbacks(self, monkeypatch):
        monkeypatch.setenv("BENCH_HOST", "runner-7")
        monkeypatch.setenv("BENCH_GIT_SHA", "deadbeef")
        monkeypatch.setenv("BENCH_TIMESTAMP", "123.5")
        env = bench_history.envelope({}, "batch")
        assert env["host"] == "runner-7"
        assert env["git_sha"] == "deadbeef"
        assert env["timestamp"] == 123.5

    def test_unwrap_enveloped_and_legacy(self):
        env = bench_history.envelope({"x": 2}, "batch", host="h",
                                     git_sha="s", timestamp=1.0)
        payload, meta = bench_history.unwrap(env)
        assert payload == {"x": 2}
        assert meta["bench"] == "batch" and "payload" not in meta
        payload, meta = bench_history.unwrap({"x": 2})
        assert payload == {"x": 2} and meta == {}

    def test_load_artifact_tolerates_both(self, tmp_path):
        write_compile(tmp_path, [3.0], enveloped=True)
        write_batch(tmp_path, enveloped=False)
        comp = bench_history.load_artifact(
            tmp_path / "BENCH_compile.json")
        batch = bench_history.load_artifact(
            tmp_path / "BENCH_batch.json")
        assert comp["cases"]["case0"]["speedup"] == 3.0
        assert batch["points"] == 64
        assert bench_history.load_artifact(
            tmp_path / "missing.json") is None


class TestMetrics:
    def test_extractors(self):
        comp = {"cases": {"a": {"speedup": 5.0}, "b": {"speedup": 2.0}}}
        batch = {"points": 64, "pool_wall_seconds": 4.0,
                 "warm_cache_hit_rate": 0.95}
        metrics = bench_history.TRACKED_METRICS
        assert metrics["compile.min_speedup"][1](comp) == 2.0
        assert metrics["batch.throughput"][1](batch) == 16.0
        assert metrics["batch.warm_cache_hit_rate"][1](batch) == 0.95
        assert metrics["compile.min_speedup"][1]({}) is None
        assert metrics["batch.throughput"][1](
            {"points": 1, "pool_wall_seconds": 0}) is None


class TestRecordAndCheck:
    def record(self, tmp_path):
        return bench_history.main(["--dir", str(tmp_path), "record"])

    def check(self, tmp_path, *extra):
        return bench_history.main(
            ["--dir", str(tmp_path), "check", *extra])

    def test_record_appends_envelopes(self, tmp_path):
        write_compile(tmp_path, [3.0])
        write_batch(tmp_path)
        assert self.record(tmp_path) == 0
        assert self.record(tmp_path) == 0  # append, not overwrite
        lines = (tmp_path / "BENCH_HISTORY.jsonl").read_text() \
            .strip().splitlines()
        assert len(lines) == 4
        benches = [json.loads(line)["bench"] for line in lines]
        assert benches.count("compile") == 2
        assert benches.count("batch") == 2

    def test_check_passes_without_baseline(self, tmp_path):
        write_compile(tmp_path, [3.0])
        write_batch(tmp_path)
        assert self.check(tmp_path) == 0
        assert self.check(tmp_path, "--require-baseline") == 1

    def test_check_ok_within_threshold(self, tmp_path):
        write_compile(tmp_path, [10.0])
        write_batch(tmp_path, wall=2.0)
        assert self.record(tmp_path) == 0
        # 20% slower: inside the default 25% noise threshold
        write_compile(tmp_path, [8.0])
        write_batch(tmp_path, wall=2.5)
        assert self.check(tmp_path) == 0

    def test_check_fails_on_regression(self, tmp_path, capsys):
        write_compile(tmp_path, [10.0])
        write_batch(tmp_path, wall=2.0)
        assert self.record(tmp_path) == 0
        write_compile(tmp_path, [10.0])
        write_batch(tmp_path, wall=20.0)  # 10x slower sweep
        assert self.check(tmp_path) == 1
        err = capsys.readouterr().err
        assert "batch.throughput" in err

    def test_baseline_is_median_of_window(self, tmp_path):
        # history: speedups 2, 100, 100 -> median 100; current 60
        # regresses vs median even though it beats the oldest entry
        for speedup in (2.0, 100.0, 100.0):
            write_compile(tmp_path, [speedup])
            assert self.record(tmp_path) == 0
        write_compile(tmp_path, [60.0])
        assert self.check(tmp_path) == 1
        # a shorter window of 1 sees only the newest entry (100)
        assert self.check(tmp_path, "--window", "1") == 1
        # looser threshold lets it through
        assert self.check(tmp_path, "--threshold", "0.5") == 0

    def test_skip_last_excludes_just_recorded(self, tmp_path):
        write_compile(tmp_path, [10.0])
        assert self.record(tmp_path) == 0
        write_compile(tmp_path, [1.0])  # big regression...
        assert self.record(tmp_path) == 0  # ...already recorded
        # without --skip-last the regressed entry pollutes the baseline
        # (median of 10 and 1 = 5.5; 1 < 5.5*0.75 -> still fails here)
        assert self.check(tmp_path, "--skip-last") == 1

    def test_check_tolerates_missing_artifacts(self, tmp_path):
        assert self.check(tmp_path) == 0  # nothing to check: vacuous

    def test_history_ignores_garbage_lines(self, tmp_path):
        write_compile(tmp_path, [10.0])
        (tmp_path / "BENCH_HISTORY.jsonl").write_text(
            "not json\n"
            '{"bench": "unknown-kind"}\n'
            + json.dumps(bench_history.envelope(
                {"cases": {"a": {"speedup": 9.0}}}, "compile",
                host="h", git_sha="s", timestamp=1.0)) + "\n")
        history = bench_history.load_history(
            tmp_path / "BENCH_HISTORY.jsonl")
        assert len(history) == 1
        assert bench_history.baseline_for(
            "compile.min_speedup", history) == 9.0


class TestSuiteEnvelope:
    def test_conftest_suite_roundtrip(self, tmp_path):
        """The benchmark conftest reads legacy and enveloped suite maps
        alike (read-modify-write must survive the format change)."""
        legacy = {"old_test": {"wall_seconds": 1.0}}
        enveloped = bench_history.envelope(legacy, "suite", host="h",
                                           git_sha="s", timestamp=1.0)
        for doc in (legacy, enveloped):
            payload, _ = bench_history.unwrap(doc)
            assert payload == legacy
