"""End-to-end tests for the repro.serve daemon.

Each test runs a real daemon (ephemeral port, background thread, tmp
cache dir) and talks to it over actual HTTP with the blocking
:class:`ServeClient` — the same wire path production clients use.

Backpressure / deadline / drain tests need a job that blocks until the
test says otherwise, so a ``serve_test_block`` job kind is registered
here, gated on a module-level event.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.batch.jobs import register_job_kind, run_job
from repro.batch.store import ResultStore
from repro.serve import RequestRejected, ServeClient, daemon_in_thread
from repro.serve.handlers import build_job

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
_GATE = threading.Event()


@register_job_kind("serve_test_block")
def _run_block(payload):
    """Test-only job: parks until the test releases the gate."""
    if not _GATE.wait(timeout=30):
        raise RuntimeError("test gate never released")
    return {"n": payload.get("n")}


class _Call(threading.Thread):
    """Run a client call on a thread; join and inspect later."""

    def __init__(self, fn):
        super().__init__(daemon=True)
        self.fn = fn
        self.result = None
        self.error = None
        self.start()

    def run(self):
        try:
            self.result = self.fn()
        except Exception as exc:  # noqa: BLE001 - inspected by the test
            self.error = exc

    def finish(self, timeout=30.0):
        self.join(timeout)
        assert not self.is_alive(), "client call never completed"
        return self


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _serve_isolation():
    _GATE.clear()
    yield
    _GATE.set()  # unstick any job still parked on the gate
    obs.configure(enabled=False, reset=True)
    obs.get_bus().clear()


@pytest.fixture
def daemon(tmp_path):
    handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
    client = ServeClient(port=handle.port)
    client.wait_healthy()
    yield handle, client
    if handle.state != "stopped":
        handle.stop()


@pytest.fixture
def tight_daemon(tmp_path):
    """One worker, one queue slot: backpressure at the third request."""
    handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"),
                              workers=1, queue_size=1)
    client = ServeClient(port=handle.port)
    client.wait_healthy()
    yield handle, client
    if handle.state != "stopped":
        handle.stop()


# ----------------------------------------------------------------------
# parity: daemon answers == direct engine answers
# ----------------------------------------------------------------------
class TestParity:
    def test_served_analyze_matches_direct_run(self, daemon):
        _handle, client = daemon
        resp = client.analyze(example="rox08")
        assert resp.ok and not resp.cached

        # The daemon routes through the registered analyze job kind;
        # running the identical content-addressed job directly must
        # produce byte-identical result data.
        job = build_job("analyze", {"example": "rox08"})
        direct = run_job(job)
        assert direct.ok
        assert resp.key == job.key
        assert (json.dumps(resp.data, sort_keys=True)
                == json.dumps(direct.data, sort_keys=True))

    def test_served_analyze_matches_analyze_system(self, daemon):
        from repro.examples_lib import rox08
        from repro.system.propagation import analyze_system

        _handle, client = daemon
        resp = client.analyze(example="rox08")
        direct = analyze_system(rox08.build_system("hem"))
        assert resp.data["converged"] == direct.converged
        assert resp.data["iterations"] == direct.iterations
        assert resp.data["wcrt"] == pytest.approx(
            {task: direct.wcrt(task) for task in resp.data["wcrt"]})

    def test_explain_served_and_cached(self, daemon):
        _handle, client = daemon
        first = client.explain(example="rox08")
        assert first.ok and not first.cached
        assert first.data["wcrt"]
        again = client.explain(example="rox08")
        assert again.ok and again.cached
        assert again.data == first.data


# ----------------------------------------------------------------------
# shared cache
# ----------------------------------------------------------------------
class TestCache:
    def test_identical_request_hits_store(self, daemon):
        handle, client = daemon
        cold = client.analyze(example="body_gateway")
        warm = client.analyze(example="body_gateway")
        assert cold.ok and not cold.cached
        assert warm.ok and warm.cached
        assert warm.key == cold.key
        assert (json.dumps(warm.data, sort_keys=True)
                == json.dumps(cold.data, sort_keys=True))

        health = client.health()
        assert health["requests"]["cache_hits"] >= 1
        assert health["requests"]["cache_misses"] >= 1
        # The answer is checkpointed in the shared store.
        assert health["store"]["results"] >= 1

    def test_cache_survives_restart(self, daemon, tmp_path):
        handle, client = daemon
        cold = client.analyze(example="rox08")
        assert not cold.cached
        handle.stop()

        fresh = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client2 = ServeClient(port=fresh.port)
            client2.wait_healthy()
            warm = client2.analyze(example="rox08")
            assert warm.cached
            assert warm.key == cold.key
        finally:
            fresh.stop()


# ----------------------------------------------------------------------
# resilience: a pathological system degrades one answer, not the daemon
# ----------------------------------------------------------------------
class TestDegrade:
    def test_stress_example_degrades_daemon_stays_serving(self, daemon):
        handle, client = daemon
        resp = client.analyze(example="oscillating", max_iterations=40)
        assert resp.ok  # degraded is a served answer, not a failure
        outcome = resp.data["outcome"]
        assert outcome["degraded"] is True
        assert handle.state == "serving"
        # The daemon still answers follow-up work normally.
        after = client.analyze(example="rox08")
        assert after.ok
        assert not after.data.get("outcome", {}).get("degraded")


# ----------------------------------------------------------------------
# backpressure and deadlines
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(self, tight_daemon):
        handle, client = tight_daemon
        daemon = handle.daemon
        busy = _Call(lambda: client.job("serve_test_block", {"n": 1}))
        _wait_until(lambda: daemon._in_flight == 1)
        queued = _Call(lambda: client.job("serve_test_block", {"n": 2}))
        _wait_until(lambda: daemon.queue.depth == 1)

        with pytest.raises(RequestRejected) as excinfo:
            client.job("serve_test_block", {"n": 3})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0

        _GATE.set()
        assert busy.finish().result.ok
        assert queued.finish().result.ok
        health = client.health()
        assert health["requests"]["rejected"] == 1
        assert health["requests"]["ok"] == 2

    def test_expired_deadline_answers_504(self, tight_daemon):
        handle, client = tight_daemon
        daemon = handle.daemon
        busy = _Call(lambda: client.job("serve_test_block", {"n": 1}))
        _wait_until(lambda: daemon._in_flight == 1)

        # Enqueued with a 0.05s budget while the only worker is parked;
        # release the worker well after the budget lapses.
        threading.Timer(0.4, _GATE.set).start()
        with pytest.raises(RequestRejected) as excinfo:
            client.analyze(example="rox08", deadline=0.05)
        assert excinfo.value.status == 504
        assert excinfo.value.body["error"] == "deadline_exceeded"
        assert excinfo.value.job_key  # resumable handle

        assert busy.finish().result.ok
        assert client.health()["requests"]["expired"] == 1


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_in_flight_and_flushes_queued(
            self, tight_daemon, tmp_path):
        handle, client = tight_daemon
        daemon = handle.daemon
        in_flight = _Call(lambda: client.job("serve_test_block",
                                             {"n": 10}))
        _wait_until(lambda: daemon._in_flight == 1)
        queued = _Call(lambda: client.job("serve_test_block", {"n": 11}))
        _wait_until(lambda: daemon.queue.depth == 1)

        handle.begin_drain()
        _wait_until(lambda: daemon.state in ("draining", "stopped"))

        # Queued-but-unstarted: flushed with 503 + resumable job key.
        queued.finish()
        assert isinstance(queued.error, RequestRejected)
        assert queued.error.status == 503
        expected_key = build_job(
            "job", {"kind": "serve_test_block",
                    "payload": {"n": 11}, "label": ""}).key
        assert queued.error.job_key == expected_key

        # In-flight: runs to completion and is answered 200.
        _GATE.set()
        in_flight.finish()
        assert in_flight.error is None
        assert in_flight.result.ok
        assert in_flight.result.data == {"n": 10}

        handle.stop()
        assert handle.state == "stopped"
        history = [h["state"] for h in daemon.machine.history()]
        assert history == ["starting", "serving", "draining", "stopped"]

        # The finished job was checkpointed into the shared store.
        store = ResultStore(tmp_path / "cache" / "requests")
        stored = store.get(in_flight.result.key)
        assert stored is not None and stored.ok

    def test_submit_after_drain_is_refused(self, daemon):
        handle, client = daemon
        handle.stop()
        with pytest.raises(Exception):  # 503 or connection refused
            client.analyze(example="rox08")


# ----------------------------------------------------------------------
# streaming sweeps
# ----------------------------------------------------------------------
class TestSweepStream:
    def test_sweep_streams_progress_then_result(self, daemon):
        _handle, client = daemon
        events = []
        final = client.sweep("quickstart", sample=3,
                             on_event=events.append)
        assert final["type"] == "result"
        assert final["space"] == "quickstart"
        assert final["points"] >= 1
        assert final["failed"] == 0
        assert "worst_wcrt" in final["table"]

        kinds = {e.get("type") for e in events}
        assert "sweep" in kinds  # start/end lifecycle
        assert "job" in kinds    # per-point progress
        job_events = [e for e in events if e.get("type") == "job"]
        assert len(job_events) >= final["points"]

    def test_sweep_rerun_is_all_cache_hits(self, daemon):
        _handle, client = daemon
        cold = client.sweep("quickstart", sample=3)
        warm = client.sweep("quickstart", sample=3)
        assert cold["executed"] >= 1
        assert warm["cached"] == cold["points"]
        assert warm["cache_hit_rate"] == 1.0

    def test_unknown_space_is_rejected(self, daemon):
        _handle, client = daemon
        with pytest.raises(RequestRejected):
            client.sweep("definitely-not-a-space")


# ----------------------------------------------------------------------
# protocol edges
# ----------------------------------------------------------------------
class TestProtocol:
    def test_unknown_example_is_400(self, daemon):
        _handle, client = daemon
        with pytest.raises(RequestRejected) as excinfo:
            client.analyze(example="nope")
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, daemon):
        handle, client = daemon
        with pytest.raises(RequestRejected) as excinfo:
            client._request("POST", "/v1/nope", {})
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, daemon):
        _handle, client = daemon
        with pytest.raises(RequestRejected) as excinfo:
            client._request("GET", "/v1/analyze")
        assert excinfo.value.status == 405

    def test_healthz_shape(self, daemon):
        _handle, client = daemon
        health = client.health()
        assert health["service"] == "repro.serve"
        assert health["state"] == "serving"
        assert health["queue"]["capacity"] >= 1
        assert health["workers"] >= 1
        assert "requests" in health and "compile_cache" in health
        states = [h["state"] for h in health["state_history"]]
        assert states == ["starting", "serving"]
