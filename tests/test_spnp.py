"""Unit tests for the SPNP (CAN-style) analysis (hand-checked cases)."""

import pytest

from repro._errors import NotSchedulableError
from repro.analysis import SPNPScheduler, TaskSpec
from repro.eventmodels import periodic, periodic_with_burst


def frameset_classic():
    """Frames (C, P): A (1,4) > B (2,6) > C (3,12) by priority."""
    return [
        TaskSpec("A", 1.0, 1.0, periodic(4.0), priority=1),
        TaskSpec("B", 2.0, 2.0, periodic(6.0), priority=2),
        TaskSpec("C", 3.0, 3.0, periodic(12.0), priority=3),
    ]


class TestClassicCanAnalysis:
    def test_highest_priority_blocked_by_longest_lower(self):
        # A: blocking max(2, 3) = 3, queueing 3, + C = 4.
        result = SPNPScheduler().analyze(frameset_classic(), "can")
        assert result["A"].r_max == 4.0
        assert result["A"].details["blocking"] == 3.0

    def test_middle_priority(self):
        # B: blocking 3, w = 3 + eta_A(w)*1 -> 5, + C = 7.
        result = SPNPScheduler().analyze(frameset_classic(), "can")
        assert result["B"].r_max == 7.0

    def test_lowest_priority_no_blocking(self):
        # C: no lower frame, w = eta_A*1 + eta_B*2 -> 3, + C = 6.
        result = SPNPScheduler().analyze(frameset_classic(), "can")
        assert result["C"].r_max == 6.0
        assert result["C"].details["blocking"] == 0.0

    def test_best_case_is_wire_time(self):
        result = SPNPScheduler().analyze(frameset_classic(), "can")
        assert result["B"].r_min == 2.0


class TestNonPreemptiveSemantics:
    def test_own_transmission_not_preempted(self):
        # One big low-priority frame, one fast high-priority stream: the
        # low frame, once started, finishes in C even though high frames
        # arrive meanwhile.
        frames = [
            TaskSpec("hi", 1.0, 1.0, periodic(4.0), priority=1),
            TaskSpec("lo", 3.0, 3.0, periodic(100.0), priority=2),
        ]
        result = SPNPScheduler().analyze(frames, "can")
        # lo queues behind at most one hi (w=1), then transmits 3.
        assert result["lo"].r_max == 4.0

    def test_arrival_at_arbitration_instant_counts(self):
        # hi frames arrive exactly every 4; with the arbitration epsilon
        # an arrival exactly at the end of the queueing window still
        # participates.  Construct w landing exactly on a multiple of 4.
        frames = [
            TaskSpec("hi", 2.0, 2.0, periodic(4.0), priority=1),
            TaskSpec("lo", 2.0, 2.0, periodic(50.0), priority=2),
        ]
        result = SPNPScheduler().analyze(frames, "can")
        # w iterates: 2 -> 2 + eta(2+)=1*2=2 ... eta_hi(2+eps)=1 -> w=2;
        # wait: blocking 0, w0 = 2?  queueing = 0 + 0 + eta_hi(w+eps)*2.
        # w0 = 2: eta(2+eps)=1 -> w=2. B = 2+2 = 4.
        assert result["lo"].r_max == 4.0

    def test_burst_queueing(self):
        frames = [
            TaskSpec("burst", 1.0, 1.0,
                     periodic_with_burst(10.0, 20.0, 0.0), priority=1),
            TaskSpec("lo", 2.0, 2.0, periodic(100.0), priority=2),
        ]
        result = SPNPScheduler().analyze(frames, "can")
        # Burst of 3 simultaneous high frames delays lo by 3 before its
        # own transmission.
        assert result["lo"].r_max == 5.0


class TestMultiInstanceWindows:
    def test_second_instance_queues_behind_first(self):
        # The analysed frame itself bursts: q=2 instances in one window.
        frames = [
            TaskSpec("b", 3.0, 3.0, periodic_with_burst(20.0, 40.0, 0.0),
                     priority=1),
        ]
        result = SPNPScheduler().analyze(frames, "can")
        # Three simultaneous instances: third waits 2*3 then transmits.
        assert result["b"].r_max == 9.0
        assert result["b"].q_max >= 3


class TestOverload:
    def test_bus_overload_detected(self):
        frames = [
            TaskSpec("x", 6.0, 6.0, periodic(10.0), priority=1),
            TaskSpec("y", 5.0, 5.0, periodic(10.0), priority=2),
        ]
        with pytest.raises(NotSchedulableError):
            SPNPScheduler().analyze(frames, "can")
