"""Unit tests for the abstract event-model surface (paper eqs. (1)/(2))."""

import math

import pytest

from conftest import assert_delta_consistent
from repro._errors import UnboundedStreamError
from repro.eventmodels import (
    FunctionEventModel,
    NullEventModel,
    models_equal,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
)
from repro.timebase import INF


class TestEtaPlusGenericInverse:
    """eta_plus computed purely from delta_min via eq. (1)."""

    def _fn_model(self, period):
        # FunctionEventModel uses the generic base-class inversion.
        return FunctionEventModel(
            lambda n: (n - 1) * period,
            lambda n: (n - 1) * period,
        )

    def test_zero_window(self):
        assert self._fn_model(100).eta_plus(0.0) == 0

    def test_negative_window(self):
        assert self._fn_model(100).eta_plus(-5.0) == 0

    def test_tiny_window_one_event(self):
        assert self._fn_model(100).eta_plus(1.0) == 1

    def test_exact_period_boundary(self):
        # eq. (1): strict inequality delta_min(n) < dt, so a window of
        # exactly one period holds only 1 event... the event at the far
        # boundary is excluded (half-open window).
        assert self._fn_model(100).eta_plus(100.0) == 1

    def test_just_past_boundary(self):
        assert self._fn_model(100).eta_plus(100.0001) == 2

    def test_large_window(self):
        assert self._fn_model(100).eta_plus(1000.5) == 11

    def test_matches_sem_closed_form(self):
        sem = periodic_with_jitter(100.0, 30.0)
        generic = FunctionEventModel(sem.delta_min, sem.delta_plus)
        for dt in (0.0, 1.0, 69.9, 70.0, 70.1, 100.0, 170.0, 1234.5):
            assert generic.eta_plus(dt) == sem.eta_plus(dt), dt

    def test_unbounded_stream_raises(self):
        flood = FunctionEventModel(lambda n: 0.0, lambda n: 0.0)
        with pytest.raises(UnboundedStreamError):
            flood.eta_plus(1.0)


class TestEtaMinGenericInverse:
    """eta_min computed purely from delta_plus via eq. (2)."""

    def test_negative_window(self):
        m = periodic(100.0)
        generic = FunctionEventModel(m.delta_min, m.delta_plus)
        assert generic.eta_min(-1.0) == 0

    def test_small_window_zero(self):
        m = periodic(100.0)
        generic = FunctionEventModel(m.delta_min, m.delta_plus)
        assert generic.eta_min(99.0) == 0

    def test_boundary_exclusive(self):
        # eq. (2): min n with delta_plus(n + 2) > dt; at dt = 100 the
        # two-event span equals 100, not >, so one event is guaranteed.
        m = periodic(100.0)
        generic = FunctionEventModel(m.delta_min, m.delta_plus)
        assert generic.eta_min(100.0) == 1

    def test_matches_sem_closed_form(self):
        sem = periodic_with_jitter(100.0, 30.0)
        generic = FunctionEventModel(sem.delta_min, sem.delta_plus)
        for dt in (0.0, 50.0, 100.0, 130.0, 130.1, 500.0, 999.9):
            assert generic.eta_min(dt) == sem.eta_min(dt), dt

    def test_sporadic_never_guarantees(self):
        stall = FunctionEventModel(lambda n: (n - 1) * 10.0,
                                   lambda n: INF)
        assert stall.eta_min(1e6) == 0


class TestSimultaneity:
    def test_periodic_is_one(self):
        assert periodic(100.0).simultaneity() == 1

    def test_burst_counts_coinciding_events(self):
        # P=100, J=250, d_min=0: delta_min(n) = max((n-1)*100 - 250, 0)
        # is zero for n <= 3 -> three events can coincide.
        burst = periodic_with_burst(100.0, 250.0, 0.0)
        assert burst.simultaneity() == 3

    def test_dmin_prevents_simultaneity(self):
        burst = periodic_with_burst(100.0, 250.0, 1.0)
        assert burst.simultaneity() == 1


class TestLoad:
    def test_periodic_load(self):
        assert periodic(250.0).load() == pytest.approx(1.0 / 250.0)

    def test_jitter_does_not_change_longrun_load(self):
        assert periodic_with_jitter(100.0, 90.0).load(5000) == \
            pytest.approx(0.01, rel=1e-2)

    def test_null_load(self):
        assert NullEventModel().load() == 0.0


class TestNullEventModel:
    def test_no_events_ever(self):
        null = NullEventModel()
        assert null.eta_plus(1e9) == 0
        assert null.eta_min(1e9) == 0

    def test_delta_inf(self):
        null = NullEventModel()
        assert null.delta_min(2) == INF
        assert null.delta_plus(5) == INF

    def test_consistency(self):
        assert_delta_consistent(NullEventModel(), n_max=5)

    def test_equality(self):
        assert NullEventModel() == NullEventModel()


class TestModelsEqual:
    def test_same_parameters(self):
        assert models_equal(periodic(100.0), periodic(100.0))

    def test_different_period(self):
        assert not models_equal(periodic(100.0), periodic(101.0))

    def test_jitter_difference(self):
        assert not models_equal(periodic(100.0),
                                periodic_with_jitter(100.0, 5.0))

    def test_sporadic_vs_periodic(self):
        from repro.eventmodels import sporadic
        assert not models_equal(periodic(100.0), sporadic(100.0))


class TestSeriesHelpers:
    def test_delta_seq_lengths(self):
        m = periodic(50.0)
        assert len(m.delta_min_seq(10)) == 11
        assert len(m.delta_plus_seq(10)) == 11

    def test_eta_series_monotone(self):
        series = periodic(50.0).eta_plus_series(500.0, 10.0)
        values = [v for _, v in series]
        assert values == sorted(values)

    def test_eta_series_bad_step(self):
        from repro._errors import ModelError
        with pytest.raises(ModelError):
            periodic(50.0).eta_plus_series(100.0, 0.0)

    def test_eta_series_no_float_drift(self):
        # Regression: sample positions are i * step, not an accumulated
        # t += step.  With step = 0.1 the accumulated sum drifts (1000
        # additions overshoot t_max by ~1e-13), silently dropping the
        # final sample and shifting late positions off-grid.
        step, t_max = 0.1, 100.0
        series = periodic(10.0).eta_plus_series(t_max, step)
        assert len(series) == int(t_max / step) + 1
        assert series[-1][0] == pytest.approx(t_max, abs=1e-12)
        for i, (t, _) in enumerate(series):
            assert t == i * step

    def test_eta_series_block_lengths(self):
        m = periodic(50.0)
        assert m.delta_min_block(12) == [m.delta_min(n) for n in range(13)]
        assert m.delta_plus_block(12) == [m.delta_plus(n)
                                          for n in range(13)]
