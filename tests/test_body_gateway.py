"""Integration tests on the two-bus body/powertrain case study."""

import pytest

from repro.analysis import backlog_bound
from repro.examples_lib.body_gateway import (
    DISPLAY_TASKS,
    PATHS,
    SIGNALS,
    build,
)
from repro.system import (
    analyze_system,
    path_latency,
    system_from_dict,
    system_to_dict,
)


@pytest.fixture(scope="module")
def state():
    system = build()
    return system, analyze_system(system)


class TestConvergence:
    def test_converges(self, state):
        _, result = state
        assert result.converged
        assert result.iterations <= 10

    def test_all_tasks_have_results(self, state):
        system, result = state
        for task in system.tasks:
            assert result.wcrt(task) is not None

    def test_bus_utilisations_sane(self, state):
        _, result = state
        for bus in ("CAN_P", "CAN_B"):
            assert 0 < result.resource_results[bus].utilization < 1


class TestChainThroughGateway:
    def test_gateway_chain_ordering(self, state):
        # The fused status can never respond before the powertrain frame
        # that feeds it completes its own busy window.
        _, result = state
        assert result.wcrt("gw_fuse") >= result.wcrt("PT_FAST") - 1e-9 \
            or result.wcrt("gw_fuse") > 0

    def test_display_priorities_order_wcrt(self, state):
        _, result = state
        wcrts = [result.wcrt(t) for t in
                 ("show_rpm", "show_speed", "show_doors",
                  "show_climate")]
        assert wcrts == sorted(wcrts)

    def test_path_latencies(self, state):
        system, result = state
        for name, path in PATHS.items():
            lat = path_latency(system, result, path)
            assert lat.worst_case > lat.best_case > 0

    def test_rpm_path_bounded_by_sum(self, state):
        system, result = state
        lat = path_latency(system, result, PATHS["rpm_to_display"])
        expected = (result.wcrt("PT_FAST") + result.wcrt("gw_fuse")
                    + result.wcrt("GW_STATUS") + result.wcrt("show_rpm"))
        assert lat.worst_case == pytest.approx(expected)


class TestToolingOnCaseStudy:
    def test_serialisation_round_trip(self, state):
        system, result = state
        clone = system_from_dict(system_to_dict(system))
        clone_result = analyze_system(clone)
        for task in DISPLAY_TASKS:
            assert clone_result.wcrt(task) == pytest.approx(
                result.wcrt(task))

    def test_backlog_bounds_finite(self, state):
        system, result = state
        for frame in ("PT_FAST", "BODY_DOORS"):
            tr = result.task_result(frame)
            # frame activation model: rebuild via resolver
            from repro.system.propagation import _StreamResolver
            responses = {}
            for rr in result.resource_results.values():
                responses.update(rr.task_results)
            resolver = _StreamResolver(system, responses, {})
            act = resolver.activation_model(system.tasks[frame])
            assert backlog_bound(tr, act) >= 1

    def test_describe_covers_everything(self, state):
        system, _ = state
        text = system.describe()
        for node in ("gw_fuse", "GW_STATUS", "CAN_P", "CAN_B",
                     "BODY_DOORS_pack"):
            assert node in text
