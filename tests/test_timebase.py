"""Unit tests for the time arithmetic helpers."""

import math

import pytest

from repro.timebase import (
    EPS,
    INF,
    is_finite,
    merge_eq,
    strict_ceil,
    strict_floor,
    time_eq,
    time_leq,
    time_lt,
)


class TestStrictFloor:
    def test_non_integer(self):
        assert strict_floor(3.7) == 3

    def test_exact_integer_steps_down(self):
        assert strict_floor(3.0) == 2

    def test_zero(self):
        assert strict_floor(0.0) == -1

    def test_negative(self):
        assert strict_floor(-1.5) == -2

    def test_negative_integer(self):
        assert strict_floor(-2.0) == -3

    def test_just_above_integer(self):
        assert strict_floor(5.0000001) == 5


class TestStrictCeil:
    def test_non_integer(self):
        assert strict_ceil(3.2) == 4

    def test_exact_integer_steps_up(self):
        assert strict_ceil(3.0) == 4

    def test_zero(self):
        assert strict_ceil(0.0) == 1

    def test_negative(self):
        assert strict_ceil(-1.5) == -1

    def test_consistency_with_floor(self):
        # strict_ceil(x) is always > x, strict_floor(x) always < x
        for x in (0.0, 1.0, 2.5, -3.0, 17.999):
            assert strict_ceil(x) > x
            assert strict_floor(x) < x


class TestTimeComparisons:
    def test_eq_exact(self):
        assert time_eq(1.0, 1.0)

    def test_eq_within_eps(self):
        assert time_eq(1.0, 1.0 + EPS / 2)

    def test_eq_outside_eps(self):
        assert not time_eq(1.0, 1.0 + 10 * EPS)

    def test_eq_inf(self):
        assert time_eq(INF, INF)

    def test_eq_inf_vs_finite(self):
        assert not time_eq(INF, 1e300)

    def test_leq_tolerant(self):
        assert time_leq(1.0 + EPS / 2, 1.0)

    def test_leq_strict_failure(self):
        assert not time_leq(2.0, 1.0)

    def test_lt_strict(self):
        assert time_lt(1.0, 2.0)

    def test_lt_rejects_near_equal(self):
        assert not time_lt(1.0, 1.0 + EPS / 2)

    def test_is_finite(self):
        assert is_finite(0.0)
        assert not is_finite(INF)
        assert not is_finite(math.nan)


class TestMergeEq:
    def test_equal_sequences(self):
        assert merge_eq([1.0, 2.0], [1.0, 2.0 + EPS / 10])

    def test_different_values(self):
        assert not merge_eq([1.0, 2.0], [1.0, 3.0])

    def test_different_lengths(self):
        assert not merge_eq([1.0], [1.0, 2.0])

    def test_inf_entries(self):
        assert merge_eq([INF], [INF])
        assert not merge_eq([INF], [1.0])
