"""Unit tests for offset joins and backlog bounds."""

import pytest

from conftest import assert_delta_consistent
from repro._errors import AnalysisError, ModelError
from repro.analysis import (
    SPNPScheduler,
    SPPScheduler,
    TaskSpec,
    backlog_bound,
    buffer_bound,
)
from repro.analysis.results import TaskResult
from repro.eventmodels import (
    offset_join,
    or_join,
    periodic,
    periodic_with_burst,
    verify_dominates,
)


class TestOffsetJoin:
    def test_uniform_offsets_are_periodic(self):
        # 4 streams of period 1000 at offsets 0/250/500/750 == one
        # periodic-250 stream.
        j = offset_join(1000.0, [0.0, 250.0, 500.0, 750.0])
        ref = periodic(250.0)
        for n in range(2, 20):
            assert j.delta_min(n) == pytest.approx(ref.delta_min(n))
            assert j.delta_plus(n) == pytest.approx(ref.delta_plus(n))

    def test_irregular_offsets(self):
        # Offsets 0 and 100 in a 1000 cycle: gaps alternate 100 / 900.
        j = offset_join(1000.0, [0.0, 100.0])
        assert j.delta_min(2) == 100.0
        assert j.delta_plus(2) == 900.0
        assert j.delta_min(3) == 1000.0
        assert j.delta_plus(3) == 1000.0

    def test_offsets_kill_the_burst(self):
        # The offset-blind OR-join of 4 same-period streams allows a
        # burst of 4; offsets provably prevent it.
        blind = or_join([periodic(1000.0)] * 4)
        aware = offset_join(1000.0, [0.0, 250.0, 500.0, 750.0])
        assert blind.delta_min(4) == 0.0
        assert aware.delta_min(4) == 750.0
        # The blind join still *covers* the offset pattern (conservatism
        # of the offset-free model).
        assert verify_dominates(blind, aware, n_max=24)

    def test_offsets_reduced_modulo_period(self):
        a = offset_join(100.0, [0.0, 130.0])  # 130 -> 30
        b = offset_join(100.0, [0.0, 30.0])
        for n in range(2, 10):
            assert a.delta_min(n) == b.delta_min(n)

    def test_simultaneous_offsets_allowed(self):
        j = offset_join(100.0, [0.0, 0.0])
        assert j.delta_min(2) == 0.0

    def test_jitter_widens_bounds(self):
        tight = offset_join(1000.0, [0.0, 500.0])
        loose = offset_join(1000.0, [0.0, 500.0], jitter=50.0)
        assert loose.delta_min(2) == tight.delta_min(2) - 50.0
        assert loose.delta_plus(2) == tight.delta_plus(2) + 50.0

    def test_jitter_reaching_gap_rejected(self):
        with pytest.raises(ModelError):
            offset_join(1000.0, [0.0, 100.0], jitter=100.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            offset_join(0.0, [0.0])
        with pytest.raises(ModelError):
            offset_join(100.0, [])
        with pytest.raises(ModelError):
            offset_join(100.0, [0.0], jitter=-1.0)

    def test_consistency(self):
        j = offset_join(1000.0, [0.0, 50.0, 300.0], jitter=10.0)
        assert_delta_consistent(j, n_max=40)


class TestBacklogBound:
    def test_single_periodic_task(self):
        spec = TaskSpec("t", 5.0, 5.0, periodic(10.0), priority=1)
        result = SPPScheduler().analyze([spec], "cpu")["t"]
        assert backlog_bound(result, spec.event_model) == 1

    def test_burst_queues_up(self):
        em = periodic_with_burst(100.0, 250.0, 0.0)  # bursts of 3
        spec = TaskSpec("t", 30.0, 30.0, em, priority=1)
        result = SPPScheduler().analyze([spec], "cpu")["t"]
        assert backlog_bound(result, em) == 3

    def test_interference_grows_backlog(self):
        # Near-saturated CPU: lo's busy window spans several of its own
        # periods, so later activations queue behind earlier ones.
        tasks = [
            TaskSpec("hi", 6.0, 6.0, periodic(10.0), priority=1),
            TaskSpec("lo", 3.0, 3.0, periodic(8.0), priority=2),
        ]
        results = SPPScheduler().analyze(tasks, "cpu")
        lo_backlog = backlog_bound(results["lo"], tasks[1].event_model)
        assert lo_backlog >= 2

    def test_spnp_frames(self):
        frames = [
            TaskSpec("a", 1.0, 1.0, periodic(4.0), priority=1),
            TaskSpec("c", 3.0, 3.0, periodic(12.0), priority=3),
        ]
        results = SPNPScheduler().analyze(frames, "bus")
        assert backlog_bound(results["a"], frames[0].event_model) >= 1

    def test_buffer_bytes(self):
        em = periodic_with_burst(100.0, 250.0, 0.0)
        spec = TaskSpec("t", 30.0, 30.0, em, priority=1)
        result = SPPScheduler().analyze([spec], "cpu")["t"]
        assert buffer_bound(result, em, item_bytes=8) == 24

    def test_no_busy_window_data_rejected(self):
        bare = TaskResult("t", 1.0, 2.0)
        with pytest.raises(AnalysisError):
            backlog_bound(bare, periodic(10.0))


class TestReportCli:
    def test_report_builds_and_is_sound(self):
        from repro.report import build_report
        report = build_report(sim_horizon=20_000.0)
        assert "Table 3" in report
        assert "SOUND" in report
        assert "VIOLATED" not in report

    def test_cli_exit_code(self):
        from repro.report import main
        assert main(["15000"]) == 0

    def test_cli_bad_arg(self):
        from repro.report import main
        assert main(["not-a-number"]) == 2
