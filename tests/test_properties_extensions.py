"""Property-based tests for the extension features: offset joins,
nested hierarchies, backlog bounds, serialisation, FlexRay."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import SPPScheduler, TaskSpec, backlog_bound
from repro.core import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    hsc_pack,
    shift_hierarchy,
    unpack_deep,
)
from repro.eventmodels import (
    StandardEventModel,
    models_equal,
    offset_join,
    or_join,
    periodic,
    verify_dominates,
)
from repro.flexray import FlexRayConfig, FlexRayStaticScheduler
from repro.sim import (
    ResponseRecorder,
    Simulator,
    SppCpuSim,
    worst_case_arrivals,
)
from repro.system import model_from_dict, model_to_dict

periods = st.floats(min_value=10.0, max_value=1000.0, allow_nan=False)


@st.composite
def sem_models(draw):
    p = draw(periods)
    j = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    d = None
    if j >= p:
        d = draw(st.floats(min_value=0.0, max_value=p / 2))
        d = round(d, 3)
    return StandardEventModel(round(p, 3), round(j, 3), d)


class TestOffsetJoinProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=100.0, max_value=2000.0),
           st.lists(st.floats(min_value=0.0, max_value=1999.0),
                    min_size=1, max_size=5))
    def test_blind_join_covers_offset_join(self, period, offsets):
        # Forgetting the offsets (plain OR of same-period streams) must
        # be a conservative cover of the offset-exact model.
        aware = offset_join(period, offsets)
        blind = or_join([periodic(period)] * len(offsets))
        assert verify_dominates(blind, aware, n_max=24)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=100.0, max_value=2000.0),
           st.lists(st.floats(min_value=0.0, max_value=1999.0),
                    min_size=1, max_size=5))
    def test_rate_preserved(self, period, offsets):
        aware = offset_join(period, offsets)
        assert aware.load(500) == pytest.approx(
            len(offsets) / period, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=100.0, max_value=2000.0),
           st.lists(st.floats(min_value=0.0, max_value=1999.0),
                    min_size=1, max_size=5))
    def test_structure(self, period, offsets):
        aware = offset_join(period, offsets)
        prev_min = prev_plus = 0.0
        for n in range(2, 20):
            dmin, dplus = aware.delta_min(n), aware.delta_plus(n)
            assert dmin >= prev_min - 1e-9
            assert dplus >= prev_plus - 1e-9
            assert dmin <= dplus + 1e-9
            prev_min, prev_plus = dmin, dplus


class TestNestingProperties:
    @settings(max_examples=25, deadline=None)
    @given(sem_models(), sem_models(),
           st.floats(min_value=0.0, max_value=50.0),
           st.floats(min_value=0.0, max_value=20.0))
    def test_nested_shift_equals_leaf_shift(self, a, b, span, r_min):
        # Shifting a hierarchy and then reading a leaf equals shifting
        # the leaf directly (shift commutes with unpacking).
        inner_frame = hsc_pack(
            {"a": (a, TransferProperty.TRIGGERING)}, name="F")
        outer = hsc_pack(
            {"F": (inner_frame, TransferProperty.TRIGGERING),
             "b": (b, TransferProperty.TRIGGERING)}, name="B")
        k = outer.outer.simultaneity()
        shifted_tree = apply_operation(outer,
                                       BusyWindowOutput(r_min,
                                                        r_min + span))
        leaf_via_tree = unpack_deep(shifted_tree)["F/a"]
        leaf_direct = shift_hierarchy(a, span, r_min, k)
        assert models_equal(leaf_via_tree, leaf_direct, n_max=16)

    @settings(max_examples=25, deadline=None)
    @given(sem_models(), sem_models())
    def test_unpack_deep_leaf_count(self, a, b):
        inner_frame = hsc_pack(
            {"a": (a, TransferProperty.TRIGGERING),
             "b": (b, TransferProperty.PENDING)},
            timer=periodic(500.0), name="F")
        outer = hsc_pack(
            {"F": (inner_frame, TransferProperty.TRIGGERING)}, name="B")
        leaves = unpack_deep(outer)
        assert set(leaves) == {"F/a", "F/b"}


class TestBacklogProperties:
    @settings(max_examples=20, deadline=None)
    @given(sem_models(), st.floats(min_value=1.0, max_value=40.0))
    def test_backlog_covers_simulation(self, em, wcet):
        assume(wcet * em.load(500) < 0.9)
        spec = TaskSpec("t", wcet, wcet, em, priority=1)
        result = SPPScheduler().analyze([spec], "cpu")["t"]
        bound = backlog_bound(result, em)

        sim = Simulator()
        rec = ResponseRecorder()
        cpu = SppCpuSim(sim, rec)
        cpu.add_task("t", 1, wcet)
        observed = 0

        arrivals = worst_case_arrivals(em, 3000.0)
        for t in arrivals:
            sim.schedule(t, lambda: cpu.activate("t"))

        # sample backlog just after each arrival
        def probe():
            nonlocal observed
            observed = max(observed, cpu.backlog())

        for t in arrivals:
            sim.schedule(t + 1e-9, probe)
        sim.run_until(6000.0)
        assert observed <= bound


class TestSerializationProperties:
    @settings(max_examples=40, deadline=None)
    @given(sem_models())
    def test_standard_round_trip(self, m):
        clone = model_from_dict(model_to_dict(m))
        assert models_equal(m, clone, n_max=24)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(sem_models(), min_size=2, max_size=3))
    def test_join_round_trip_within_horizon(self, models):
        join = or_join(models)
        clone = model_from_dict(model_to_dict(join))
        for n in range(2, 32):
            assert clone.delta_min(n) == pytest.approx(
                join.delta_min(n), abs=1e-6)


class TestAdditiveExtensionProperties:
    """The additive extension used by detached compiled curves and
    :func:`freeze` must bound the direct evaluation: δ⁻ never
    overestimated, δ⁺ never underestimated — for jittered periodic and
    bursty sources alike."""

    @settings(max_examples=40, deadline=None)
    @given(sem_models(), st.integers(min_value=5, max_value=24),
           st.integers(min_value=1, max_value=60))
    def test_additive_extension_bounds_direct_evaluation(
            self, model, prefix_top, beyond):
        from repro.eventmodels.curves import _extend_additive

        dmin = [model.delta_min(n) for n in range(prefix_top + 1)]
        dplus = [model.delta_plus(n) for n in range(prefix_top + 1)]
        n = prefix_top + beyond
        ext_min = _extend_additive(dmin, n)
        ext_plus = _extend_additive(dplus, n)
        assert ext_min <= model.delta_min(n) + 1e-9 * max(1.0, ext_min)
        assert ext_plus >= model.delta_plus(n) - 1e-9 * max(1.0, ext_plus)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=20.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=1500.0),
           st.floats(min_value=0.5, max_value=10.0),
           st.integers(min_value=6, max_value=20),
           st.integers(min_value=1, max_value=80))
    def test_burst_model_extension_conservative(self, p, j, d, top, beyond):
        from repro.eventmodels import periodic_with_burst
        from repro.eventmodels.curves import _extend_additive

        assume(j >= p)  # actual burst shape
        assume(d <= p / 2)
        model = periodic_with_burst(round(p, 3), round(j, 3), round(d, 3))
        dmin = [model.delta_min(n) for n in range(top + 1)]
        dplus = [model.delta_plus(n) for n in range(top + 1)]
        n = top + beyond
        assert _extend_additive(dmin, n) <= model.delta_min(n) + 1e-9
        ext_plus = _extend_additive(dplus, n)
        assert ext_plus >= model.delta_plus(n) - 1e-9 * max(1.0, ext_plus)


class TestFlexRayProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=500.0, max_value=5000.0),
           st.integers(2, 10),
           st.floats(min_value=1.2, max_value=10.0))
    def test_wcrt_formula(self, cycle, n_slots, period_factor):
        slot = cycle / (2 * n_slots)
        config = FlexRayConfig(cycle, slot, n_slots, bit_time=0.01)
        wire = slot / 2
        em = periodic(cycle * period_factor)
        result = FlexRayStaticScheduler(config).analyze(
            [TaskSpec("f", wire, wire, em, slot=0)])
        # Single-activation windows: closed form.
        assert result["f"].r_max == pytest.approx(
            cycle - slot + wire)
