"""Property-based bit-identity tests for the batched kernels and the
dirty-set incremental re-analysis.

The contract under test is exact equality, not approximation: for any
task set and any policy, the scalar loops, the pure-python batched
backend, and (when importable) the numpy backend must produce the same
floats bit-for-bit — including busy-window sequences, q_max, global
iteration counts, degraded-mode health maps, and fault-injected
variants.  Likewise an incremental (memoised) sweep must reproduce the
from-scratch results exactly after single-axis edits.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Fault, FaultPlan, analyze_system, inject_faults
from repro._errors import NotSchedulableError
from repro.analysis import (
    EDFScheduler,
    RoundRobinScheduler,
    SPNPScheduler,
    SPPScheduler,
    TaskSpec,
    TDMAScheduler,
)
from repro.analysis import kernels
from repro.analysis.memo import AnalysisMemo
from repro.eventmodels import StandardEventModel
from repro.examples_lib.rox08 import build_system as build_rox08
from repro.system import System


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    snap = (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
            kernels.min_batch_lanes, kernels.min_batch_load)
    yield
    (kernels.enabled, kernels.numpy_enabled, kernels.warm_start,
     kernels.min_batch_lanes, kernels.min_batch_load) = snap


# ----------------------------------------------------------------------
# digests & mode harness
# ----------------------------------------------------------------------
def resource_digest(rr):
    return {n: (t.r_min, t.r_max, tuple(t.busy_times), t.q_max)
            for n, t in rr.task_results.items()}


def system_digest(result):
    return (result.iterations,
            {rn: resource_digest(rr)
             for rn, rr in sorted(result.resource_results.items())},
            tuple(sorted(result.path_latencies.items())))


def modes():
    """(name, configure-kwargs) for every kernel mode to compare.

    ``min_batch=0`` forces the batched path even on the deliberately
    tiny randomized systems; the lane/load gate is a pure speed
    heuristic, so forcing it must not change any result.
    """
    out = [("scalar", dict(vectorized=False)),
           ("python", dict(vectorized=True, numpy=False, min_batch=0))]
    if kernels._np is not None:
        out.append(("numpy", dict(vectorized=True, numpy=True,
                                  min_batch=0)))
    return out


def run_modes(fn):
    """Run *fn* under every mode; all outcomes (value or error) must
    match the scalar outcome exactly."""
    outcomes = {}
    for name, cfg in modes():
        kernels.configure(**cfg)
        try:
            outcomes[name] = ("ok", fn())
        except NotSchedulableError as exc:
            outcomes[name] = ("notsched", exc.resource, exc.task)
    kernels.configure(vectorized=True, numpy=True)
    baseline = outcomes["scalar"]
    for name, outcome in outcomes.items():
        assert outcome == baseline, f"{name} diverges from scalar"
    return baseline


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def task_sets(draw, policy):
    n = draw(st.integers(min_value=2, max_value=6))
    util = draw(st.floats(min_value=0.2, max_value=0.85))
    share = util / n
    tasks = []
    for i in range(n):
        period = draw(st.floats(min_value=20.0, max_value=400.0))
        jitter = draw(st.floats(min_value=0.0, max_value=1.5)) * period
        # d_min is either absent or meaningfully large: a denormal-tiny
        # d_min makes η⁺ counts overflow in *any* backend (degenerate
        # model, not a kernel property).
        d_min = draw(st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=5.0)))
        em = StandardEventModel(period=period, jitter=jitter,
                                d_min=d_min)
        cmax = max(1e-3, share * period)
        kw = {}
        if policy in ("spp", "spnp"):
            kw["priority"] = i + 1
            if policy == "spnp":
                kw["blocking"] = draw(st.floats(min_value=0.0,
                                                max_value=3.0))
        elif policy in ("rr", "tdma"):
            kw["slot"] = draw(st.floats(min_value=1.0, max_value=5.0))
        elif policy == "edf":
            kw["deadline"] = period * draw(st.floats(min_value=1.0,
                                                     max_value=3.0))
        tasks.append(TaskSpec(name=f"t{i}", event_model=em,
                              c_min=0.5 * cmax, c_max=cmax, **kw))
    return tasks


SCHEDULERS = {
    "spp": SPPScheduler,
    "spnp": SPNPScheduler,
    "rr": RoundRobinScheduler,
    "edf": EDFScheduler,
}


# ----------------------------------------------------------------------
# whole-resource bit-identity, all policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_resource_bit_identity(policy, data):
    tasks = data.draw(task_sets(policy))
    scheduler = SCHEDULERS[policy]()
    run_modes(lambda: resource_digest(scheduler.analyze(tasks, "res")))


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_tdma_bit_identity(data):
    # TDMA needs per-task demand below its slot share; equal slots and
    # bounded total utilization guarantee it.
    tasks = data.draw(task_sets("tdma"))
    share = 1.0 / len(tasks)
    tasks = [TaskSpec(name=t.name, event_model=t.event_model,
                      c_min=t.c_min * share, c_max=t.c_max * share,
                      slot=2.0)
             for t in tasks]
    scheduler = TDMAScheduler()
    run_modes(lambda: resource_digest(scheduler.analyze(tasks, "bus")))


# ----------------------------------------------------------------------
# end-to-end bit-identity, including degraded & fault-injected systems
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["flat", "hem"])
def test_rox08_end_to_end_bit_identity(variant):
    run_modes(lambda: system_digest(analyze_system(build_rox08(variant))))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_fault_injected_bit_identity(seed):
    base = build_rox08("hem")
    plan = FaultPlan.sample(base, seed=seed)

    def run():
        system = inject_faults(base, plan)
        outcome = analyze_system(system, on_failure="degrade")
        return json.dumps(outcome.to_dict(), sort_keys=True)

    run_modes(run)


def test_degraded_overload_bit_identity():
    from repro.examples_lib.stress import build_overloaded

    def run():
        outcome = analyze_system(build_overloaded(), on_failure="degrade")
        return json.dumps(outcome.to_dict(), sort_keys=True)

    run_modes(run)


def test_can_error_burst_bit_identity():
    # The SPNP tail path (CAN error model) through the kernels.
    base = build_rox08("hem")
    plan = FaultPlan((Fault("can_error_burst", "CAN", 3),))

    def run():
        outcome = analyze_system(inject_faults(base, plan),
                                 on_failure="degrade")
        return json.dumps(outcome.to_dict(), sort_keys=True)

    run_modes(run)


# ----------------------------------------------------------------------
# incremental == from-scratch after single-axis edits
# ----------------------------------------------------------------------
def build_two_stage(scale: float) -> System:
    system = System("sweep")
    for i in range(4):
        period = 80.0 * (i + 2)
        system.add_source(f"S{i}", StandardEventModel(
            period=period, jitter=0.5 * period, d_min=1.0))
    system.add_resource("BIG", SPPScheduler())
    for i in range(4):
        period = 80.0 * (i + 2)
        system.add_task(f"B{i}", "BIG", (0.05 * period, 0.1 * period),
                        [f"S{i}"], priority=i + 1)
    system.add_resource("LEAF", SPPScheduler())
    for i in range(2):
        system.add_task(f"L{i}", "LEAF",
                        (5.0 * scale, 10.0 * scale), [f"B{i}"],
                        priority=i + 1)
    return system


@settings(max_examples=15, deadline=None)
@given(scales=st.lists(st.floats(min_value=0.2, max_value=3.0),
                       min_size=2, max_size=5))
def test_incremental_sweep_matches_from_scratch(scales):
    cold = [system_digest(analyze_system(build_two_stage(s)))
            for s in scales]
    memo = AnalysisMemo()
    warm = [system_digest(analyze_system(build_two_stage(s), memo=memo))
            for s in scales]
    assert warm == cold
    stats = memo.stats()
    assert stats["tasks_total"] > 0
    # Only the LEAF edits: the BIG resource must see heavy reuse.
    assert stats["task_reuses"] > 0


@settings(max_examples=10, deadline=None)
@given(scale=st.floats(min_value=0.2, max_value=3.0))
def test_incremental_identical_rerun_hits_resource_cache(scale):
    memo = AnalysisMemo()
    first = system_digest(analyze_system(build_two_stage(scale),
                                         memo=memo))
    hits_before = memo.stats()["resource_hits"]
    second = system_digest(analyze_system(build_two_stage(scale),
                                          memo=memo))
    assert second == first
    assert memo.stats()["resource_hits"] > hits_before
