"""Unit tests for the shared-resource blocking term."""

import pytest

from repro._errors import ModelError
from repro.analysis import SPNPScheduler, SPPScheduler, TaskSpec
from repro.eventmodels import periodic


class TestSppBlocking:
    def test_blocking_added_once(self):
        base = TaskSpec("t", 5.0, 5.0, periodic(20.0), priority=1)
        blocked = TaskSpec("t", 5.0, 5.0, periodic(20.0), priority=1,
                           blocking=3.0)
        r0 = SPPScheduler().analyze([base], "c")["t"].r_max
        r1 = SPPScheduler().analyze([blocked], "c")["t"].r_max
        assert r1 == r0 + 3.0

    def test_blocking_interacts_with_interference(self):
        # Blocking lengthens the window, which can admit extra
        # higher-priority arrivals: more than additive growth.
        tasks_free = [
            TaskSpec("hi", 4.0, 4.0, periodic(10.0), priority=1),
            TaskSpec("lo", 2.0, 2.0, periodic(40.0), priority=2),
        ]
        tasks_blocked = [
            TaskSpec("hi", 4.0, 4.0, periodic(10.0), priority=1),
            TaskSpec("lo", 2.0, 2.0, periodic(40.0), priority=2,
                     blocking=5.0),
        ]
        r0 = SPPScheduler().analyze(tasks_free, "c")["lo"].r_max
        r1 = SPPScheduler().analyze(tasks_blocked, "c")["lo"].r_max
        # w: 2 + 4*eta(w): 6 -> 6. Blocked: 7 + 4*eta(w): 11 -> 15 -> 15.
        assert r0 == 6.0
        assert r1 == 15.0

    def test_negative_blocking_rejected(self):
        with pytest.raises(ModelError):
            TaskSpec("t", 1.0, 1.0, periodic(10.0), blocking=-1.0)

    def test_default_zero(self):
        assert TaskSpec("t", 1.0, 1.0, periodic(10.0)).blocking == 0.0


class TestSpnpBlocking:
    def test_adds_to_transmission_blocking(self):
        frames = [
            TaskSpec("hi", 1.0, 1.0, periodic(10.0), priority=1,
                     blocking=2.0),
            TaskSpec("lo", 3.0, 3.0, periodic(30.0), priority=2),
        ]
        result = SPNPScheduler().analyze(frames, "bus")
        # hi: lower-prio wire blocking 3 + extra 2 + own 1 = 6.
        assert result["hi"].r_max == 6.0
        assert result["hi"].details["blocking"] == 5.0
