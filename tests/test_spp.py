"""Unit tests for the SPP response-time analysis (hand-checked cases)."""

import pytest

from repro._errors import ModelError, NotSchedulableError
from repro.analysis import SPPScheduler, TaskSpec
from repro.eventmodels import (
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
)


def taskset_classic():
    """The textbook (C, P) set {(1,4), (2,6), (3,12)}."""
    return [
        TaskSpec("t1", 1.0, 1.0, periodic(4.0), priority=1),
        TaskSpec("t2", 2.0, 2.0, periodic(6.0), priority=2),
        TaskSpec("t3", 3.0, 3.0, periodic(12.0), priority=3),
    ]


class TestClassicRTA:
    def test_highest_priority(self):
        result = SPPScheduler().analyze(taskset_classic(), "cpu")
        assert result["t1"].r_max == 1.0

    def test_middle_priority(self):
        result = SPPScheduler().analyze(taskset_classic(), "cpu")
        assert result["t2"].r_max == 3.0

    def test_lowest_priority(self):
        # w = 3 + eta_1(w)*1 + eta_2(w)*2 converges at 10.
        result = SPPScheduler().analyze(taskset_classic(), "cpu")
        assert result["t3"].r_max == 10.0

    def test_best_case_is_cmin(self):
        result = SPPScheduler().analyze(taskset_classic(), "cpu")
        assert result["t3"].r_min == 3.0

    def test_utilization_reported(self):
        result = SPPScheduler().analyze(taskset_classic(), "cpu")
        assert result.utilization == pytest.approx(
            1 / 4 + 2 / 6 + 3 / 12, rel=1e-3)


class TestJitterEffects:
    def test_jitter_on_interferer_raises_wcrt(self):
        base = [
            TaskSpec("hi", 2.0, 2.0, periodic(10.0), priority=1),
            TaskSpec("lo", 5.0, 5.0, periodic(30.0), priority=2),
        ]
        jittered = [
            TaskSpec("hi", 2.0, 2.0, periodic_with_jitter(10.0, 9.0),
                     priority=1),
            TaskSpec("lo", 5.0, 5.0, periodic(30.0), priority=2),
        ]
        r0 = SPPScheduler().analyze(base, "cpu")["lo"].r_max
        r1 = SPPScheduler().analyze(jittered, "cpu")["lo"].r_max
        assert r1 >= r0

    def test_burst_multi_activation_window(self):
        # The analysed task itself is bursty: multiple activations share
        # one busy window and the later ones queue behind the earlier.
        tasks = [TaskSpec("b", 30.0, 30.0,
                          periodic_with_burst(100.0, 250.0, 0.0),
                          priority=1)]
        result = SPPScheduler().analyze(tasks, "cpu")
        # Three simultaneous activations: q=3 busy time 90, arrival at
        # delta_min(3) = 0 -> response 90.
        assert result["b"].r_max == 90.0
        assert result["b"].q_max >= 3


class TestOverload:
    def test_utilization_above_one_rejected(self):
        tasks = [TaskSpec("x", 9.0, 9.0, periodic(10.0), priority=1),
                 TaskSpec("y", 5.0, 5.0, periodic(10.0), priority=2)]
        with pytest.raises(NotSchedulableError) as err:
            SPPScheduler().analyze(tasks, "cpu")
        assert err.value.utilization > 1.0

    def test_custom_limit(self):
        tasks = [TaskSpec("x", 5.0, 5.0, periodic(10.0), priority=1)]
        with pytest.raises(NotSchedulableError):
            SPPScheduler(utilization_limit=0.4).analyze(tasks, "cpu")


class TestPriorities:
    def test_equal_priority_counts_as_interference(self):
        tasks = [
            TaskSpec("a", 2.0, 2.0, periodic(10.0), priority=1),
            TaskSpec("b", 3.0, 3.0, periodic(10.0), priority=1),
        ]
        result = SPPScheduler().analyze(tasks, "cpu")
        # Conservative: each sees the other as an interferer.
        assert result["a"].r_max == 5.0
        assert result["b"].r_max == 5.0

    def test_lower_number_wins(self):
        tasks = [
            TaskSpec("hi", 4.0, 4.0, periodic(10.0), priority=0),
            TaskSpec("lo", 1.0, 1.0, periodic(10.0), priority=5),
        ]
        result = SPPScheduler().analyze(tasks, "cpu")
        assert result["hi"].r_max == 4.0
        assert result["lo"].r_max == 5.0

    def test_duplicate_names_rejected(self):
        tasks = [
            TaskSpec("same", 1.0, 1.0, periodic(10.0), priority=1),
            TaskSpec("same", 1.0, 1.0, periodic(10.0), priority=2),
        ]
        with pytest.raises(ModelError):
            SPPScheduler().analyze(tasks, "cpu")


class TestTaskSpecValidation:
    def test_negative_cmin(self):
        with pytest.raises(ModelError):
            TaskSpec("x", -1.0, 2.0, periodic(10.0))

    def test_cmax_below_cmin(self):
        with pytest.raises(ModelError):
            TaskSpec("x", 3.0, 2.0, periodic(10.0))

    def test_zero_cmax(self):
        with pytest.raises(ModelError):
            TaskSpec("x", 0.0, 0.0, periodic(10.0))

    def test_load(self):
        spec = TaskSpec("x", 1.0, 2.0, periodic(10.0))
        assert spec.load() == pytest.approx(0.2)
