"""Sampling profiler: sampling mechanics, CLI surfaces, serve opt-in."""

from __future__ import annotations

import re
import threading
import time

import pytest

from repro import obs
from repro.batch.cli import batch_main
from repro.obs.profile import SamplingProfiler, profile_main
from repro.serve import ServeClient, daemon_in_thread

COLLAPSED_LINE = re.compile(r"^\S.* \d+$")


def _busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


@pytest.fixture(autouse=True)
def _obs_isolation():
    yield
    obs.configure(enabled=False, reset=True)
    obs.get_bus().clear()


class TestSamplingProfiler:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_wait, args=(stop,),
                                  daemon=True)
        worker.start()
        try:
            with SamplingProfiler(
                    hz=200, threads={worker.ident}) as profiler:
                # Deadline-based, not a fixed sleep: under a loaded
                # machine the sampler thread may be starved for a while.
                deadline = time.monotonic() + 10.0
                while (profiler.samples < 5
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples >= 5
        text = profiler.collapsed()
        for line in text.splitlines():
            assert COLLAPSED_LINE.match(line), line
        assert "_busy_wait" in text
        rows = profiler.hot_table()
        assert rows and rows[0]["self"] >= 1
        assert "_busy_wait" in profiler.render_hot_table()

    def test_thread_filter_excludes_other_threads(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_wait, args=(stop,),
                                  daemon=True)
        worker.start()
        try:
            # Filter on a fake ident: nothing may be sampled.
            with SamplingProfiler(hz=200, threads={-1}) as profiler:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples == 0
        assert profiler.collapsed() == ""

    def test_stop_is_clean_and_idempotent(self):
        profiler = SamplingProfiler(hz=500).start()
        assert profiler.running
        profiler.stop()
        assert not profiler.running
        profiler.stop()  # second stop is a no-op
        assert profiler.duration >= 0.0
        report = profiler.to_dict()
        assert set(report) == {"hz", "samples", "duration",
                               "collapsed", "hot"}

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestProfileCli:
    def test_profiles_builtin_example(self, tmp_path, capsys):
        out = tmp_path / "pipeline.collapsed"
        rc = profile_main(["pipeline", "--hz", "500",
                           "--repeat", "3", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "profiled 'pipeline'" in captured

    def test_unknown_example_fails_cleanly(self, capsys):
        assert profile_main(["no-such-example"]) == 2
        assert "unknown example" in capsys.readouterr().err


class TestBatchProfileFlag:
    def test_profiled_sweep_writes_collapsed_file(self, tmp_path,
                                                  capsys):
        cache = tmp_path / "cache"
        rc = batch_main(["quickstart", "--sample", "2",
                         "--profile", "--profile-hz", "500",
                         "--cache-dir", str(cache), "--quiet"])
        assert rc == 0
        collapsed = cache / "profile.collapsed"
        assert collapsed.exists()
        for line in collapsed.read_text().splitlines():
            assert COLLAPSED_LINE.match(line), line
        assert "profile:" in capsys.readouterr().out


class TestServeProfileOptIn:
    def test_profile_query_attaches_report(self, tmp_path):
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            plain = client.analyze(example="pipeline")
            assert plain.profile is None
            profiled = client.analyze(example="pipeline", profile=True)
        finally:
            handle.stop()
        assert profiled.ok
        assert profiled.profile is not None
        assert profiled.profile["hz"] > 0
        assert isinstance(profiled.profile["collapsed"], str)
        assert isinstance(profiled.profile["hot"], list)
        # profiling must not change the job's content-addressed key
        assert profiled.key == plain.key
