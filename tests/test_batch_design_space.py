"""DesignSpace driver: enumeration, transforms, aggregation, CLI."""

import pytest

from repro import SPPScheduler, System, periodic
from repro._errors import ModelError
from repro.batch import (
    Axis,
    BatchRunner,
    DesignSpace,
    ResultStore,
    period_axis,
    priority_axis,
    wcet_axis,
)
from repro.batch.cli import batch_main
from repro.batch.spaces import (
    NAMED_SPACES,
    pipeline_system,
    quickstart_space,
)
from repro.system import system_from_dict, system_to_dict
from repro.viz import sweep_table


def base_system():
    s = System("base")
    s.add_source("stim", periodic(100.0))
    s.add_source("aux", periodic(400.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (4.0, 8.0), ["stim"], priority=1)
    s.add_task("b", "cpu", (10.0, 20.0), ["aux"], priority=2)
    return s


class TestAxes:
    def test_wcet_axis_scales_selected_tasks(self):
        d = system_to_dict(base_system())
        wcet_axis((2.0,), tasks=["a"]).apply(d, 2.0)
        assert d["tasks"]["a"]["c_max"] == 16.0
        assert d["tasks"]["b"]["c_max"] == 20.0
        system_from_dict(d)  # still a valid system

    def test_period_axis_scales_standard_sources(self):
        d = system_to_dict(base_system())
        period_axis((0.5,)).apply(d, 0.5)
        assert d["sources"]["stim"]["period"] == 50.0
        assert d["sources"]["aux"]["period"] == 200.0

    def test_priority_axis(self):
        d = system_to_dict(base_system())
        priority_axis("b", (7,)).apply(d, 7)
        assert d["tasks"]["b"]["priority"] == 7

    def test_axis_needs_values_or_bounds(self):
        with pytest.raises(ModelError):
            Axis("empty")
        with pytest.raises(ModelError):
            Axis("nothing", values=())

    def test_continuous_axis_cannot_grid(self):
        axis = Axis("load", bounds=(0.1, 0.9))
        with pytest.raises(ModelError):
            axis.grid_values()


class TestEnumeration:
    def space(self):
        return DesignSpace(
            "t", axes=[wcet_axis((0.5, 1.0, 1.5)),
                       period_axis((1.0, 2.0))],
            base=base_system())

    def test_grid_is_cartesian_product(self):
        points = list(self.space().grid())
        assert len(points) == 6
        assert self.space().grid_size() == 6
        assert {(p["wcet_scale"], p["period_scale"])
                for p in points} == {
            (w, p) for w in (0.5, 1.0, 1.5) for p in (1.0, 2.0)}

    def test_sample_deterministic_per_seed(self):
        space = DesignSpace(
            "t", axes=[Axis("load", bounds=(0.1, 0.9)),
                       Axis("wcet_scale", values=(0.5, 1.0, 1.5))],
            builder=lambda load, wcet_scale: pipeline_system(load=load))
        a = space.sample(10, seed=42)
        b = space.sample(10, seed=42)
        assert a == b
        c = space.sample(10, seed=7)
        assert a != c
        for p in a:
            assert 0.1 <= p["load"] <= 0.9
            assert p["wcet_scale"] in (0.5, 1.0, 1.5)

    def test_sample_collapses_duplicates(self):
        space = DesignSpace("t", axes=[wcet_axis((1.0, 2.0))],
                            base=base_system())
        points = space.sample(50, seed=0)
        assert len(points) == 2  # only two distinct levels exist

    def test_base_xor_builder_enforced(self):
        with pytest.raises(ModelError):
            DesignSpace("t", axes=[wcet_axis((1.0,))])
        with pytest.raises(ModelError):
            DesignSpace("t", axes=[wcet_axis((1.0,))],
                        base=base_system(),
                        builder=lambda **kw: base_system())


class TestJobsAndIdentity:
    def test_equal_points_give_equal_keys(self):
        space_a = DesignSpace("a", axes=[wcet_axis((1.5,))],
                              base=base_system())
        space_b = DesignSpace("b", axes=[wcet_axis((1.5,))],
                              base=base_system())
        job_a = space_a.job_for({"wcet_scale": 1.5})
        job_b = space_b.job_for({"wcet_scale": 1.5})
        assert job_a.key == job_b.key

    def test_different_points_give_different_keys(self):
        space = DesignSpace("a", axes=[wcet_axis((1.0, 1.5))],
                            base=base_system())
        assert space.job_for({"wcet_scale": 1.0}).key != \
            space.job_for({"wcet_scale": 1.5}).key

    def test_builder_mode(self):
        space = DesignSpace(
            "synthy", axes=[Axis("n_chains", values=(1, 2))],
            builder=lambda n_chains: pipeline_system(n_chains=n_chains))
        d1 = space.system_dict_for({"n_chains": 1})
        d2 = space.system_dict_for({"n_chains": 2})
        assert len(d1["tasks"]) == 2
        assert len(d2["tasks"]) == 4


class TestRunAndAggregate:
    def test_run_and_table(self, tmp_path):
        space = DesignSpace(
            "t", axes=[wcet_axis((0.5, 1.0)), period_axis((1.0, 1.5))],
            base=base_system())
        sweep = space.run(BatchRunner(store=ResultStore(tmp_path)))
        assert sweep.report.ok
        assert len(sweep.points) == 4
        table = sweep.table()
        assert "wcet_scale" in table
        assert "worst_wcrt" in table
        assert table.count("\n") >= 5  # header + rule + 4 rows

    def test_best_point(self, tmp_path):
        space = DesignSpace("t", axes=[wcet_axis((0.5, 1.0, 2.0))],
                            base=base_system())
        sweep = space.run(BatchRunner(store=ResultStore(tmp_path)))
        point, value = sweep.best("worst_wcrt")
        assert point["wcet_scale"] == 2.0
        low_point, low_value = sweep.best("worst_wcrt", minimize=True)
        assert low_point["wcet_scale"] == 0.5
        assert low_value < value

    def test_sweep_table_shape_mismatch(self):
        with pytest.raises(ValueError):
            sweep_table([{"a": 1}], [])


class TestPredefinedSpacesAndCli:
    def test_named_spaces_build(self):
        for name, factory in NAMED_SPACES.items():
            space = factory()
            assert space.grid_size() >= 4, name

    def test_quickstart_space_all_feasible(self, tmp_path):
        sweep = quickstart_space().run(
            BatchRunner(store=ResultStore(tmp_path)))
        assert sweep.report.ok
        assert all(o["converged"] for o in sweep.outcomes())

    def test_cli_smoke_and_resume(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        rc = batch_main(["quickstart", "--cache-dir", cache, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "16 jobs" in out
        assert "0 failed" in out

        rc = batch_main(["quickstart", "--cache-dir", cache, "--quiet",
                         "--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "16 cached" in out
        assert "100% cache hit rate" in out

    def test_cli_sample(self, tmp_path, capsys):
        rc = batch_main(["quickstart", "--quiet", "--sample", "5",
                         "--seed", "3",
                         "--cache-dir", str(tmp_path / "c2")])
        assert rc == 0
        assert "jobs" in capsys.readouterr().out
