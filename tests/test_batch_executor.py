"""Executor backends and the memoising batch runner."""

import multiprocessing

import pytest

from repro import SPPScheduler, System, obs, periodic
from repro._errors import ModelError
from repro.batch import (
    BatchRunner,
    Job,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    make_backend,
)
from repro.system import system_to_dict


def small_system(wcet=10.0, name="small"):
    s = System(name)
    s.add_source("stim", periodic(100.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (wcet / 2, wcet), ["stim"], priority=1)
    s.add_task("b", "cpu", (5.0, 8.0), ["a"], priority=2)
    return s


def analyze_jobs(n=4):
    return [Job("analyze",
                {"system": system_to_dict(small_system(wcet=6.0 + i))},
                label=f"wcet={6.0 + i}")
            for i in range(n)]


def fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("fork start method unavailable")


class TestBackends:
    def test_make_backend_selects(self):
        assert isinstance(make_backend(0), SerialBackend)
        assert isinstance(make_backend(3), ProcessPoolBackend)
        assert make_backend(3).workers == 3

    def test_pool_needs_workers(self):
        with pytest.raises(ModelError):
            ProcessPoolBackend(0)

    def test_serial_and_process_agree(self):
        jobs = analyze_jobs(3)
        serial_results = {}
        SerialBackend().run(jobs, lambda r: serial_results.update(
            {r.key: r}))
        pool_results = {}
        ProcessPoolBackend(2, mp_context=fork_ctx()).run(
            jobs, lambda r: pool_results.update({r.key: r}))
        assert set(serial_results) == set(pool_results)
        for key, serial in serial_results.items():
            pooled = pool_results[key]
            assert serial.ok and pooled.ok
            assert pooled.data["wcrt"] == pytest.approx(
                serial.data["wcrt"])


class TestRunnerMemoisation:
    def test_cold_then_warm(self, tmp_path):
        jobs = analyze_jobs(4)
        cold = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert cold.ok
        assert len(cold.executed) == 4
        assert cold.cache_hit_rate == 0.0

        warm = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert warm.ok
        assert len(warm.executed) == 0
        assert len(warm.cached) == 4
        assert warm.cache_hit_rate == 1.0
        for job in jobs:
            assert warm.result_for(job).data == \
                cold.result_for(job).data

    def test_duplicate_jobs_collapse(self, tmp_path):
        job = analyze_jobs(1)[0]
        report = BatchRunner(store=ResultStore(tmp_path)).run(
            [job, job, job])
        assert report.total == 1
        assert len(report.executed) == 1

    def test_runner_without_store(self):
        report = BatchRunner().run(analyze_jobs(2))
        assert report.ok
        assert len(report.executed) == 2

    def test_checkpoint_resume_after_partial_run(self, tmp_path):
        """Killing a sweep loses nothing that already finished."""
        jobs = analyze_jobs(5)

        class DiesAfterTwo(SerialBackend):
            def run(self, pending, on_result):
                for i, job in enumerate(pending):
                    if i == 2:
                        raise KeyboardInterrupt()
                    super().run([job], on_result)

        runner = BatchRunner(store=ResultStore(tmp_path),
                             backend=DiesAfterTwo())
        with pytest.raises(KeyboardInterrupt):
            runner.run(jobs)

        resumed = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert resumed.ok
        assert len(resumed.cached) == 2
        assert len(resumed.executed) == 3

    def test_obs_counters(self, tmp_path):
        jobs = analyze_jobs(3)
        obs.configure(enabled=True, reset=True)
        try:
            BatchRunner(store=ResultStore(tmp_path)).run(jobs)
            BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        finally:
            obs.configure(enabled=False)
        counters = obs.metrics().snapshot()["counters"]
        assert counters["batch.jobs.submitted"] == 3
        assert counters["batch.jobs.completed"] == 3
        assert counters["batch.cache.hits"] == 3
        assert counters["batch.cache.misses"] == 3
        hist = obs.metrics().snapshot()["histograms"][
            "batch.job_seconds"]
        assert hist["count"] == 3

    def test_progress_callback(self, tmp_path):
        seen = []
        BatchRunner(store=ResultStore(tmp_path)).run(
            analyze_jobs(2), progress=seen.append)
        assert len(seen) == 2
        assert all(r.ok for r in seen)


class TestWorkerObsMerging:
    """Worker-side metrics must reach the parent registry: pool workers
    serialise a delta into the job result, the runner replays it."""

    def test_two_worker_run_merges_worker_metrics(self, tmp_path):
        jobs = analyze_jobs(4)
        obs.configure(enabled=True, reset=True)
        try:
            backend = ProcessPoolBackend(2, mp_context=fork_ctx())
            report = BatchRunner(store=ResultStore(tmp_path),
                                 backend=backend).run(jobs)
        finally:
            obs.configure(enabled=False)
        assert report.ok
        snap = obs.metrics().snapshot()
        counters = snap["counters"]
        # parent-side batch accounting
        assert counters["batch.jobs.submitted"] == 4
        assert counters["batch.jobs.completed"] == 4
        # worker-side analysis counters, folded into the parent registry
        # (they were recorded in child processes whose registries died)
        assert counters["analysis.jobs.analyze"] == 4
        assert counters["propagation.iterations"] > 0
        assert counters["busy_window.fixed_point_calls"] > 0
        assert counters["batch.worker.spans"] > 0
        # worker histograms merge as raw samples
        assert snap["histograms"][
            "propagation.local_analysis_seconds"]["count"] > 0
        # every executed result carried its own delta
        for result in report.results.values():
            assert result.obs["metrics"]["counters"][
                "analysis.jobs.analyze"] == 1
            assert result.obs["spans"] > 0

    def test_serial_backend_does_not_double_count(self, tmp_path):
        """Serial jobs already write into the parent registry; merging
        their deltas back would double every counter."""
        jobs = analyze_jobs(2)
        obs.configure(enabled=True, reset=True)
        try:
            report = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        finally:
            obs.configure(enabled=False)
        counters = obs.metrics().snapshot()["counters"]
        assert counters["analysis.jobs.analyze"] == 2
        # the delta is still captured on the result (it is part of the
        # serialised format), it is just not merged twice
        for result in report.results.values():
            assert result.obs["metrics"]["counters"][
                "analysis.jobs.analyze"] == 1

    def test_obs_delta_survives_result_round_trip(self, tmp_path):
        from repro.batch import JobResult

        jobs = analyze_jobs(1)
        obs.configure(enabled=True, reset=True)
        try:
            report = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        finally:
            obs.configure(enabled=False)
        result = report.result_for(jobs[0])
        clone = JobResult.from_dict(result.to_dict())
        assert clone.obs == result.obs
        assert clone.obs["metrics"]["counters"]

    def test_disabled_run_attaches_no_obs(self, tmp_path):
        obs.configure(enabled=False, reset=True)
        jobs = analyze_jobs(1)
        report = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert report.result_for(jobs[0]).obs == {}
