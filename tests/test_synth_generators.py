"""Tests for the synthetic generators and offset-trace properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import ModelError
from repro.core import TransferProperty
from repro.eventmodels import offset_join, trace_within_bounds
from repro.examples_lib.synth import (
    synth_com_layer,
    synth_sources,
    synth_system,
)
from repro.sim import periodic_arrivals
from repro.system import analyze_system


class TestSynthSources:
    def test_count_and_naming(self):
        sources = synth_sources(6)
        assert list(sources) == [f"S{i}" for i in range(1, 7)]

    def test_periods_spread(self):
        sources = synth_sources(8, base_period=100.0, spread=4.0)
        periods = [m.period for m, _ in sources.values()]
        assert min(periods) >= 100.0
        assert max(periods) <= 4.0 * 100.0 * 1.1 + 1e-9

    def test_pending_cadence(self):
        sources = synth_sources(8, pending_every=4)
        pending = [n for n, (_, p) in sources.items()
                   if p is TransferProperty.PENDING]
        assert pending == ["S4", "S8"]

    def test_deterministic_by_seed(self):
        a = synth_sources(5, seed=9)
        b = synth_sources(5, seed=9)
        assert all(a[k][0].period == b[k][0].period for k in a)

    def test_validation(self):
        with pytest.raises(ModelError):
            synth_sources(0)


class TestSynthComLayer:
    def test_round_robin_distribution(self):
        sources = synth_sources(6)
        layer = synth_com_layer(sources, frames=2)
        sizes = [len(f.signals) for f in layer.frames.values()]
        assert sizes == [3, 3]

    def test_too_many_signals_per_frame(self):
        sources = synth_sources(9)
        with pytest.raises(ModelError):
            synth_com_layer(sources, frames=1)

    def test_validation(self):
        with pytest.raises(ModelError):
            synth_com_layer(synth_sources(4), frames=0)


class TestSynthSystem:
    def test_analysable_both_variants(self):
        for variant in ("hem", "flat"):
            result = analyze_system(synth_system(4, 1, variant))
            assert result.converged

    def test_bad_variant(self):
        with pytest.raises(ModelError):
            synth_system(4, 1, "quantum")


class TestOffsetTraces:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=200.0, max_value=2000.0),
           st.lists(st.floats(min_value=0.0, max_value=1999.0),
                    min_size=1, max_size=4))
    def test_merged_offset_traces_within_offset_join(self, period,
                                                     offsets):
        # The union of per-offset strictly periodic traces is exactly
        # the sequence the offset_join models — it must lie inside.
        merged = []
        for off in offsets:
            merged.extend(periodic_arrivals(period, 6 * period,
                                            phase=off % period))
        merged.sort()
        model = offset_join(period, offsets)
        assert trace_within_bounds(merged, model, check_plus=False)


class TestSynthSystemExtremes:
    """Parameter extremes the soak campaigns draw from must all build
    and analyse."""

    def test_single_signal(self):
        for variant in ("hem", "flat"):
            system = synth_system(1, 1, variant, seed=5)
            result = analyze_system(system)
            assert result.converged

    def test_zero_jitter(self):
        system = synth_system(4, 2, "hem", seed=3, jitter_frac=0.0)
        for src in system.sources.values():
            assert src.model.delta_min(2) == src.model.period
        assert analyze_system(system).converged

    def test_jittered_sources(self):
        system = synth_system(4, 2, "hem", seed=3, jitter_frac=0.4)
        jittery = [src for src in system.sources.values()
                   if src.model.delta_min(2) < src.model.period]
        assert jittery, "jitter_frac=0.4 produced no jittered source"
        assert analyze_system(system).converged

    def test_maximal_nesting_depth(self):
        system = synth_system(3, 2, "hem", seed=2, nesting=2)
        assert analyze_system(system).converged

    def test_nesting_deterministic(self):
        from repro.system.serialize import system_to_dict
        a = synth_system(3, 2, "hem", seed=9, nesting=1)
        b = synth_system(3, 2, "hem", seed=9, nesting=1)
        assert system_to_dict(a) == system_to_dict(b)

    def test_nested_model_depth_zero_is_periodic(self):
        from repro.examples_lib.synth import synth_nested_model
        model = synth_nested_model(0, period=50.0)
        assert model.delta_min(3) == 100.0

    def test_nested_model_negative_depth_rejected(self):
        from repro.examples_lib.synth import synth_nested_model
        with pytest.raises(ModelError):
            synth_nested_model(-1)


class TestSynthTaskGraph:
    def test_deterministic_and_valid(self):
        from repro.examples_lib.synth import GraphSpace, synth_task_graph
        from repro.system.serialize import system_to_dict
        a = synth_task_graph(11)
        b = synth_task_graph(11)
        assert system_to_dict(a) == system_to_dict(b)
        assert a.tasks and a.sources

    def test_space_round_trip(self):
        from repro.examples_lib.synth import GraphSpace
        space = GraphSpace(max_resources=4,
                           policies=("spp", "edf"))
        again = GraphSpace.from_dict(space.to_dict())
        assert again == space

    def test_all_policies_analyse(self):
        from repro.examples_lib.synth import GraphSpace, synth_task_graph
        space = GraphSpace(policies=("spp", "spnp", "edf",
                                     "round_robin", "tdma"))
        for seed in range(6):
            result = analyze_system(synth_task_graph(seed, space))
            assert result.converged, f"seed {seed} did not converge"
