"""Unit tests for standard event models (P, J, d_min)."""

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.eventmodels import (
    StandardEventModel,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
)
from repro.timebase import INF


class TestConstruction:
    def test_periodic_defaults(self):
        m = periodic(100.0)
        assert m.period == 100.0
        assert m.jitter == 0.0
        assert m.d_min == 100.0

    def test_jitter_shrinks_default_dmin(self):
        m = periodic_with_jitter(100.0, 30.0)
        assert m.d_min == 70.0

    def test_jitter_beyond_period_zero_dmin(self):
        m = StandardEventModel(100.0, 150.0)
        assert m.d_min == 0.0

    def test_negative_period_rejected(self):
        with pytest.raises(ModelError):
            StandardEventModel(-1.0)

    def test_zero_period_rejected(self):
        with pytest.raises(ModelError):
            StandardEventModel(0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ModelError):
            StandardEventModel(100.0, -1.0)

    def test_negative_dmin_rejected(self):
        with pytest.raises(ModelError):
            StandardEventModel(100.0, 0.0, -5.0)

    def test_dmin_above_period_rejected(self):
        with pytest.raises(ModelError):
            StandardEventModel(100.0, 0.0, 150.0)

    def test_frozen(self):
        m = periodic(100.0)
        with pytest.raises(Exception):
            m.period = 50.0


class TestDeltaClosedForms:
    def test_periodic_delta_min(self):
        m = periodic(100.0)
        assert m.delta_min(2) == 100.0
        assert m.delta_min(5) == 400.0

    def test_periodic_delta_plus(self):
        m = periodic(100.0)
        assert m.delta_plus(2) == 100.0
        assert m.delta_plus(5) == 400.0

    def test_jitter_delta_min(self):
        m = periodic_with_jitter(100.0, 30.0)
        assert m.delta_min(2) == 70.0
        assert m.delta_min(3) == 170.0

    def test_jitter_delta_plus(self):
        m = periodic_with_jitter(100.0, 30.0)
        assert m.delta_plus(2) == 130.0
        assert m.delta_plus(3) == 230.0

    def test_burst_dmin_kicks_in(self):
        # P=100, J=250, d=10: for small n the d_min term dominates.
        m = periodic_with_burst(100.0, 250.0, 10.0)
        assert m.delta_min(2) == 10.0
        assert m.delta_min(3) == 20.0
        # (n-1)P - J overtakes at n-1 > 250/90
        assert m.delta_min(5) == max(4 * 100 - 250, 4 * 10) == 150.0

    def test_small_n_zero(self):
        m = periodic_with_jitter(100.0, 30.0)
        assert m.delta_min(0) == 0.0
        assert m.delta_min(1) == 0.0
        assert m.delta_plus(0) == 0.0
        assert m.delta_plus(1) == 0.0

    def test_negative_n_rejected(self):
        with pytest.raises(ModelError):
            periodic(100.0).delta_min(-1)

    def test_consistency_all_variants(self):
        for m in (periodic(100.0), periodic_with_jitter(100.0, 70.0),
                  periodic_with_burst(100.0, 500.0, 5.0),
                  sporadic(100.0, 20.0)):
            assert_delta_consistent(m)


class TestSporadic:
    def test_delta_plus_unbounded(self):
        m = sporadic(100.0)
        assert m.delta_plus(2) == INF

    def test_delta_min_like_periodic(self):
        assert sporadic(100.0).delta_min(4) == periodic(100.0).delta_min(4)

    def test_eta_min_zero(self):
        assert sporadic(100.0).eta_min(1e9) == 0

    def test_eta_plus_unchanged(self):
        assert sporadic(100.0).eta_plus(250.0) == \
            periodic(100.0).eta_plus(250.0)


class TestEtaClosedFormsAgainstGeneric:
    """The closed forms must agree with the generic pseudo-inverse on a
    dense grid for several parameter combinations."""

    @pytest.mark.parametrize("p,j,d", [
        (100.0, 0.0, None),
        (100.0, 30.0, None),
        (100.0, 99.0, None),
        (100.0, 250.0, 10.0),
        (100.0, 250.0, 0.0),
        (7.0, 3.5, None),
    ])
    def test_eta_plus_grid(self, p, j, d):
        from repro.eventmodels import FunctionEventModel
        sem = StandardEventModel(p, j, d)
        generic = FunctionEventModel(sem.delta_min, sem.delta_plus)
        dt = 0.0
        while dt < 12 * p:
            assert sem.eta_plus(dt) == generic.eta_plus(dt), dt
            dt += p / 7.3

    @pytest.mark.parametrize("p,j", [(100.0, 0.0), (100.0, 30.0),
                                     (50.0, 49.0)])
    def test_eta_min_grid(self, p, j):
        from repro.eventmodels import FunctionEventModel
        sem = StandardEventModel(p, j)
        generic = FunctionEventModel(sem.delta_min, sem.delta_plus)
        dt = 0.0
        while dt < 12 * p:
            assert sem.eta_min(dt) == generic.eta_min(dt), dt
            dt += p / 5.1


class TestWithJitter:
    def test_increase_jitter(self):
        m = periodic(100.0).with_jitter(40.0)
        assert m.jitter == 40.0
        assert m.d_min == 60.0

    def test_burst_keeps_dmin(self):
        m = periodic_with_burst(100.0, 300.0, 7.0).with_jitter(400.0)
        assert m.d_min == 7.0

    def test_sporadic_preserved(self):
        m = sporadic(100.0).with_jitter(10.0)
        assert m.delta_plus(2) == INF


class TestBoundSemantics:
    def test_eta_plus_one_for_any_positive_window(self):
        # One event can always land inside an arbitrarily small window.
        m = periodic(1000.0)
        assert m.eta_plus(1e-9) == 1

    def test_burst_window(self):
        # Burst of 3 events possible with d_min 0.
        m = periodic_with_burst(100.0, 250.0, 0.0)
        assert m.eta_plus(1e-9) == 3

    def test_load_independent_of_jitter(self):
        base = periodic(100.0).load(2000)
        jittered = periodic_with_jitter(100.0, 95.0).load(2000)
        assert jittered == pytest.approx(base, rel=0.05)
