"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.eventmodels import (
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
)


@pytest.fixture
def p100():
    """Strictly periodic stream, P = 100."""
    return periodic(100.0, "p100")


@pytest.fixture
def p250():
    return periodic(250.0, "p250")


@pytest.fixture
def pj100_30():
    """Periodic with jitter: P = 100, J = 30."""
    return periodic_with_jitter(100.0, 30.0, "pj")


@pytest.fixture
def burst100():
    """Bursty stream: P = 100, J = 250, d_min = 10 (bursts of ~3)."""
    return periodic_with_burst(100.0, 250.0, 10.0, "burst")


@pytest.fixture
def spor500():
    """Sporadic stream with minimum inter-arrival 500."""
    return sporadic(500.0, name="spor")


def assert_delta_consistent(model, n_max: int = 32):
    """Structural invariants every δ pair must satisfy."""
    assert model.delta_min(0) == 0.0
    assert model.delta_min(1) == 0.0
    assert model.delta_plus(0) == 0.0
    assert model.delta_plus(1) == 0.0
    prev_min = 0.0
    prev_plus = 0.0
    for n in range(2, n_max + 1):
        dmin = model.delta_min(n)
        dplus = model.delta_plus(n)
        assert dmin >= prev_min - 1e-9, f"delta_min not monotone at n={n}"
        assert dplus >= prev_plus - 1e-9, f"delta_plus not monotone at n={n}"
        assert dmin <= dplus + 1e-9, f"delta_min > delta_plus at n={n}"
        prev_min, prev_plus = dmin, dplus
