"""Unit tests for the COM-layer simulator and full gateway runs."""

import pytest

from repro._errors import ModelError
from repro.can import CanBusTiming
from repro.com import ComLayer, Frame, FrameType, Signal
from repro.core import TransferProperty
from repro.eventmodels import periodic, trace_within_bounds
from repro.sim import (
    CanBusSim,
    ComLayerSim,
    EventTrace,
    GatewayScenario,
    Simulator,
    arrivals_for_models,
    simulate_gateway,
)

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def build_sim_stack(frames):
    layer = ComLayer()
    for f in frames:
        layer.add_frame(f)
    sim = Simulator()
    trace = EventTrace()
    bus = CanBusSim(sim)
    tx = {f.name: 10.0 for f in frames}
    com = ComLayerSim(sim, layer, bus, tx, trace=trace)
    return sim, trace, com


class TestComLayerSim:
    def test_triggering_signal_requests_frame(self):
        frame = Frame("F", FrameType.DIRECT, [Signal("a", 8, TRIG)],
                      can_id=1)
        sim, trace, com = build_sim_stack([frame])
        sim.schedule(5.0, lambda: com.write_signal("a"))
        sim.run_until(100.0)
        assert trace.events("tx.F") == [5.0]
        assert trace.events("wire.F") == [15.0]
        assert trace.events("rx.a") == [15.0]

    def test_pending_signal_waits_for_timer(self):
        frame = Frame("F", FrameType.PERIODIC, [Signal("a", 8, TRIG)],
                      period=50.0, can_id=1)
        sim, trace, com = build_sim_stack([frame])
        sim.schedule(5.0, lambda: com.write_signal("a"))
        sim.run_until(120.0)
        # Effectively pending in a periodic frame: no transmission at 5;
        # the timer fires at 50 and delivers at 60.
        assert trace.events("tx.F") == [50.0, 100.0]
        assert trace.events("rx.a") == [60.0]

    def test_overwrite_collapses_writes(self):
        frame = Frame("F", FrameType.PERIODIC, [Signal("a", 8, PEND)],
                      period=100.0, can_id=1)
        sim, trace, com = build_sim_stack([frame])
        for t in (10.0, 20.0, 30.0):
            sim.schedule(t, lambda: com.write_signal("a"))
        sim.run_until(150.0)
        # Three writes before the first transmission: one fresh delivery.
        assert trace.events("rx.a") == [110.0]

    def test_pending_rides_with_trigger(self):
        frame = Frame("F", FrameType.DIRECT,
                      [Signal("t", 8, TRIG), Signal("p", 8, PEND)],
                      can_id=1)
        sim, trace, com = build_sim_stack([frame])
        sim.schedule(5.0, lambda: com.write_signal("p"))
        sim.schedule(20.0, lambda: com.write_signal("t"))
        sim.run_until(100.0)
        # p waits (no transmission at 5), rides the frame t triggers.
        assert trace.events("tx.F") == [20.0]
        assert trace.events("rx.p") == [30.0]
        assert trace.events("rx.t") == [30.0]

    def test_stale_frame_delivers_nothing(self):
        frame = Frame("F", FrameType.MIXED, [Signal("t", 8, TRIG)],
                      period=40.0, can_id=1)
        sim, trace, com = build_sim_stack([frame])
        sim.schedule(5.0, lambda: com.write_signal("t"))
        sim.run_until(100.0)
        # Timer frames at 40 and 80 carry no new value of t.
        assert trace.events("wire.F") == [15.0, 50.0, 90.0]
        assert trace.events("rx.t") == [5.0 + 10.0]

    def test_delivery_callback(self):
        frame = Frame("F", FrameType.DIRECT, [Signal("a", 8, TRIG)],
                      can_id=1)
        sim, trace, com = build_sim_stack([frame])
        seen = []
        com.on_delivery("a", lambda sig, t: seen.append((sig, t)))
        sim.schedule(0.0, lambda: com.write_signal("a"))
        sim.run_until(100.0)
        assert seen == [("a", 10.0)]

    def test_unknown_signal_rejected(self):
        frame = Frame("F", FrameType.DIRECT, [Signal("a", 8, TRIG)],
                      can_id=1)
        _, _, com = build_sim_stack([frame])
        with pytest.raises(ModelError):
            com.write_signal("zzz")
        with pytest.raises(ModelError):
            com.on_delivery("zzz", lambda s, t: None)

    def test_missing_tx_time_rejected(self):
        layer = ComLayer()
        layer.add_frame(Frame("F", FrameType.DIRECT,
                              [Signal("a", 8, TRIG)], can_id=1))
        sim = Simulator()
        bus = CanBusSim(sim)
        with pytest.raises(ModelError):
            ComLayerSim(sim, layer, bus, tx_times={})


class TestGatewayScenario:
    def _scenario(self, mode="periodic"):
        layer = ComLayer()
        layer.add_frame(Frame(
            "F", FrameType.MIXED,
            [Signal("fast", 8, TRIG), Signal("slow", 8, PEND)],
            period=400.0, can_id=1))
        models = {"fast": periodic(100.0, "fast"),
                  "slow": periodic(300.0, "slow")}
        return GatewayScenario(
            layer=layer,
            bus_timing=CanBusTiming(0.5),
            signal_arrivals=arrivals_for_models(models, 5000.0, mode=mode),
            cpu_tasks={"consumer": (1, 5.0, "fast")},
        )

    def test_run_produces_traffic(self):
        run = simulate_gateway(self._scenario(), 5000.0)
        assert run.responses.count("F") > 10
        assert run.responses.count("consumer") > 10
        assert len(run.delivered("fast")) > 10

    def test_deliveries_monotone(self):
        run = simulate_gateway(self._scenario(), 5000.0)
        d = run.delivered("fast")
        assert d == sorted(d)

    def test_pending_delivered_despite_no_trigger(self):
        run = simulate_gateway(self._scenario(), 5000.0)
        assert len(run.delivered("slow")) > 5

    def test_worst_mode_denser_than_periodic(self):
        worst = simulate_gateway(self._scenario(mode="worst"), 5000.0)
        per = simulate_gateway(self._scenario(mode="periodic"), 5000.0)
        assert worst.responses.worst_case("consumer") >= \
            per.responses.worst_case("consumer") - 1e-9

    def test_delivered_streams_within_hem_bounds(self):
        # The unpacked inner models must bound the simulated deliveries.
        from repro.core import BusyWindowOutput, apply_operation
        scenario = self._scenario(mode="worst")
        run = simulate_gateway(scenario, 20_000.0)
        hem = scenario.layer.build_frame_hem(
            "F", {"fast": periodic(100.0), "slow": periodic(300.0)})
        # Bus response interval from the simulated wire time (single
        # frame, idle bus): [tx, tx].
        tx = scenario.bus_timing.transmission_time_max(2)
        out = apply_operation(hem, BusyWindowOutput(tx, tx))
        for label in ("fast", "slow"):
            assert trace_within_bounds(run.delivered(label),
                                       out.inner(label)), label

    def test_bad_mode_rejected(self):
        models = {"x": periodic(10.0)}
        with pytest.raises(ModelError):
            arrivals_for_models(models, 100.0, mode="chaotic")
