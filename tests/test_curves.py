"""Unit tests for curve event models and the caching/freezing helpers."""

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.eventmodels import (
    CachedModel,
    CurveEventModel,
    FunctionEventModel,
    freeze,
    periodic,
    periodic_with_jitter,
)
from repro.timebase import INF


def make_curve(n_period=None, t_period=None):
    # delta prefix of a periodic-100 stream sampled to n = 5
    dmin = [0.0, 0.0, 100.0, 200.0, 300.0, 400.0]
    dplus = [0.0, 0.0, 100.0, 200.0, 300.0, 400.0]
    return CurveEventModel(dmin, dplus, n_period=n_period,
                           t_period=t_period)


class TestValidation:
    def test_minimum_prefix_length(self):
        with pytest.raises(ModelError):
            CurveEventModel([0.0, 0.0], [0.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            CurveEventModel([0.0, 0.0, 1.0], [0.0, 0.0, 1.0, 2.0])

    def test_nonzero_head_rejected(self):
        with pytest.raises(ModelError):
            CurveEventModel([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])

    def test_decreasing_dmin_rejected(self):
        with pytest.raises(ModelError):
            CurveEventModel([0.0, 0.0, 5.0, 4.0], [0.0, 0.0, 5.0, 6.0])

    def test_dmin_above_dplus_rejected(self):
        with pytest.raises(ModelError):
            CurveEventModel([0.0, 0.0, 10.0], [0.0, 0.0, 5.0])

    def test_periodic_extension_needs_both(self):
        with pytest.raises(ModelError):
            make_curve(n_period=2, t_period=None)

    def test_periodic_extension_bad_period(self):
        with pytest.raises(ModelError):
            make_curve(n_period=0, t_period=100.0)

    def test_periodic_extension_too_long(self):
        # n_period may not exceed prefix_length - 1
        with pytest.raises(ModelError):
            make_curve(n_period=5, t_period=100.0)


class TestPrefixEvaluation:
    def test_within_prefix(self):
        c = make_curve()
        assert c.delta_min(3) == 200.0
        assert c.delta_plus(5) == 400.0

    def test_small_n(self):
        c = make_curve()
        assert c.delta_min(0) == 0.0
        assert c.delta_min(1) == 0.0

    def test_prefix_length(self):
        assert make_curve().prefix_length == 5


class TestAdditiveExtension:
    def test_exact_multiple(self):
        c = make_curve()
        # n = 9: q=2 blocks of (N-1)=4 events... n-1 = 8 = 2*4, so
        # q=1, r=5: 1*delta(5) + delta(5) = 800
        assert c.delta_min(9) == 800.0

    def test_one_past_prefix(self):
        c = make_curve()
        # n=6: n-1=5 = 1*4 + 1 -> r=2: delta(5) + delta(2) = 500
        assert c.delta_min(6) == 500.0

    def test_conservative_for_true_periodic(self):
        # Extension of a periodic prefix never exceeds the true curve
        # (lower bound) for delta_min, never undercuts for delta_plus.
        c = make_curve()
        true = periodic(100.0)
        for n in range(2, 40):
            assert c.delta_min(n) <= true.delta_min(n) + 1e-9
            assert c.delta_plus(n) >= true.delta_plus(n) - 1e-9

    def test_monotone_after_extension(self):
        assert_delta_consistent(make_curve(), n_max=50)

    def test_inf_top_propagates(self):
        c = CurveEventModel([0, 0, 10.0, INF], [0, 0, 20.0, INF])
        assert c.delta_min(10) == INF


class TestPeriodicExtension:
    def test_exact_for_periodic(self):
        c = make_curve(n_period=1, t_period=100.0)
        true = periodic(100.0)
        for n in range(2, 50):
            assert c.delta_min(n) == pytest.approx(true.delta_min(n))
            assert c.delta_plus(n) == pytest.approx(true.delta_plus(n))

    def test_multi_event_period(self):
        # A stream repeating 2 events every 300: delta(2)=50 within the
        # pair, delta(3)=300 to the next pair start.
        dmin = [0.0, 0.0, 50.0, 300.0, 350.0]
        dplus = [0.0, 0.0, 250.0, 300.0, 550.0]
        c = CurveEventModel(dmin, dplus, n_period=2, t_period=300.0)
        # Pairs at t = 0/50, 300/350, 600/650, ...: five consecutive
        # events span 600 (0..600), six span 650 (0..650).
        assert c.delta_min(5) == 600.0
        assert c.delta_min(6) == 650.0


class TestCachedModel:
    def test_transparent(self):
        inner = periodic_with_jitter(100.0, 25.0)
        cached = CachedModel(inner)
        for n in range(0, 20):
            assert cached.delta_min(n) == inner.delta_min(n)
            assert cached.delta_plus(n) == inner.delta_plus(n)

    def test_caches_evaluations(self):
        calls = []

        def dmin(n):
            calls.append(n)
            return (n - 1) * 10.0

        m = CachedModel(FunctionEventModel(dmin, lambda n: (n - 1) * 10.0))
        m.delta_min(5)
        m.delta_min(5)
        m.delta_min(5)
        assert calls.count(5) == 1

    def test_wrapped_accessor(self):
        inner = periodic(10.0)
        assert CachedModel(inner).wrapped is inner


class TestFreeze:
    def test_freeze_matches_within_range(self):
        m = periodic_with_jitter(100.0, 40.0)
        f = freeze(m, n_max=32)
        for n in range(0, 33):
            assert f.delta_min(n) == pytest.approx(m.delta_min(n))
            assert f.delta_plus(n) == pytest.approx(m.delta_plus(n))

    def test_freeze_conservative_beyond_range(self):
        m = periodic_with_jitter(100.0, 40.0)
        f = freeze(m, n_max=16)
        for n in range(17, 64):
            assert f.delta_min(n) <= m.delta_min(n) + 1e-9
            assert f.delta_plus(n) >= m.delta_plus(n) - 1e-9

    def test_freeze_name(self):
        assert "frozen" in freeze(periodic(10.0), 8).name
