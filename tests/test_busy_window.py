"""Unit tests for the shared busy-window machinery."""

import pytest

from repro._errors import NotSchedulableError
from repro.analysis.busy_window import (
    MAX_ACTIVATIONS,
    fixed_point,
    multi_activation_loop,
)
from repro.eventmodels import periodic, periodic_with_jitter


class TestFixedPoint:
    def test_constant_function(self):
        assert fixed_point(lambda w: 42.0, 1.0) == 42.0

    def test_classic_rta_workload(self):
        # C=2 plus one interferer C=3 every 10: w = 2 + ceil-ish...
        em = periodic(10.0)

        def workload(w):
            return 2.0 + em.eta_plus(w) * 3.0

        assert fixed_point(workload, 2.0) == 5.0

    def test_divergence_detected(self):
        with pytest.raises(NotSchedulableError):
            fixed_point(lambda w: w + 1.0, 0.0, limit=1e6)

    def test_non_monotone_rejected(self):
        values = iter([10.0, 5.0])
        with pytest.raises(NotSchedulableError):
            fixed_point(lambda w: next(values), 0.0)

    def test_start_already_fixed(self):
        assert fixed_point(lambda w: max(w, 7.0), 7.0) == 7.0


class TestMultiActivationLoop:
    def test_single_activation_window(self):
        em = periodic(100.0)
        r_max, busy, q = multi_activation_loop(em, lambda q: 10.0 * q)
        assert r_max == 10.0
        assert q == 1
        assert busy == [10.0]

    def test_window_extends_under_jitter(self):
        # delta_min(2) = 0 with J >= P: second activation arrives
        # immediately, keeping the window open.
        em = periodic_with_jitter(100.0, 100.0)
        r_max, busy, q = multi_activation_loop(em, lambda q: 30.0 * q)
        # q=1: B=30 > delta(2)=0 -> continue; q=2: B=60 < delta(3)=100
        # -> close.  Worst response: max(30 - 0, 60 - 0) = 60.
        assert q == 2
        assert r_max == 60.0

    def test_response_subtracts_arrival(self):
        em = periodic(50.0)
        # busy time grows slower than arrivals -> only q=1 examined
        r_max, _, q = multi_activation_loop(em, lambda q: 40.0 * q)
        assert q == 1
        assert r_max == 40.0

    def test_custom_close_predicate(self):
        em = periodic(10.0)
        r_max, busy, q = multi_activation_loop(
            em, lambda q: 5.0 * q, window_closes=lambda q, b: q >= 3)
        assert q == 3
        assert len(busy) == 3

    def test_runaway_window_raises(self):
        em = periodic_with_jitter(1.0, 1.0)
        with pytest.raises(NotSchedulableError):
            # busy time always exceeds the next arrival -> never closes
            multi_activation_loop(em, lambda q: 10.0 * q)
