"""Keep docs/usage.md honest: its recipes must run as written."""

import pytest

from repro import (
    SPPScheduler,
    System,
    TaskSpec,
    analyze_system,
    apply_operation,
    backlog_bound,
    hsc_pack,
    max_wcet_scaling,
    path_latency,
    periodic,
    periodic_with_jitter,
    task_wcet_slack,
    unpack,
    unpack_polled,
)
from repro.core import BusyWindowOutput, TransferProperty


def test_stream_recipe():
    em = periodic_with_jitter(100.0, 30.0)
    assert em.delta_min(5) == 370.0
    assert em.eta_plus(250.0) == 3
    assert em.load() == pytest.approx(0.01)
    assert em.simultaneity() == 1


def test_processor_recipe():
    tasks = [
        TaskSpec("ctrl", 2.0, 2.0, periodic(10.0), priority=1),
        TaskSpec("ui", 3.0, 3.0, periodic(30.0), priority=2,
                 blocking=0.5),
    ]
    result = SPPScheduler().analyze(tasks, "cpu0")
    assert result["ui"].r_max == 5.5


def test_pipeline_recipe():
    frame = hsc_pack(
        {"spd": (periodic(250.0), TransferProperty.TRIGGERING),
         "diag": (periodic(1000.0), TransferProperty.PENDING)},
        timer=periodic(1000.0), name="F1")
    after_bus = apply_operation(frame, BusyWindowOutput(40.0, 120.0))
    signals = unpack(after_bus)
    assert set(signals) == {"spd", "diag"}
    polled = unpack_polled(after_bus, "diag", 500.0)
    assert polled.delta_min(2) >= 500.0


def test_system_recipe():
    from repro.can import CanBus
    from repro.com import ComLayer, Frame, FrameType, Signal

    system = System("demo")
    system.add_source("spd", periodic(250.0))
    bus = CanBus.from_bitrate("CAN", 2.0)
    bus.install(system)
    system.add_resource("ECU", SPPScheduler())

    com = ComLayer()
    com.add_frame(Frame("F1", FrameType.DIRECT,
                        [Signal("spd", 16,
                                TransferProperty.TRIGGERING)],
                        can_id=1))
    ports = com.install(system, "CAN", bus.timing, {"spd": "spd"})
    system.add_task("consumer", "ECU", (5.0, 5.0), [ports["spd"]],
                    priority=1)
    result = analyze_system(system)
    assert result.wcrt("consumer") == 5.0
    assert "consumer on ECU" in system.describe()

    lat = path_latency(system, result,
                       ["spd", "F1_pack", "F1", "F1_rx", "consumer"])
    assert lat.worst_case > lat.best_case > 0

    # sensitivity recipes
    tasks = [
        TaskSpec("ctrl", 2.0, 2.0, periodic(10.0), priority=1),
        TaskSpec("ui", 3.0, 3.0, periodic(30.0), priority=2),
    ]
    deadlines = {"ctrl": 10.0, "ui": 30.0}
    assert max_wcet_scaling(SPPScheduler(), tasks, deadlines) > 1.0
    assert task_wcet_slack(SPPScheduler(), tasks, "ui", deadlines) > 0
    r = SPPScheduler().analyze(tasks, "cpu")
    assert backlog_bound(r["ui"], tasks[1].event_model) >= 1
