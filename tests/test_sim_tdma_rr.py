"""Unit tests for the TDMA and round-robin simulators, including
conservatism against their respective analyses."""

import pytest

from repro._errors import ModelError
from repro.analysis import RoundRobinScheduler, TaskSpec, TDMAScheduler
from repro.eventmodels import periodic
from repro.sim import (
    ResponseRecorder,
    RoundRobinSim,
    Simulator,
    TdmaSim,
    worst_case_arrivals,
)


def make_tdma(slots):
    sim = Simulator()
    rec = ResponseRecorder()
    return sim, rec, TdmaSim(sim, rec, slots)


class TestTdmaSim:
    def test_job_in_own_slot_runs_immediately(self):
        sim, rec, tdma = make_tdma([("a", 5.0), ("b", 5.0)])
        tdma.add_task("a", 2.0)
        sim.schedule(0.0, lambda: tdma.activate("a"))
        sim.run_until(100.0)
        assert rec.jobs("a") == [(0.0, 2.0)]

    def test_job_waits_for_slot(self):
        sim, rec, tdma = make_tdma([("a", 5.0), ("b", 5.0)])
        tdma.add_task("b", 2.0)
        sim.schedule(1.0, lambda: tdma.activate("b"))
        sim.run_until(100.0)
        # b's slot starts at 5.
        assert rec.jobs("b") == [(1.0, 7.0)]

    def test_job_spans_slots(self):
        sim, rec, tdma = make_tdma([("a", 5.0), ("b", 5.0)])
        tdma.add_task("a", 8.0)
        sim.schedule(0.0, lambda: tdma.activate("a"))
        sim.run_until(100.0)
        # 5 units in [0,5), pause during b's slot, 3 more in [10,13).
        assert rec.jobs("a") == [(0.0, 13.0)]

    def test_mid_slot_arrival_served(self):
        sim, rec, tdma = make_tdma([("a", 5.0), ("b", 5.0)])
        tdma.add_task("a", 1.0)
        sim.schedule(2.0, lambda: tdma.activate("a"))
        sim.run_until(100.0)
        assert rec.jobs("a") == [(2.0, 3.0)]

    def test_completion_at_slot_boundary(self):
        sim, rec, tdma = make_tdma([("a", 5.0), ("b", 5.0)])
        tdma.add_task("a", 5.0)
        sim.schedule(0.0, lambda: tdma.activate("a"))
        sim.run_until(100.0)
        assert rec.jobs("a") == [(0.0, 5.0)]

    def test_fifo_within_owner(self):
        sim, rec, tdma = make_tdma([("a", 4.0), ("b", 6.0)])
        tdma.add_task("a", 3.0)
        sim.schedule(0.0, lambda: tdma.activate("a"))
        sim.schedule(0.0, lambda: tdma.activate("a"))
        sim.run_until(100.0)
        # First job: [0,3). Second: 1 unit in [3,4), 2 units in [10,12).
        assert rec.jobs("a") == [(0.0, 3.0), (0.0, 12.0)]

    def test_validation_errors(self):
        sim = Simulator()
        rec = ResponseRecorder()
        with pytest.raises(ModelError):
            TdmaSim(sim, rec, [])
        with pytest.raises(ModelError):
            TdmaSim(sim, rec, [("a", 0.0)])
        _, _, tdma = make_tdma([("a", 1.0)])
        with pytest.raises(ModelError):
            tdma.add_task("ghost", 1.0)
        with pytest.raises(ModelError):
            tdma.activate("a")  # exec time not declared

    def test_conservative_vs_analysis(self):
        # Worst-case stimuli; observed WCRT <= analysed bound.
        specs = [
            TaskSpec("a", 2.0, 2.0, periodic(20.0), slot=3.0),
            TaskSpec("b", 4.0, 4.0, periodic(30.0), slot=5.0),
        ]
        analysis = TDMAScheduler().analyze(specs, "bus")
        sim, rec, tdma = make_tdma([("a", 3.0), ("b", 5.0)])
        for spec in specs:
            tdma.add_task(spec.name, spec.c_max)
            # Phase the arrivals right after the own slot (the analysis
            # critical instant): a's slot is [0,3), b's is [3,8).
            phase = 3.0 if spec.name == "a" else 8.0
            for t in worst_case_arrivals(spec.event_model, 3000.0,
                                         phase=phase):
                sim.schedule(t, lambda _n=spec.name: tdma.activate(_n))
        sim.run_until(6000.0)
        for spec in specs:
            assert rec.count(spec.name) > 50
            assert rec.worst_case(spec.name) <= \
                analysis[spec.name].r_max + 1e-6


def make_rr():
    sim = Simulator()
    rec = ResponseRecorder()
    return sim, rec, RoundRobinSim(sim, rec)


class TestRoundRobinSim:
    def test_single_task_runs_through(self):
        sim, rec, rr = make_rr()
        rr.add_task("a", quantum=2.0, exec_time=5.0)
        sim.schedule(0.0, lambda: rr.activate("a"))
        sim.run_until(100.0)
        # Alone: quanta are contiguous (idle queues skipped).
        assert rec.jobs("a") == [(0.0, 5.0)]

    def test_two_tasks_interleave(self):
        sim, rec, rr = make_rr()
        rr.add_task("a", quantum=2.0, exec_time=4.0)
        rr.add_task("b", quantum=2.0, exec_time=4.0)
        sim.schedule(0.0, lambda: rr.activate("a"))
        sim.schedule(0.0, lambda: rr.activate("b"))
        sim.run_until(100.0)
        # a: [0,2) then [4,6); b: [2,4) then [6,8).
        assert rec.jobs("a") == [(0.0, 6.0)]
        assert rec.jobs("b") == [(0.0, 8.0)]

    def test_work_conserving(self):
        sim, rec, rr = make_rr()
        rr.add_task("a", quantum=1.0, exec_time=3.0)
        rr.add_task("idle", quantum=100.0, exec_time=1.0)
        sim.schedule(0.0, lambda: rr.activate("a"))
        sim.run_until(100.0)
        # The idle queue donates its slots: a finishes at 3.
        assert rec.jobs("a") == [(0.0, 3.0)]

    def test_quantum_bounds_contiguous_service(self):
        sim, rec, rr = make_rr()
        rr.add_task("small", quantum=1.0, exec_time=1.0)
        rr.add_task("big", quantum=10.0, exec_time=10.0)
        sim.schedule(0.0, lambda: rr.activate("big"))
        sim.schedule(0.5, lambda: rr.activate("small"))
        sim.run_until(100.0)
        # big grabbed a full 10-quantum; small waits for it.
        assert rec.jobs("big") == [(0.0, 10.0)]
        assert rec.jobs("small") == [(0.5, 11.0)]

    def test_validation_errors(self):
        _, _, rr = make_rr()
        rr.add_task("a", 1.0, 1.0)
        with pytest.raises(ModelError):
            rr.add_task("a", 1.0, 1.0)
        with pytest.raises(ModelError):
            rr.add_task("b", 0.0, 1.0)
        with pytest.raises(ModelError):
            rr.activate("ghost")

    def test_conservative_vs_analysis(self):
        specs = [
            TaskSpec("a", 2.0, 2.0, periodic(15.0), slot=2.0),
            TaskSpec("b", 3.0, 3.0, periodic(20.0), slot=2.0),
            TaskSpec("c", 2.0, 2.0, periodic(25.0), slot=2.0),
        ]
        analysis = RoundRobinScheduler().analyze(specs, "cpu")
        sim, rec, rr = make_rr()
        for spec in specs:
            rr.add_task(spec.name, quantum=spec.slot,
                        exec_time=spec.c_max)
            for t in worst_case_arrivals(spec.event_model, 3000.0):
                sim.schedule(t, lambda _n=spec.name: rr.activate(_n))
        sim.run_until(6000.0)
        for spec in specs:
            assert rec.count(spec.name) > 50
            assert rec.worst_case(spec.name) <= \
                analysis[spec.name].r_max + 1e-6
