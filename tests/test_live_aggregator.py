"""Live aggregation: the aggregate must match the ground truth.

The acceptance property of the streaming pipeline: a
:class:`LiveAggregator` fed by the bus during a sweep (serial *and*
pool-backed) reports exactly the counts the final
:class:`~repro.batch.executor.BatchReport` and the re-read
:class:`~repro.batch.store.ResultStore` report — telemetry is an
observation channel, never a second source of truth.
"""

import io
import multiprocessing

import pytest

from repro import SPPScheduler, System, obs, periodic
from repro.batch import (
    BatchRunner,
    Job,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
)
from repro.batch.cli import ProgressLine
from repro.batch.spaces import quickstart_space
from repro.obs.aggregate import LiveAggregator
from repro.obs.top import StoreTail, fold_store_record
from repro.system import system_to_dict


@pytest.fixture(autouse=True)
def clean_obs():
    obs.get_bus().clear()
    obs.configure(enabled=False, reset=True)
    yield
    obs.get_bus().clear()
    obs.configure(enabled=False, reset=True, ship_worker_spans=False)


def small_system(wcet=10.0, name="small"):
    s = System(name)
    s.add_source("stim", periodic(100.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (wcet / 2, wcet), ["stim"], priority=1)
    return s


def analyze_jobs(n=4):
    return [Job("analyze",
                {"system": system_to_dict(small_system(wcet=6.0 + i))},
                label=f"wcet={6.0 + i}")
            for i in range(n)]


def fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("fork start method unavailable")


def run_with_aggregator(jobs, store, backend):
    aggregator = LiveAggregator(total=len(jobs))
    obs.configure(enabled=True, reset=True)
    obs.get_bus().subscribe(aggregator)
    try:
        report = BatchRunner(store=store, backend=backend).run(jobs)
    finally:
        obs.get_bus().unsubscribe(aggregator)
    return aggregator, report


def assert_matches_ground_truth(aggregator, report, cache_dir):
    """The streamed aggregate equals BatchReport and the store."""
    assert aggregator.done == report.total
    assert aggregator.cached == len(report.cached)
    assert aggregator.executed == len(report.executed)
    assert aggregator.failed == len(report.failed)
    assert aggregator.poisoned == len(report.poisoned)
    assert aggregator.ok == report.total - len(report.failed)
    assert aggregator.cache_hit_rate == pytest.approx(
        report.cache_hit_rate)
    # the persisted store agrees too
    reread = ResultStore(cache_dir)
    stored_ok = sum(1 for r in reread.results() if r.ok)
    assert stored_ok == aggregator.ok
    assert len(reread) >= aggregator.done - aggregator.poisoned


class TestAggregateMatchesStore:
    def test_serial_sweep(self, tmp_path):
        jobs = analyze_jobs(5)
        aggregator, report = run_with_aggregator(
            jobs, ResultStore(tmp_path), SerialBackend())
        assert report.ok
        assert_matches_ground_truth(aggregator, report, tmp_path)
        assert aggregator.backend == "serial"
        assert aggregator.iterations > 0  # engine effort streamed
        assert aggregator.finished_at is not None
        assert aggregator.wall == pytest.approx(report.wall)

    def test_pool_sweep(self, tmp_path):
        jobs = analyze_jobs(6)
        aggregator, report = run_with_aggregator(
            jobs, ResultStore(tmp_path),
            ProcessPoolBackend(2, mp_context=fork_ctx()))
        assert report.ok
        assert_matches_ground_truth(aggregator, report, tmp_path)
        assert aggregator.backend == "process"
        assert aggregator.workers == 2
        # worker obs deltas crossed the process boundary
        assert aggregator.iterations > 0
        assert aggregator.worker_spans > 0

    def test_warm_rerun_counts_cached(self, tmp_path):
        jobs = analyze_jobs(4)
        run_with_aggregator(jobs, ResultStore(tmp_path),
                            SerialBackend())
        aggregator, report = run_with_aggregator(
            jobs, ResultStore(tmp_path), SerialBackend())
        assert len(report.cached) == 4
        assert_matches_ground_truth(aggregator, report, tmp_path)
        assert aggregator.cached == 4 and aggregator.executed == 0
        assert aggregator.cache_hit_rate == 1.0

    def test_failures_streamed(self, tmp_path):
        jobs = analyze_jobs(2) + [
            Job("analyze", {"system": {"name": "broken",
                                       "tasks": "not-a-list"}},
                label="broken")]
        aggregator, report = run_with_aggregator(
            jobs, ResultStore(tmp_path), SerialBackend())
        assert len(report.failed) == 1
        assert_matches_ground_truth(aggregator, report, tmp_path)
        assert aggregator.failures
        label, error = aggregator.failures[-1]
        assert label == "broken" and error

    def test_design_space_end_to_end(self, tmp_path):
        space = quickstart_space()
        points = list(space.grid())[:6]
        aggregator = LiveAggregator(total=len(points))
        obs.configure(enabled=True, reset=True)
        obs.get_bus().subscribe(aggregator)
        try:
            sweep = space.run(
                BatchRunner(store=ResultStore(tmp_path)), points=points)
        finally:
            obs.get_bus().unsubscribe(aggregator)
        assert_matches_ground_truth(aggregator, sweep.report, tmp_path)
        assert aggregator.residuals  # in-process iteration events
        snap = aggregator.snapshot()
        assert snap["done"] == len(points)
        assert snap["finished"] is True


class TestFollowEquivalence:
    def test_store_tail_reconstructs_counts(self, tmp_path):
        jobs = analyze_jobs(5)
        live, report = run_with_aggregator(
            jobs, ResultStore(tmp_path), SerialBackend())
        followed = LiveAggregator(total=len(jobs))
        tail = StoreTail(tmp_path / "results.jsonl")
        folded = tail.poll(followed)
        assert folded == len(jobs)
        assert followed.done == live.done == report.total
        assert followed.ok == live.ok
        assert followed.failed == live.failed
        # nothing new appended -> second poll is a no-op
        assert tail.poll(followed) == 0

    def test_fold_store_record_maps_status(self):
        aggregator = LiveAggregator(total=2)
        fold_store_record(aggregator, {
            "key": "k1", "kind": "analyze", "label": "good",
            "status": "ok", "duration": 0.5, "attempts": 1,
            "obs": {"metrics": {"counters": {
                "propagation.iterations": 7}}, "spans": 3},
        })
        fold_store_record(aggregator, {
            "key": "k2", "kind": "analyze", "label": "bad",
            "status": "failed", "error": "boom",
        })
        assert aggregator.done == 2
        assert aggregator.ok == 1 and aggregator.failed == 1
        assert aggregator.iterations == 7
        assert aggregator.worker_spans == 3
        assert aggregator.failures[-1] == ("bad", "boom")

    def test_tail_tolerates_missing_and_torn(self, tmp_path):
        path = tmp_path / "results.jsonl"
        tail = StoreTail(path)
        aggregator = LiveAggregator()
        assert tail.poll(aggregator) == 0  # no file yet
        with open(path, "w") as fh:
            fh.write('{"key": "a", "status": "ok"}\n')
            fh.write('{"key": "b", "stat')  # torn mid-append
        assert tail.poll(aggregator) == 1
        with open(path, "a") as fh:
            fh.write('us": "ok"}\n')
        assert tail.poll(aggregator) == 1
        assert aggregator.done == 2


class TestRendering:
    def folded(self):
        aggregator = LiveAggregator(total=4)
        aggregator.handle({"type": "sweep", "phase": "start",
                           "total": 4, "cached": 1, "to_run": 3,
                           "workers": 2, "backend": "process", "t": 0.0})
        aggregator.handle({"type": "job", "key": "a", "status": "ok",
                           "cached": True, "t": 0.1})
        aggregator.handle({"type": "job", "key": "b", "status": "ok",
                           "cached": False, "duration": 0.2, "t": 0.3})
        aggregator.handle({"type": "job", "key": "c",
                           "status": "failed", "label": "pt-c",
                           "error": "boom", "cached": False, "t": 0.4})
        aggregator.handle({"type": "job_retry", "key": "d",
                           "attempt": 1, "status": "timeout"})
        aggregator.handle({"type": "iteration", "system": "sys",
                           "iteration": 1, "residual_r_max": 2.5})
        aggregator.handle({"type": "guard", "system": "sys",
                           "verdict": "diverging", "iteration": 9})
        return aggregator

    def test_render_line_mentions_counts(self):
        line = self.folded().render_line()
        assert "3/4 pts" in line
        assert "ok 2" in line and "fail 1" in line
        assert "cached 1" in line and "retry 1" in line
        assert len(line) <= 78

    def test_render_frame_sections(self):
        frame = self.folded().render(width=100)
        assert "3/4 points" in frame
        assert "backend process x2" in frame
        assert "residuals[sys]" in frame
        assert "guard: diverging on sys" in frame
        assert "FAILED pt-c: boom" in frame

    def test_eta_and_throughput(self):
        aggregator = LiveAggregator(total=10, clock=lambda: 5.0)
        for i in range(5):
            aggregator.handle({"type": "job", "key": str(i),
                               "status": "ok", "cached": False,
                               "duration": 1.0, "t": float(i)})
        assert aggregator.throughput() == pytest.approx(1.0)
        assert aggregator.eta_seconds() == pytest.approx(5.0)

    def test_residual_eviction_bounds_memory(self):
        aggregator = LiveAggregator()
        from repro.obs.aggregate import MAX_TRACKED_SYSTEMS
        for i in range(MAX_TRACKED_SYSTEMS + 5):
            aggregator.handle({"type": "iteration",
                               "system": f"sys{i}", "iteration": 1,
                               "residual_r_max": 0.1})
        assert len(aggregator.residuals) == MAX_TRACKED_SYSTEMS
        assert "sys0" not in aggregator.residuals


class TestProgressLine:
    def make(self, tty, quiet=False, interval=0.0):
        aggregator = LiveAggregator(total=2)
        aggregator.handle({"type": "job", "key": "a", "status": "ok",
                           "cached": False, "t": 1.0})

        class Stream(io.StringIO):
            def isatty(self):
                return tty

        stream = Stream()
        line = ProgressLine(aggregator, quiet=quiet, stream=stream,
                            interval=interval)
        return line, stream

    def test_tty_rewrites_in_place(self):
        line, stream = self.make(tty=True)
        line.update()
        line.update()
        out = stream.getvalue()
        assert out.count("\r") == 2 and "\n" not in out
        line.finish()
        assert stream.getvalue().endswith("\n")

    def test_non_tty_rate_limited(self):
        line, stream = self.make(tty=False, interval=3600.0)
        line.update()
        line.update()  # suppressed: inside the interval
        line.finish()  # always emits
        assert stream.getvalue().count("\n") == 2

    def test_quiet_suppresses_everything(self):
        line, stream = self.make(tty=True, quiet=True)
        line.update()
        line.finish()
        assert stream.getvalue() == ""

    def test_non_tty_rate_limit_uses_injected_monotonic_clock(self):
        now = {"t": 0.0}
        aggregator = LiveAggregator(total=2)

        class Stream(io.StringIO):
            def isatty(self):
                return False

        stream = Stream()
        line = ProgressLine(aggregator, stream=stream, interval=2.0,
                            clock=lambda: now["t"])
        line.update()          # t=0: emits
        now["t"] = 1.0
        line.update()          # inside the interval: suppressed
        now["t"] = 2.5
        line.update()          # interval elapsed: emits
        assert stream.getvalue().count("\n") == 2

    def test_finish_is_idempotent_and_final(self):
        line, stream = self.make(tty=False, interval=3600.0)
        line.finish()
        line.finish()          # second finish is a no-op
        line.update()          # updates after finish are ignored
        assert stream.getvalue().count("\n") == 1


class TestTelemetryHealth:
    def test_snapshot_surfaces_drops_and_sink_errors(self):
        class Boom:
            name = "boom-sink"

            def handle(self, event):
                raise RuntimeError("sink bug")

        obs.configure(enabled=True, reset=True)
        bus = obs.get_bus()
        boom = Boom()
        bus.subscribe(boom)
        try:
            bus.publish({"type": "job", "key": "x", "status": "ok"})
        finally:
            bus.unsubscribe(boom)
        snap = LiveAggregator().snapshot()
        telemetry = snap["telemetry"]
        assert telemetry["sink_errors"] == 1
        assert telemetry["sink_error_counts"] == {"boom-sink": 1}
        assert telemetry["dropped_spans"] == 0

    def test_render_shows_telemetry_line_only_when_unhealthy(self):
        obs.configure(enabled=True, reset=True)
        aggregator = LiveAggregator()
        assert "telemetry:" not in aggregator.render()

        class Boom:
            name = "bad"

            def handle(self, event):
                raise RuntimeError("x")

        bus = obs.get_bus()
        boom = Boom()
        bus.subscribe(boom)
        try:
            bus.publish({"type": "job", "key": "y", "status": "ok"})
        finally:
            bus.unsubscribe(boom)
        frame = aggregator.render(width=120)
        assert "telemetry:" in frame
        assert "1 sink errors (bad=1)" in frame


class TestWorkerSpanShipping:
    def test_pool_spans_adopted_on_worker_lanes(self, tmp_path):
        jobs = analyze_jobs(3)
        obs.configure(enabled=True, reset=True, ship_worker_spans=True)
        report = BatchRunner(
            store=ResultStore(tmp_path),
            backend=ProcessPoolBackend(2, mp_context=fork_ctx())
        ).run(jobs)
        assert report.ok
        tracer = obs.get_tracer()
        adopted = [s for s in tracer.spans() if s.worker is not None]
        assert adopted  # worker spans crossed the boundary
        payload = obs.tracer_to_chrome(tracer)
        lanes = {e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(name.startswith("worker-") for name in lanes)

    def test_serial_ships_nothing_extra(self, tmp_path):
        jobs = analyze_jobs(2)
        obs.configure(enabled=True, reset=True, ship_worker_spans=True)
        report = BatchRunner(store=ResultStore(tmp_path),
                             backend=SerialBackend()).run(jobs)
        assert report.ok
        # serial jobs trace into the parent directly; nothing adopted
        assert all(s.worker is None for s in obs.get_tracer().spans())
