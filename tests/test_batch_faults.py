"""Worker fault handling: failures and timeouts never sink a sweep.

Satellite coverage: a job whose analysis raises (or exceeds its
timeout) is recorded as failed with the traceback, the remaining points
still complete, and a resumed run re-executes exactly the failed and
missing points.
"""

import multiprocessing
import signal
import time

import pytest

from repro import SPPScheduler, System, periodic
from repro.batch import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchRunner,
    Job,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    register_job_kind,
)
from repro.batch.jobs import _JOB_KINDS
from repro.system import system_to_dict

HAVE_SIGALRM = hasattr(signal, "SIGALRM")


@pytest.fixture
def scratch_kinds():
    """Let a test register throw-away job kinds, restored afterwards."""
    before = dict(_JOB_KINDS)
    yield
    _JOB_KINDS.clear()
    _JOB_KINDS.update(before)


def good_system(wcet=10.0):
    s = System("ok")
    s.add_source("stim", periodic(100.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (wcet / 2, wcet), ["stim"], priority=1)
    return s


def overloaded_system():
    """Utilisation > 1: the local analysis raises, by design."""
    s = System("overloaded")
    s.add_source("stim", periodic(100.0))
    s.add_resource("cpu", SPPScheduler())
    s.add_task("a", "cpu", (90.0, 140.0), ["stim"], priority=1)
    return s


def fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("fork start method unavailable")


def mixed_jobs():
    return [
        Job("analyze", {"system": system_to_dict(good_system(6.0))},
            label="good-1"),
        Job("analyze", {"system": system_to_dict(overloaded_system())},
            label="bad"),
        Job("analyze", {"system": system_to_dict(good_system(9.0))},
            label="good-2"),
    ]


class TestFailureCapture:
    def test_failure_recorded_sweep_completes(self, tmp_path):
        report = BatchRunner(store=ResultStore(tmp_path)).run(
            mixed_jobs())
        assert len(report.executed) == 3
        assert len(report.failed) == 1
        failed = report.results[report.failed[0]]
        assert failed.status == STATUS_FAILED
        assert failed.error
        assert "Traceback" in failed.traceback
        ok = [report.results[k] for k in report.order
              if k not in report.failed]
        assert all(r.status == STATUS_OK for r in ok)

    def test_failure_captured_in_worker_process(self, tmp_path):
        backend = ProcessPoolBackend(2, mp_context=fork_ctx())
        report = BatchRunner(store=ResultStore(tmp_path),
                             backend=backend).run(mixed_jobs())
        assert len(report.executed) == 3
        assert len(report.failed) == 1
        failed = report.results[report.failed[0]]
        assert "Traceback" in failed.traceback

    def test_malformed_payload_is_a_failed_result(self, tmp_path):
        report = BatchRunner(store=ResultStore(tmp_path)).run(
            [Job("analyze", {"system": {"tasks": {"t": {}}}})])
        assert report.failed
        assert report.results[report.failed[0]].status == STATUS_FAILED


@pytest.mark.skipif(not HAVE_SIGALRM, reason="needs SIGALRM")
class TestTimeouts:
    def test_serial_timeout_preempts(self, scratch_kinds, tmp_path):
        @register_job_kind("sleepy")
        def _sleepy(payload):
            time.sleep(payload["seconds"])
            return {"slept": payload["seconds"]}

        jobs = [Job("sleepy", {"seconds": 5.0}, timeout=0.2),
                Job("sleepy", {"seconds": 0.0}, timeout=5.0)]
        t0 = time.perf_counter()
        report = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert time.perf_counter() - t0 < 4.0  # pre-empted, not slept out
        slow = report.results[jobs[0].key]
        fast = report.results[jobs[1].key]
        assert slow.status == STATUS_TIMEOUT
        assert "timeout" in slow.error
        assert fast.status == STATUS_OK

    def test_pool_timeout_preempts_in_worker(self, scratch_kinds,
                                             tmp_path):
        @register_job_kind("sleepy")
        def _sleepy(payload):
            time.sleep(payload["seconds"])
            return {"slept": payload["seconds"]}

        jobs = [Job("sleepy", {"seconds": 5.0}, timeout=0.2,
                    label="slow"),
                Job("sleepy", {"seconds": 0.0}, timeout=5.0,
                    label="fast")]
        backend = ProcessPoolBackend(2, mp_context=fork_ctx())
        t0 = time.perf_counter()
        report = BatchRunner(store=ResultStore(tmp_path),
                             backend=backend).run(jobs)
        assert time.perf_counter() - t0 < 4.0
        assert report.results[jobs[0].key].status == STATUS_TIMEOUT
        assert report.results[jobs[1].key].status == STATUS_OK


class TestResumeRetriesFailedOnly:
    def test_resume_skips_ok_retries_failed_and_missing(self, tmp_path):
        jobs = mixed_jobs()
        first = BatchRunner(store=ResultStore(tmp_path)).run(jobs)
        assert len(first.failed) == 1
        failed_key = first.failed[0]

        # Add a brand-new point; resume must run it plus the failure —
        # and nothing else.
        extra = Job("analyze",
                    {"system": system_to_dict(good_system(12.0))},
                    label="new-point")
        resumed = BatchRunner(store=ResultStore(tmp_path)).run(
            jobs + [extra])
        assert sorted(resumed.executed) == sorted(
            [failed_key, extra.key])
        assert len(resumed.cached) == 2
        # The failure is deterministic, so it fails again — but it was
        # retried, not served from the cache.
        assert resumed.results[failed_key].status == STATUS_FAILED

    def test_timeout_results_are_retried(self, scratch_kinds, tmp_path):
        calls = {"n": 0}

        @register_job_kind("flaky_slow")
        def _flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.5)  # post-hoc accounting catches this too
            return {"attempt": calls["n"]}

        job = Job("flaky_slow", {"x": 1}, timeout=0.2)
        store = ResultStore(tmp_path)
        first = BatchRunner(store=store).run([job])
        assert first.results[job.key].status == STATUS_TIMEOUT
        second = BatchRunner(store=store).run([job])
        assert second.results[job.key].status == STATUS_OK
        assert len(second.executed) == 1
