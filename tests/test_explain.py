"""Tests for the explanation engine (repro.explain).

Covers: blame decompositions summing exactly to the reported WCRT for
all five busy-window policies, the event-model lineage DAG (Ω_pa pack
and Ψ unpack nodes for the hierarchical variant), the Chrome trace
exporter, the explain CLI, and the disabled-path guarantees (no blame,
no lineage, no obs flag leakage).
"""

import json

import pytest

from repro import configure, obs
from repro.analysis import (
    EDFScheduler,
    RoundRobinScheduler,
    SPNPScheduler,
    SPPScheduler,
    TaskSpec,
    TDMAScheduler,
)
from repro.eventmodels import periodic, periodic_with_jitter
from repro.examples_lib.rox08 import build_system
from repro.explain import (
    Blame,
    explain_system,
    lineage,
    render_blame,
    render_blame_table,
    reset_lineage,
)
from repro.explain.blame import (
    KIND_BLOCKING,
    KIND_INTERFERENCE,
    KIND_OWN,
    KIND_SUPPLY,
    critical_activation,
)
from repro.explain.lineage import (
    KIND_PACK,
    KIND_SOURCE,
    KIND_THETA,
    KIND_UNPACK,
)
from repro.system.propagation import analyze_system
from repro.viz import lineage_to_dot, render_lineage


@pytest.fixture
def obs_on():
    configure(enabled=True, reset=True)
    reset_lineage()
    yield obs
    configure(enabled=False, reset=True)
    reset_lineage()


@pytest.fixture(autouse=True)
def obs_off_guard():
    yield
    configure(enabled=False)
    reset_lineage()


def assert_exact(blame: Blame) -> None:
    """The decomposition must reproduce the reported bound exactly."""
    blame.check()
    assert blame.explained_wcrt() == pytest.approx(blame.wcrt)
    assert blame.total() == pytest.approx(blame.busy_time)


class TestBlamePerPolicy:
    """Every solver's blame terms sum to its reported WCRT."""

    def test_spp(self, obs_on):
        tasks = [
            TaskSpec("hi", 1.0, 1.0, periodic(4.0), priority=1),
            TaskSpec("mid", 2.0, 2.0, periodic_with_jitter(6.0, 3.0),
                     priority=2),
            TaskSpec("lo", 3.0, 3.0, periodic(12.0), priority=3),
        ]
        result = SPPScheduler().analyze(tasks, "cpu")
        for name in ("hi", "mid", "lo"):
            blame = result[name].blame
            assert blame is not None and blame.policy == "spp"
            assert_exact(blame)
        lo = result["lo"].blame
        assert {t.name for t in lo.interference} == {"hi", "mid"}
        assert lo.own.kind == KIND_OWN
        assert lo.own.activations == lo.q
        assert lo.dominant() is not None

    def test_spp_blocking_term(self, obs_on):
        tasks = [
            TaskSpec("hi", 1.0, 1.0, periodic(10.0), priority=1,
                     blocking=2.5),
            TaskSpec("lo", 3.0, 3.0, periodic(20.0), priority=2),
        ]
        result = SPPScheduler().analyze(tasks, "cpu")
        blame = result["hi"].blame
        assert blame.blocking is not None
        assert blame.blocking.kind == KIND_BLOCKING
        assert blame.blocking.contribution == 2.5
        assert_exact(blame)

    def test_spnp(self, obs_on):
        frames = [
            TaskSpec("A", 1.0, 1.0, periodic(4.0), priority=1),
            TaskSpec("B", 2.0, 2.0, periodic(6.0), priority=2),
            TaskSpec("C", 3.0, 3.0, periodic(12.0), priority=3),
        ]
        result = SPNPScheduler().analyze(frames, "can")
        for name in ("A", "B", "C"):
            blame = result[name].blame
            assert blame is not None and blame.policy == "spnp"
            assert_exact(blame)
        # A is blocked by the longest lower-priority frame (C).
        a = result["A"].blame
        assert a.blocking is not None
        assert a.blocking.contribution == 3.0
        # The lowest priority frame has no blocking term.
        assert result["C"].blame.blocking is None

    def test_edf(self, obs_on):
        tasks = [
            TaskSpec("a", 1.0, 1.0, periodic(4.0), deadline=4.0),
            TaskSpec("b", 2.0, 2.0, periodic(6.0), deadline=6.0),
            TaskSpec("c", 3.0, 3.0, periodic(12.0), deadline=12.0),
        ]
        result = EDFScheduler().analyze(tasks, "cpu")
        for name in ("a", "b", "c"):
            blame = result[name].blame
            assert blame is not None and blame.policy == "edf"
            assert_exact(blame)
            assert "offset" in blame.candidate
            assert "abs_deadline" in blame.candidate

    def test_round_robin(self, obs_on):
        tasks = [
            TaskSpec("a", 6.0, 6.0, periodic(30.0), slot=2.0),
            TaskSpec("b", 1.0, 1.0, periodic(30.0), slot=9.0),
        ]
        result = RoundRobinScheduler().analyze(tasks, "cpu")
        for name in ("a", "b"):
            blame = result[name].blame
            assert blame is not None and blame.policy == "round_robin"
            assert_exact(blame)
        assert result["a"].blame.candidate["rounds"] == 3

    def test_tdma(self, obs_on):
        tasks = [
            TaskSpec("a", 1.0, 1.0, periodic(20.0), slot=2.0),
            TaskSpec("b", 3.0, 3.0, periodic(20.0), slot=3.0),
        ]
        result = TDMAScheduler().analyze(tasks, "cpu")
        for name in ("a", "b"):
            blame = result[name].blame
            assert blame is not None and blame.policy == "tdma"
            assert_exact(blame)
        # Whatever is not own execution is waiting for the own slot.
        a = result["a"].blame
        if a.extras:
            assert a.extras[0].kind == KIND_SUPPLY
            assert a.extras[0].name == "tdma.cycle"

    def test_disabled_leaves_blame_none(self):
        configure(enabled=False, reset=True)
        tasks = [TaskSpec("a", 1.0, 1.0, periodic(4.0), priority=1)]
        result = SPPScheduler().analyze(tasks, "cpu")
        assert result["a"].blame is None

    def test_critical_activation_picks_max_response(self):
        assert critical_activation([3.0, 5.0, 9.0],
                                   [0.0, 4.0, 8.0]) == 1
        assert critical_activation([3.0, 8.0, 9.0],
                                   [0.0, 4.0, 8.0]) == 2
        assert critical_activation([5.0], [0.0]) == 1


class TestRox08Blame:
    def test_blames_sum_on_full_system(self, obs_on):
        result = analyze_system(build_system("hem"))
        names = []
        for rr in result.resource_results.values():
            for name, tr in rr.task_results.items():
                assert tr.blame is not None, name
                assert_exact(tr.blame)
                names.append(name)
        assert set(names) == {"F1", "F2", "T1", "T2", "T3"}

    def test_t3_interference_drop_is_attributed(self):
        """Table 3's headline WCRT reduction must be visible as removed
        interference terms, not just a smaller total."""
        hem = explain_system(build_system("hem"))
        flat = explain_system(build_system("flat"))
        t3_hem = hem.blame("T3")
        t3_flat = flat.blame("T3")
        assert t3_flat.wcrt > t3_hem.wcrt
        assert t3_flat.interference_total > t3_hem.interference_total
        # Same interferer set, fewer admitted activations under HEM.
        flat_acts = {t.name: t.activations for t in t3_flat.interference}
        hem_acts = {t.name: t.activations for t in t3_hem.interference}
        assert flat_acts["T1"] > hem_acts["T1"]
        assert flat_acts["T2"] > hem_acts["T2"]


class TestLineage:
    def test_hem_chain_has_pack_and_unpack(self, obs_on):
        analyze_system(build_system("hem"))
        graph = lineage().graph()
        kinds = graph.kinds_on_chain("F1_rx.S3")
        assert KIND_UNPACK in kinds
        assert KIND_PACK in kinds
        assert KIND_THETA in kinds
        assert KIND_SOURCE in kinds
        node = graph.node("F1_rx.S3")
        assert node.attrs["label"] == "S3"
        assert "Ψ" in node.attrs["rule"]
        pack = graph.node("F1_pack")
        assert "Ω_pa" in pack.attrs["rule"]
        assert set(pack.attrs["inner_labels"]) == {"S1", "S2", "S3"}
        # The pack timer is part of the DAG.
        assert "F1_timer" in pack.inputs
        assert graph.node("F1_timer").kind == KIND_SOURCE

    def test_theta_records_inner_update(self, obs_on):
        analyze_system(build_system("hem"))
        node = lineage().graph().node("F1")
        assert node.kind == KIND_THETA
        assert "B_" in node.attrs["inner_update"]
        assert node.attrs["r_max"] > node.attrs["r_min"] >= 0.0

    def test_flat_chain_has_no_unpack(self, obs_on):
        analyze_system(build_system("flat"))
        graph = lineage().graph()
        kinds = graph.kinds_on_chain("F1")
        assert KIND_UNPACK not in kinds
        assert KIND_PACK in kinds

    def test_disabled_records_nothing(self):
        configure(enabled=False, reset=True)
        reset_lineage()
        analyze_system(build_system("hem"))
        assert len(lineage()) == 0

    def test_rerecording_overwrites_per_port(self, obs_on):
        rec = lineage()
        rec.record("p", KIND_SOURCE, model="old")
        rec.record("p", KIND_SOURCE, model="new")
        graph = rec.graph()
        assert len(graph) == 1
        assert graph.node("p").attrs["model"] == "new"

    def test_renderers(self, obs_on):
        analyze_system(build_system("hem"))
        graph = lineage().graph()
        tree = render_lineage(graph, "F1_rx.S3")
        assert "F1_rx.S3" in tree and "F1_pack" in tree
        assert "Ψ" in tree and "Ω_pa" in tree
        dot = lineage_to_dot(graph, roots=["F1_rx.S3"])
        assert dot.startswith("digraph")
        assert '"F1_pack" -> "F1"' in dot
        # restricted to T3's ancestry: F2 must not appear
        assert "F2" not in dot
        full = lineage_to_dot(graph)
        assert "F2_pack" in full

    def test_render_handles_unrecorded_and_shared_nodes(self):
        from repro.explain.lineage import LineageRecorder

        rec = LineageRecorder()
        rec.record("join", KIND_SOURCE, inputs=("a", "a"))
        text = render_lineage(rec.graph(), "join")
        assert "unrecorded" in text
        assert "(see above)" in text


class TestExplainEngine:
    def test_explain_system_bundles_everything(self):
        configure(enabled=False, reset=True)
        ex = explain_system(build_system("hem"))
        # the engine restores the switch it flipped
        assert obs.enabled is False
        assert ex.result.converged
        assert set(ex.blames) == {"F1", "F2", "T1", "T2", "T3"}
        assert ex.activation_port("T3") == "F1_rx.S3"
        assert ex.graph.kinds_on_chain("F1_rx.S3")
        assert ex.wcrt("T3") == ex.blame("T3").wcrt

    def test_explain_system_preserves_enabled_state(self, obs_on):
        explain_system(build_system("hem"))
        assert obs.enabled is True

    def test_render_blame_table_and_detail(self):
        ex = explain_system(build_system("hem"))
        table = ex.render_blame_table()
        for name in ("F1", "F2", "T1", "T2", "T3"):
            assert name in table
        assert "dominant interferer" in table
        detail = ex.render_blame("T3")
        assert "interference" in detail
        assert "r+" in detail
        assert render_blame(ex.blame("T3")) == detail
        assert render_blame_table(ex.blames) == table

    def test_to_dict_is_json_serialisable(self):
        ex = explain_system(build_system("hem"))
        payload = json.loads(json.dumps(ex.to_dict()))
        assert payload["system"] == "rox08-hem"
        assert payload["wcrt"]["T3"] == ex.blame("T3").wcrt
        terms = payload["blames"]["T3"]["terms"]
        assert sum(t["contribution"] for t in terms) == \
            pytest.approx(ex.blame("T3").busy_time)
        assert "F1_rx.S3" in payload["lineage"]

    def test_unknown_task_raises_keyerror(self):
        ex = explain_system(build_system("hem"))
        with pytest.raises(KeyError):
            ex.blame("nope")
        with pytest.raises(KeyError):
            ex.activation_port("nope")


class TestExplainCli:
    def test_rox08_smoke(self, capsys):
        from repro.explain.cli import explain_main

        assert explain_main(["rox08"]) == 0
        out = capsys.readouterr().out
        assert "flat baseline vs hierarchical" in out
        assert "T3" in out and "Ω_pa" in out
        assert obs.enabled is False

    def test_task_filter_and_artifacts(self, tmp_path, capsys):
        from repro.explain.cli import explain_main

        dot = tmp_path / "lineage.dot"
        chrome = tmp_path / "trace.json"
        code = explain_main(["rox08", "--task", "T3",
                             "--dot", str(dot),
                             "--chrome", str(chrome)])
        assert code == 0
        assert dot.read_text().startswith("digraph")
        payload = json.loads(chrome.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_unknown_task_fails(self, capsys):
        from repro.explain.cli import explain_main

        assert explain_main(["rox08", "--task", "nope"]) == 2
        assert "no such task" in capsys.readouterr().err

    def test_body_gateway_smoke(self, capsys):
        from repro.explain.cli import explain_main

        assert explain_main(["body_gateway",
                             "--task", "show_climate"]) == 0
        out = capsys.readouterr().out
        assert "show_climate" in out
