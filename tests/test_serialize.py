"""Unit tests for system serialisation (round trips and golden shapes)."""

import json

import pytest

from repro._errors import ModelError
from repro.analysis import (
    EDFScheduler,
    HierarchicalSPPScheduler,
    PeriodicResource,
    RoundRobinScheduler,
    SPNPScheduler,
    SPPScheduler,
    TDMAScheduler,
)
from repro.eventmodels import (
    models_equal,
    or_join,
    periodic,
    periodic_with_jitter,
    sporadic,
)
from repro.examples_lib.rox08 import build_system
from repro.system import (
    analyze_system,
    model_from_dict,
    model_to_dict,
    scheduler_from_dict,
    scheduler_to_dict,
    system_from_dict,
    system_to_dict,
)


class TestModelRoundTrip:
    @pytest.mark.parametrize("model", [
        periodic(100.0),
        periodic_with_jitter(100.0, 35.0),
        sporadic(250.0, 10.0),
    ])
    def test_standard_exact(self, model):
        clone = model_from_dict(model_to_dict(model))
        assert models_equal(model, clone, n_max=32)

    def test_curve_via_freeze(self):
        join = or_join([periodic(100.0), periodic(150.0)])
        clone = model_from_dict(model_to_dict(join))
        # exact within the freeze horizon
        for n in range(2, 32):
            assert clone.delta_min(n) == pytest.approx(join.delta_min(n))

    def test_json_compatible(self):
        payload = model_to_dict(periodic_with_jitter(10.0, 3.0))
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"type": "quantum"})


class TestSchedulerRoundTrip:
    @pytest.mark.parametrize("scheduler", [
        SPPScheduler(0.9),
        SPNPScheduler(),
        RoundRobinScheduler(),
        TDMAScheduler(),
        EDFScheduler(),
        HierarchicalSPPScheduler(PeriodicResource(100.0, 30.0)),
    ])
    def test_round_trip_policy(self, scheduler):
        clone = scheduler_from_dict(scheduler_to_dict(scheduler))
        assert clone.policy == scheduler.policy

    def test_spp_limit_preserved(self):
        clone = scheduler_from_dict(scheduler_to_dict(SPPScheduler(0.7)))
        assert clone.utilization_limit == 0.7

    def test_server_parameters_preserved(self):
        original = HierarchicalSPPScheduler(PeriodicResource(80.0, 20.0))
        clone = scheduler_from_dict(scheduler_to_dict(original))
        assert clone.server.period == 80.0
        assert clone.server.budget == 20.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError):
            scheduler_from_dict({"policy": "magic"})


class TestSystemRoundTrip:
    def test_paper_system_round_trip_same_results(self):
        original = build_system("hem")
        clone = system_from_dict(system_to_dict(original))
        r1 = analyze_system(original)
        r2 = analyze_system(clone)
        for task in ("T1", "T2", "T3", "F1", "F2"):
            assert r2.wcrt(task) == pytest.approx(r1.wcrt(task))

    def test_dict_is_json_serialisable(self):
        payload = system_to_dict(build_system("flat"))
        clone_payload = json.loads(json.dumps(payload))
        clone = system_from_dict(clone_payload)
        assert set(clone.tasks) == set(build_system("flat").tasks)

    def test_junction_metadata_preserved(self):
        original = build_system("hem")
        payload = system_to_dict(original)
        pack = payload["junctions"]["F1_pack"]
        assert pack["kind"] == "pack"
        assert pack["timer"] == "F1_timer"
        assert set(pack["properties"].values()) == \
            {"triggering", "pending"}

    def test_invalid_graph_rejected_on_load(self):
        payload = system_to_dict(build_system("hem"))
        payload["tasks"]["T1"]["inputs"] = ["ghost_node"]
        with pytest.raises(ModelError):
            system_from_dict(payload)


class TestDeterminism:
    """Canonical serialisation: the contract behind batch cache keys."""

    #: Fixed wiring; only construction order varies between tests.
    _PERIODS = {"s1": 100.0, "s2": 250.0}
    _TASKS = {"t1": ("cpu", "s1", 1), "t2": ("cpu", "s2", 2),
              "t3": ("bus", "s1", 1)}

    def _system(self, order):
        from repro import SPPScheduler, System
        s = System("det")
        for name in order["sources"]:
            s.add_source(name, periodic(self._PERIODS[name]))
        for name in order["resources"]:
            s.add_resource(name, SPPScheduler())
        for name in order["tasks"]:
            resource, source, priority = self._TASKS[name]
            s.add_task(name, resource, (1.0, 2.0), [source],
                       priority=priority)
        return s

    def test_insertion_order_does_not_matter(self):
        from repro.system import canonical_json, system_hash
        a = self._system({"sources": ["s1", "s2"],
                          "resources": ["cpu", "bus"],
                          "tasks": ["t1", "t2", "t3"]})
        b = self._system({"sources": ["s2", "s1"],
                          "resources": ["bus", "cpu"],
                          "tasks": ["t3", "t1", "t2"]})
        assert system_to_dict(a) == system_to_dict(b)
        assert canonical_json(system_to_dict(a)) == \
            canonical_json(system_to_dict(b))
        assert system_hash(a) == system_hash(b)

    def test_round_trip_is_a_fixed_point(self):
        payload = system_to_dict(build_system("hem"))
        again = system_to_dict(system_from_dict(payload))
        assert again == payload
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    def test_node_maps_emitted_sorted(self):
        payload = system_to_dict(build_system("hem"))
        for section in ("sources", "resources", "tasks", "junctions"):
            names = list(payload[section])
            assert names == sorted(names), section

    def test_hash_stable_across_processes(self):
        """The digest must not depend on PYTHONHASHSEED (i.e. on which
        process computed it) — that is what makes it a cross-run cache
        key."""
        import os
        import subprocess
        import sys

        snippet = (
            "from repro import SPPScheduler, System, periodic\n"
            "from repro.system import system_hash\n"
            "s = System('x')\n"
            "s.add_source('stim', periodic(100.0))\n"
            "s.add_resource('cpu', SPPScheduler())\n"
            "s.add_task('a', 'cpu', (1.0, 2.0), ['stim'], priority=1)\n"
            "print(system_hash(s))\n"
        )
        digests = set()
        for seed in ("0", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            src_dir = os.path.join(os.path.dirname(__file__), os.pardir,
                                   "src")
            env["PYTHONPATH"] = src_dir + os.pathsep + \
                env.get("PYTHONPATH", "")
            out = subprocess.run([sys.executable, "-c", snippet],
                                 capture_output=True, text=True,
                                 env=env, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_hash_differs_on_content_change(self):
        from repro.system import system_hash
        a = self._system({"sources": ["s1"], "resources": ["cpu"],
                          "tasks": ["t1"]})
        b = self._system({"sources": ["s1"], "resources": ["cpu"],
                          "tasks": ["t1"]})
        b.tasks["t1"].c_max = 3.0
        assert system_hash(a) != system_hash(b)
