"""Unit tests for system serialisation (round trips and golden shapes)."""

import json

import pytest

from repro._errors import ModelError
from repro.analysis import (
    EDFScheduler,
    HierarchicalSPPScheduler,
    PeriodicResource,
    RoundRobinScheduler,
    SPNPScheduler,
    SPPScheduler,
    TDMAScheduler,
)
from repro.eventmodels import (
    models_equal,
    or_join,
    periodic,
    periodic_with_jitter,
    sporadic,
)
from repro.examples_lib.rox08 import build_system
from repro.system import (
    analyze_system,
    model_from_dict,
    model_to_dict,
    scheduler_from_dict,
    scheduler_to_dict,
    system_from_dict,
    system_to_dict,
)


class TestModelRoundTrip:
    @pytest.mark.parametrize("model", [
        periodic(100.0),
        periodic_with_jitter(100.0, 35.0),
        sporadic(250.0, 10.0),
    ])
    def test_standard_exact(self, model):
        clone = model_from_dict(model_to_dict(model))
        assert models_equal(model, clone, n_max=32)

    def test_curve_via_freeze(self):
        join = or_join([periodic(100.0), periodic(150.0)])
        clone = model_from_dict(model_to_dict(join))
        # exact within the freeze horizon
        for n in range(2, 32):
            assert clone.delta_min(n) == pytest.approx(join.delta_min(n))

    def test_json_compatible(self):
        payload = model_to_dict(periodic_with_jitter(10.0, 3.0))
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"type": "quantum"})


class TestSchedulerRoundTrip:
    @pytest.mark.parametrize("scheduler", [
        SPPScheduler(0.9),
        SPNPScheduler(),
        RoundRobinScheduler(),
        TDMAScheduler(),
        EDFScheduler(),
        HierarchicalSPPScheduler(PeriodicResource(100.0, 30.0)),
    ])
    def test_round_trip_policy(self, scheduler):
        clone = scheduler_from_dict(scheduler_to_dict(scheduler))
        assert clone.policy == scheduler.policy

    def test_spp_limit_preserved(self):
        clone = scheduler_from_dict(scheduler_to_dict(SPPScheduler(0.7)))
        assert clone.utilization_limit == 0.7

    def test_server_parameters_preserved(self):
        original = HierarchicalSPPScheduler(PeriodicResource(80.0, 20.0))
        clone = scheduler_from_dict(scheduler_to_dict(original))
        assert clone.server.period == 80.0
        assert clone.server.budget == 20.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError):
            scheduler_from_dict({"policy": "magic"})


class TestSystemRoundTrip:
    def test_paper_system_round_trip_same_results(self):
        original = build_system("hem")
        clone = system_from_dict(system_to_dict(original))
        r1 = analyze_system(original)
        r2 = analyze_system(clone)
        for task in ("T1", "T2", "T3", "F1", "F2"):
            assert r2.wcrt(task) == pytest.approx(r1.wcrt(task))

    def test_dict_is_json_serialisable(self):
        payload = system_to_dict(build_system("flat"))
        clone_payload = json.loads(json.dumps(payload))
        clone = system_from_dict(clone_payload)
        assert set(clone.tasks) == set(build_system("flat").tasks)

    def test_junction_metadata_preserved(self):
        original = build_system("hem")
        payload = system_to_dict(original)
        pack = payload["junctions"]["F1_pack"]
        assert pack["kind"] == "pack"
        assert pack["timer"] == "F1_timer"
        assert set(pack["properties"].values()) == \
            {"triggering", "pending"}

    def test_invalid_graph_rejected_on_load(self):
        payload = system_to_dict(build_system("hem"))
        payload["tasks"]["T1"]["inputs"] = ["ghost_node"]
        with pytest.raises(ModelError):
            system_from_dict(payload)
