"""Unit tests for the FlexRay static-segment substrate."""

import pytest

from repro._errors import ModelError, NotSchedulableError
from repro.analysis import TaskSpec
from repro.eventmodels import periodic, periodic_with_jitter
from repro.flexray import FlexRayConfig, FlexRayStaticScheduler, frame_bits


class TestFrameBits:
    def test_minimal_frame(self):
        # 0 words: 5 + 3 = 8 bytes -> 5 + 1 + 80 + 2 = 88 bits.
        assert frame_bits(0) == 88

    def test_payload_scaling(self):
        # each word adds 2 bytes = 20 bits
        assert frame_bits(1) - frame_bits(0) == 20

    def test_tss_range(self):
        assert frame_bits(0, tss_bits=15) - frame_bits(0, tss_bits=3) == 12
        with pytest.raises(ModelError):
            frame_bits(0, tss_bits=2)

    def test_payload_range(self):
        with pytest.raises(ModelError):
            frame_bits(128)
        with pytest.raises(ModelError):
            frame_bits(-1)


class TestFlexRayConfig:
    def config(self):
        return FlexRayConfig(cycle_length=5000.0, slot_length=100.0,
                             n_static_slots=20, bit_time=0.1)

    def test_slot_offsets(self):
        cfg = self.config()
        assert cfg.slot_offset(0) == 0.0
        assert cfg.slot_offset(7) == 700.0

    def test_slot_range_check(self):
        with pytest.raises(ModelError):
            self.config().slot_offset(20)

    def test_static_segment_must_fit_cycle(self):
        with pytest.raises(ModelError):
            FlexRayConfig(1000.0, 100.0, 11)

    def test_transmission_time(self):
        cfg = self.config()
        assert cfg.transmission_time(4) == pytest.approx(
            frame_bits(4) * 0.1)

    def test_frame_must_fit_slot(self):
        cfg = FlexRayConfig(5000.0, 10.0, 20, bit_time=0.1)
        with pytest.raises(ModelError):
            cfg.transmission_time(127)

    def test_max_payload_words(self):
        cfg = self.config()
        words = cfg.max_payload_words()
        assert cfg.transmission_time(words) <= 100.0
        with pytest.raises(ModelError):
            cfg.transmission_time(words + 1)


class TestStaticScheduler:
    def scheduler(self):
        return FlexRayStaticScheduler(
            FlexRayConfig(1000.0, 50.0, 10, bit_time=0.1))

    def test_wcrt_single_activation(self):
        specs = [TaskSpec("f", 10.0, 10.0, periodic(2000.0), slot=3)]
        result = self.scheduler().analyze(specs)
        # Just missed the slot: wait cycle - slot = 950, then 10.
        assert result["f"].r_max == pytest.approx(960.0)

    def test_queueing_across_cycles(self):
        # Jittered stream can put 2 activations within one cycle; the
        # second drains one cycle later.
        em = periodic_with_jitter(1100.0, 900.0)
        specs = [TaskSpec("f", 10.0, 10.0, em, slot=0)]
        result = self.scheduler().analyze(specs)
        # q=2: B = 950 + 1000 + 10 = 1960, arrival delta(2) = 200
        # -> response 1760 (dominates q=1's 960 and all later q).
        assert result["f"].r_max == pytest.approx(1760.0)
        assert result["f"].q_max >= 2

    def test_marginal_rate_with_jitter_detected(self):
        # Exactly one activation per cycle *with jitter* keeps the busy
        # window open forever — reported as not schedulable rather than
        # looping silently.
        em = periodic_with_jitter(1000.0, 900.0)
        specs = [TaskSpec("f", 10.0, 10.0, em, slot=0)]
        with pytest.raises(NotSchedulableError):
            self.scheduler().analyze(specs)

    def test_isolation_between_slots(self):
        # Another frame never affects this frame's response.
        base = [TaskSpec("f", 10.0, 10.0, periodic(2000.0), slot=3)]
        with_other = base + [TaskSpec("g", 50.0, 50.0, periodic(1000.0),
                                      slot=4)]
        r1 = self.scheduler().analyze(base)["f"].r_max
        r2 = self.scheduler().analyze(with_other)["f"].r_max
        assert r1 == r2

    def test_slot_collision_rejected(self):
        specs = [TaskSpec("f", 10.0, 10.0, periodic(2000.0), slot=3),
                 TaskSpec("g", 10.0, 10.0, periodic(2000.0), slot=3)]
        with pytest.raises(ModelError):
            self.scheduler().analyze(specs)

    def test_slot_required(self):
        specs = [TaskSpec("f", 10.0, 10.0, periodic(2000.0))]
        with pytest.raises(ModelError):
            self.scheduler().analyze(specs)

    def test_frame_exceeding_slot_rejected(self):
        specs = [TaskSpec("f", 60.0, 60.0, periodic(2000.0), slot=0)]
        with pytest.raises(ModelError):
            self.scheduler().analyze(specs)

    def test_overrate_rejected(self):
        # More than one activation per cycle on average cannot drain.
        specs = [TaskSpec("f", 10.0, 10.0, periodic(500.0), slot=0)]
        with pytest.raises(NotSchedulableError):
            self.scheduler().analyze(specs)

    def test_in_system_graph(self):
        # FlexRay as a resource of the compositional engine: a CAN-fed
        # gateway frame forwarded on the backbone.
        from repro.system import System, analyze_system

        system = System("fr")
        system.add_source("sig", periodic(2000.0))
        system.add_resource("FR", self.scheduler())
        system.add_task("bbframe", "FR", (10.0, 10.0), ["sig"], slot=2)
        result = analyze_system(system)
        assert result.converged
        assert result.wcrt("bbframe") == pytest.approx(960.0)
