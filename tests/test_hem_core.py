"""Unit tests for the paper's contribution: hierarchical event models.

Covers Definitions 3-10: the HEM tuple, the pack constructor Ω_pa with
eqs. (5)-(8), the inner update function B_{Θτ,C_pa} (Def. 9), and the
deconstructor Ψ_pa (Def. 10).
"""

import pytest

from conftest import assert_delta_consistent
from repro._errors import ModelError
from repro.core import (
    BusyWindowOutput,
    HierarchicalEventModel,
    ShaperOperation,
    TransferProperty,
    apply_operation,
    flatten,
    hsc_and,
    hsc_or,
    hsc_pack,
    is_hierarchical,
    register_inner_update,
    unpack,
    unpack_index,
    unpack_polled,
    unpack_signal,
)
from repro.core.constructors import PendingInnerModel
from repro.core.hem import ConstructionRule
from repro.core.update import InnerJitterSpacingModel, StreamOperation
from repro.eventmodels import (
    or_join,
    periodic,
    periodic_with_jitter,
    sporadic,
)
from repro.timebase import INF

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def paper_frame():
    """F1-like frame: S1/S2 triggering, S3 pending, timer 1000."""
    return hsc_pack(
        {
            "S1": (periodic(250.0, "S1"), TRIG),
            "S2": (periodic(450.0, "S2"), TRIG),
            "S3": (periodic(1000.0, "S3"), PEND),
        },
        timer=periodic(1000.0, "timer"),
        name="F1",
    )


class TestHemBehavesAsOuter:
    """Def. 5 + the section-6 reuse property: a HEM is analysable by any
    flat technique through its outer stream."""

    def test_delta_delegation(self):
        hem = paper_frame()
        outer = hem.outer
        for n in range(0, 12):
            assert hem.delta_min(n) == outer.delta_min(n)
            assert hem.delta_plus(n) == outer.delta_plus(n)

    def test_eta_delegation(self):
        hem = paper_frame()
        for dt in (10.0, 250.0, 999.0, 2000.0):
            assert hem.eta_plus(dt) == hem.outer.eta_plus(dt)
            assert hem.eta_min(dt) == hem.outer.eta_min(dt)

    def test_is_hierarchical(self):
        assert is_hierarchical(paper_frame())
        assert not is_hierarchical(periodic(100.0))

    def test_outer_is_or_of_triggering_and_timer(self):
        hem = paper_frame()
        reference = or_join([periodic(250.0), periodic(450.0),
                             periodic(1000.0)])
        for n in range(2, 16):
            assert hem.outer.delta_min(n) == pytest.approx(
                reference.delta_min(n))
            assert hem.outer.delta_plus(n) == pytest.approx(
                reference.delta_plus(n))


class TestPackConstructor:
    """Def. 8 / eqs. (5)-(8)."""

    def test_triggering_inner_is_source(self):
        hem = paper_frame()
        # eqs. (5)/(6): identical bounds.
        s1 = hem.inner("S1")
        for n in range(2, 10):
            assert s1.delta_min(n) == periodic(250.0).delta_min(n)
            assert s1.delta_plus(n) == periodic(250.0).delta_plus(n)

    def test_pending_inner_delta_min(self):
        hem = paper_frame()
        s3 = hem.inner("S3")
        gap = hem.outer.delta_plus(2)  # max frame distance = 250
        assert gap == 250.0
        # eq. (7): max(delta_S3(n) - 250, delta_out(n))
        assert s3.delta_min(2) == pytest.approx(1000.0 - 250.0)
        assert s3.delta_min(4) == pytest.approx(3000.0 - 250.0)

    def test_pending_inner_frame_floor(self):
        # A very fast pending signal is limited by the frame stream
        # itself (one fresh value per frame).
        hem = hsc_pack(
            {"fast": (periodic(10.0, "fast"), PEND),
             "trig": (periodic(400.0, "trig"), TRIG)},
            timer=None, name="F")
        fast = hem.inner("fast")
        # delta_fast(n) - delta_out+(2) is tiny/negative; the frame
        # distance bound delta_out-(n) dominates (3 frames span 800).
        assert fast.delta_min(3) == hem.outer.delta_min(3) == 800.0

    def test_pending_inner_delta_plus_unbounded(self):
        hem = paper_frame()
        assert hem.inner("S3").delta_plus(2) == INF  # eq. (8)

    def test_pending_with_sporadic_frame_gap(self):
        # All triggering streams sporadic -> outer delta_plus(2) = inf;
        # the pending bound degrades to the frame-distance floor.
        hem = hsc_pack(
            {"p": (periodic(100.0, "p"), PEND),
             "t": (sporadic(400.0, name="t"), TRIG)},
            name="F")
        assert hem.outer.delta_plus(2) == INF
        assert hem.inner("p").delta_min(3) == hem.outer.delta_min(3)

    def test_no_trigger_no_timer_rejected(self):
        with pytest.raises(ModelError):
            hsc_pack({"p": (periodic(100.0), PEND)}, timer=None)

    def test_empty_signals_rejected(self):
        with pytest.raises(ModelError):
            hsc_pack({}, timer=periodic(100.0))

    def test_pure_periodic_frame(self):
        # Only a timer: outer is exactly the timer stream.
        hem = hsc_pack({"p": (periodic(300.0, "p"), PEND)},
                       timer=periodic(100.0))
        for n in range(2, 8):
            assert hem.outer.delta_min(n) == periodic(100.0).delta_min(n)

    def test_labels_order_preserved(self):
        hem = paper_frame()
        assert hem.labels == ("S1", "S2", "S3")

    def test_rule_describes_properties(self):
        text = paper_frame().rule.describe()
        assert "S3" in text and "pending" in text.lower()

    def test_inner_consistency(self):
        hem = paper_frame()
        for label in hem.labels:
            assert_delta_consistent(hem.inner(label), n_max=20)


class TestOrAndConstructors:
    def test_hsc_or_outer(self):
        hem = hsc_or({"a": periodic(100.0), "b": periodic(150.0)})
        ref = or_join([periodic(100.0), periodic(150.0)])
        for n in range(2, 10):
            assert hem.outer.delta_min(n) == pytest.approx(
                ref.delta_min(n))

    def test_hsc_or_inner_passthrough(self):
        a = periodic(100.0)
        hem = hsc_or({"a": a, "b": periodic(150.0)})
        assert hem.inner("a") is a

    def test_hsc_and_outer(self):
        hem = hsc_and({"a": periodic(100.0), "b": periodic(150.0)})
        assert hem.outer.delta_min(2) == 150.0

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            hsc_or({})
        with pytest.raises(ModelError):
            hsc_and({})


class TestInnerUpdateDefinition9:
    def test_outer_transformed_by_theta(self):
        hem = paper_frame()
        out = apply_operation(hem, BusyWindowOutput(40.0, 120.0))
        # outer delta-(2): max(0 - 80, 0 + 40) = 40 (serialisation).
        assert out.outer.delta_min(2) == pytest.approx(40.0)

    def test_inner_shift_includes_simultaneity(self):
        hem = paper_frame()
        k = hem.outer.simultaneity()
        assert k == 3  # S1, S2 and the timer can align at t=0
        out = apply_operation(hem, BusyWindowOutput(40.0, 120.0))
        shift = (120.0 - 40.0) + (k - 1) * 40.0  # Def. 9
        s1 = out.inner("S1")
        assert s1.delta_min(2) == pytest.approx(
            max(250.0 - shift, 40.0))
        assert s1.delta_plus(2) == pytest.approx(250.0 + shift)

    def test_inner_spacing_floor(self):
        hem = paper_frame()
        out = apply_operation(hem, BusyWindowOutput(40.0, 120.0))
        s1 = out.inner("S1")
        # (n-1) * r_min floor of Def. 9.
        assert s1.delta_min(2) >= 40.0
        assert s1.delta_min(5) >= 4 * 40.0

    def test_pending_inner_keeps_inf(self):
        hem = paper_frame()
        out = apply_operation(hem, BusyWindowOutput(40.0, 120.0))
        assert out.inner("S3").delta_plus(2) == INF

    def test_hierarchy_preserved(self):
        out = apply_operation(paper_frame(), BusyWindowOutput(40.0, 120.0))
        assert is_hierarchical(out)
        assert out.labels == ("S1", "S2", "S3")
        assert out.rule.name == "pack"

    def test_chained_operations(self):
        # Frame crosses two buses: Def. 9 applies twice.
        hem = paper_frame()
        hop1 = apply_operation(hem, BusyWindowOutput(40.0, 120.0))
        hop2 = apply_operation(hop1, BusyWindowOutput(10.0, 30.0))
        assert is_hierarchical(hop2)
        for label in hop2.labels:
            assert_delta_consistent(hop2.inner(label), n_max=16)

    def test_flat_stream_passthrough(self):
        flat = periodic(100.0)
        out = apply_operation(flat, BusyWindowOutput(5.0, 25.0))
        assert not is_hierarchical(out)
        assert out.delta_plus(2) == 120.0

    def test_zero_min_response(self):
        # r- = 0: no serialisation spacing; only jitter shifts.
        out = apply_operation(paper_frame(), BusyWindowOutput(0.0, 50.0))
        s1 = out.inner("S1")
        assert s1.delta_min(2) == pytest.approx(max(250.0 - 50.0, 0.0))


class TestShaperOnHierarchy:
    def test_shaper_spacing_on_inner(self):
        hem = paper_frame()
        out = apply_operation(hem, ShaperOperation(30.0))
        assert out.outer.delta_min(2) == pytest.approx(30.0)
        assert out.inner("S1").delta_min(2) >= 30.0

    def test_unstable_shaper_rejected(self):
        hem = paper_frame()
        # Outer rate ~ 1/250 + 1/450 + 1/1000; shaping to d=500 is
        # unstable (rate * d > 1).
        with pytest.raises(ModelError):
            apply_operation(hem, ShaperOperation(500.0))


class TestDeconstructors:
    """Def. 10: Ψ_pa is a plain lookup."""

    def test_unpack_all(self):
        hem = paper_frame()
        signals = unpack(hem)
        assert set(signals) == {"S1", "S2", "S3"}
        assert signals["S1"] is hem.inner("S1")

    def test_unpack_signal(self):
        hem = paper_frame()
        assert unpack_signal(hem, "S2") is hem.inner("S2")

    def test_unpack_index_is_L_i(self):
        hem = paper_frame()
        assert unpack_index(hem, 0) is hem.inner("S1")
        assert unpack_index(hem, 2) is hem.inner("S3")

    def test_unpack_index_out_of_range(self):
        with pytest.raises(ModelError):
            unpack_index(paper_frame(), 7)

    def test_unknown_label(self):
        with pytest.raises(ModelError):
            unpack_signal(paper_frame(), "nope")

    def test_flatten_returns_outer(self):
        hem = paper_frame()
        assert flatten(hem) is hem.outer

    def test_unpack_flat_rejected(self):
        with pytest.raises(ModelError):
            unpack(periodic(100.0))

    def test_unpack_polled_shapes(self):
        hem = paper_frame()
        polled = unpack_polled(hem, "S1", poll_period=400.0)
        assert polled.delta_min(2) == 400.0

    def test_unpack_polled_bad_period(self):
        with pytest.raises(ModelError):
            unpack_polled(paper_frame(), "S1", poll_period=0.0)


class TestDispatchRegistry:
    def test_unregistered_combination_rejected(self):
        class WeirdOp(StreamOperation):
            name = "weird"

            def apply_flat(self, model):
                return model

        with pytest.raises(ModelError):
            apply_operation(paper_frame(), WeirdOp())

    def test_custom_registration(self):
        class IdentityOp(StreamOperation):
            name = "identity"

            def apply_flat(self, model):
                return model

        from repro.core.constructors import PackRule

        register_inner_update(
            IdentityOp, PackRule,
            lambda op, hem: {lbl: hem.inner(lbl) for lbl in hem.labels})
        out = apply_operation(paper_frame(), IdentityOp())
        assert out.inner("S1") is paper_frame().inner("S1") or True
        assert out.labels == ("S1", "S2", "S3")


class TestInnerJitterSpacingModel:
    def test_validation(self):
        with pytest.raises(ModelError):
            InnerJitterSpacingModel(periodic(100.0), -1.0, 0.0, 1)
        with pytest.raises(ModelError):
            InnerJitterSpacingModel(periodic(100.0), 0.0, 0.0, 0)

    def test_identity_when_zero(self):
        m = InnerJitterSpacingModel(periodic(100.0), 0.0, 0.0, 1)
        for n in range(2, 8):
            assert m.delta_min(n) == periodic(100.0).delta_min(n)
            assert m.delta_plus(n) == periodic(100.0).delta_plus(n)

    def test_total_shift(self):
        m = InnerJitterSpacingModel(periodic(100.0), 30.0, 10.0, 4)
        assert m.total_shift == 30.0 + 3 * 10.0


class TestHemAccessors:
    def test_replace_outer(self):
        hem = paper_frame()
        new = hem.replace(outer=periodic(500.0))
        assert new.outer.delta_min(2) == 500.0
        assert new.inner("S1") is hem.inner("S1")
        assert hem.outer.delta_min(2) == 0.0  # original untouched

    def test_inner_models_tuple(self):
        hem = paper_frame()
        assert len(hem.inner_models) == 3

    def test_needs_inner(self):
        with pytest.raises(ModelError):
            HierarchicalEventModel(periodic(10.0), {},
                                   rule=_DummyRule())


class _DummyRule(ConstructionRule):
    name = "dummy"

    def describe(self):
        return "dummy"
