"""OpenMetrics text exposition: rendering, escaping, and a live scrape.

Covers the satellite checklist for the exposition layer: label/value
escaping, histogram bucket monotonicity, empty-registry output, and a
golden-shape scrape of a real serve daemon's ``GET /metrics``.
"""

from __future__ import annotations

import math
import re

import pytest

from repro import obs
from repro.obs import openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeClient, daemon_in_thread

# One OpenMetrics line: comment, or ``name{labels} value [timestamp]``.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$")


def _sample_lines(text):
    return [line for line in text.splitlines()
            if line and not line.startswith("#")]


@pytest.fixture(autouse=True)
def _obs_isolation():
    yield
    obs.configure(enabled=False, reset=True)
    obs.get_bus().clear()


# ----------------------------------------------------------------------
# naming / escaping
# ----------------------------------------------------------------------
class TestNamesAndEscaping:
    def test_sanitize_name_maps_dots_and_prefix(self):
        assert openmetrics.sanitize_name("serve.queue_depth") \
            == "repro_serve_queue_depth"

    def test_sanitize_name_illegal_chars(self):
        name = openmetrics.sanitize_name("weird metric-name!")
        assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name)

    def test_label_value_escaping(self):
        assert openmetrics.escape_label_value('a"b') == 'a\\"b'
        assert openmetrics.escape_label_value("a\\b") == "a\\\\b"
        assert openmetrics.escape_label_value("a\nb") == "a\\nb"

    def test_labeled_roundtrip(self):
        name = openmetrics.labeled("serve.endpoint_seconds",
                                   endpoint='an"aly\\ze')
        base, labels = openmetrics.split_labels(name)
        assert base == "serve.endpoint_seconds"
        assert labels == {"endpoint": 'an"aly\\ze'}

    def test_escaped_labels_render_parseable(self):
        registry = MetricsRegistry()
        registry.counter(openmetrics.labeled(
            "requests", endpoint='a"b\\c\nd')).inc()
        text = openmetrics.render_registry(registry)
        sample = [l for l in _sample_lines(text)
                  if l.startswith("repro_requests_total")]
        assert len(sample) == 1
        assert '\\"' in sample[0]
        assert "\\n" in sample[0]
        assert "\n" not in sample[0]


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRenderRegistry:
    def test_empty_registry_is_just_eof(self):
        assert openmetrics.render_registry(MetricsRegistry()) == "# EOF\n"

    def test_ends_with_eof(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert openmetrics.render_registry(registry).endswith("# EOF\n")

    def test_counter_gets_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.counter("batch.retries").inc(3)
        text = openmetrics.render_registry(registry)
        assert "# TYPE repro_batch_retries counter" in text
        assert "repro_batch_retries_total 3" in text

    def test_gauge_rendered_plain(self):
        registry = MetricsRegistry()
        registry.gauge("serve.queue_depth").set(7)
        text = openmetrics.render_registry(registry)
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 7" in text

    def test_histogram_buckets_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (0.002, 0.002, 0.02, 0.2, 2.0, 20.0, 200.0):
            hist.observe(value)
        text = openmetrics.render_registry(registry)
        bucket_re = re.compile(
            r'^repro_latency_bucket\{le="([^"]+)"\} (\d+)$', re.M)
        buckets = [(le, int(count))
                   for le, count in bucket_re.findall(text)]
        assert buckets, text
        assert buckets[-1][0] == "+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == 7
        # +Inf bucket == _count, and _sum matches the observations
        assert "repro_latency_count 7" in text
        sum_match = re.search(r"^repro_latency_sum (\S+)$", text, re.M)
        assert sum_match
        assert math.isclose(float(sum_match.group(1)), 222.224,
                            rel_tol=1e-9)
        # bucket boundaries themselves are increasing
        finite = [float(le) for le, _ in buckets[:-1]]
        assert finite == sorted(finite)

    def test_every_sample_line_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("c.d").set(1.5)
        registry.histogram("e.f").observe(0.1)
        registry.counter(openmetrics.labeled("g", x="y")).inc()
        for line in _sample_lines(openmetrics.render_registry(registry)):
            assert SAMPLE_RE.match(line), line


# ----------------------------------------------------------------------
# live scrape
# ----------------------------------------------------------------------
class TestLiveScrape:
    def test_warm_daemon_exposes_twelve_families(self, tmp_path):
        handle = daemon_in_thread(cache_dir=str(tmp_path / "cache"))
        try:
            client = ServeClient(port=handle.port)
            client.wait_healthy()
            client.analyze(example="pipeline")  # warm the engine
            text = client.metrics_text()
        finally:
            handle.stop()
        assert text.endswith("# EOF\n")
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert len(families) >= 12, families
        assert len(set(families)) == len(families), "duplicate family"
        for line in _sample_lines(text):
            assert SAMPLE_RE.match(line), line
        # the scrape-time serve gauges and engine metrics are present
        for expected in ("repro_serve_queue_depth",
                         "repro_serve_uptime_seconds",
                         "repro_trace_spans_retained",
                         "repro_bus_sinks"):
            assert expected in families, expected
