"""Retry, poisoning, chaos injection, and post-hoc timeout hygiene."""

import threading

import pytest

from repro import RetryPolicy, obs
from repro.batch import BatchRunner, Job, ResultStore
from repro.batch.executor import SerialBackend
from repro.batch.jobs import (
    STATUS_POISONED,
    STATUS_TIMEOUT,
    JobResult,
    run_job,
)
from repro.examples_lib.stress import build_overloaded
from repro.resilience import ChaosBackend, register_chaos_job_kinds
from repro.resilience.retry import DETERMINISTIC, TRANSIENT
from repro.system import system_to_dict

register_chaos_job_kinds()


def no_sleep_policy(**kwargs):
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("base_delay", 0.001)
    return RetryPolicy(sleep=lambda _: None, **kwargs)


def probe(tmp_path, probe_id, fail_times, **extra):
    payload = {"state_dir": str(tmp_path), "probe_id": probe_id,
               "fail_times": fail_times}
    payload.update(extra)
    return Job("chaos_probe", payload)


def runner(tmp_path, **kwargs):
    kwargs.setdefault("retry", no_sleep_policy())
    return BatchRunner(store=ResultStore(tmp_path / "store.json"),
                       **kwargs)


class TestClassification:
    def test_engine_errors_are_deterministic(self):
        policy = no_sleep_policy()
        for name in ("ModelError", "NotSchedulableError",
                     "ConvergenceError", "UnboundedStreamError"):
            result = JobResult("k", "analyze", "", "failed",
                               error=f"{name}: boom")
            assert policy.classify(result) == DETERMINISTIC

    def test_crashes_and_timeouts_are_transient(self):
        policy = no_sleep_policy()
        crash = JobResult("k", "analyze", "", "failed",
                          error="BrokenProcessPool: worker died")
        timeout = JobResult("k", "analyze", "", STATUS_TIMEOUT,
                            error="job exceeded timeout")
        assert policy.classify(crash) == TRANSIENT
        assert policy.classify(timeout) == TRANSIENT

    def test_unknown_kind_is_deterministic(self):
        policy = no_sleep_policy()
        result = JobResult("k", "wat", "", "failed",
                           error="unknown job kind 'wat' (known: ...)")
        assert policy.classify(result) == DETERMINISTIC

    def test_backoff_caps_and_jitters_deterministically(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=3.0, jitter=0.5,
                             seed=9, sleep=lambda _: None)
        assert policy.delay(1, "k") == policy.delay(1, "k")
        assert policy.delay(1, "k") != policy.delay(1, "other")
        for attempt in range(1, 8):
            assert policy.delay(attempt, "k") <= 3.0 * 1.5

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetryLoop:
    def test_transient_crash_retried_to_success(self, tmp_path):
        job = probe(tmp_path, "t1", fail_times=1)
        report = runner(tmp_path).run([job])
        result = report[job.key]
        assert result.ok and result.attempts == 2
        assert result.history[0]["error"].startswith("RuntimeError")
        assert report.ok and not report.poisoned

    def test_backoff_sleep_invoked_between_rounds(self, tmp_path):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01,
                             sleep=sleeps.append)
        job = probe(tmp_path, "t2", fail_times=2)
        report = runner(tmp_path, retry=policy).run([job])
        assert report[job.key].ok
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth

    def test_deterministic_error_poisoned_first_attempt(self, tmp_path):
        job = probe(tmp_path, "m1", fail_times=99, error="model")
        report = runner(tmp_path).run([job])
        result = report[job.key]
        assert result.status == STATUS_POISONED
        assert result.attempts == 1 and not result.history
        assert result.error.startswith("ModelError")
        assert job.key in report.poisoned and not report.ok
        # the probe really ran exactly once
        assert (tmp_path / "chaos-m1.count").read_text() == "1"

    def test_persistent_transient_poisoned_with_history(self, tmp_path):
        job = probe(tmp_path, "t3", fail_times=99)
        report = runner(tmp_path).run([job])
        result = report[job.key]
        assert result.status == STATUS_POISONED
        assert result.attempts == 3
        assert [h["attempt"] for h in result.history] == [1, 2]
        assert "poisoned" in report.summary()

    def test_poisoned_result_served_from_cache(self, tmp_path):
        job = probe(tmp_path, "t4", fail_times=99)
        runner(tmp_path).run([job])
        report = runner(tmp_path).run([job])
        assert job.key in report.cached
        assert report[job.key].status == STATUS_POISONED
        # 3 attempts from the first run, none from the second
        assert (tmp_path / "chaos-t4.count").read_text() == "3"

    def test_retry_poisoned_reexecutes(self, tmp_path):
        job = probe(tmp_path, "t5", fail_times=2)
        first = runner(tmp_path,
                       retry=no_sleep_policy(max_attempts=2)).run([job])
        assert first[job.key].status == STATUS_POISONED
        second = runner(tmp_path, retry_poisoned=True).run([job])
        assert second[job.key].ok

    def test_no_policy_keeps_legacy_behaviour(self, tmp_path):
        job = probe(tmp_path, "t6", fail_times=1)
        report = BatchRunner(
            store=ResultStore(tmp_path / "store.json")).run([job])
        result = report[job.key]
        assert result.status == "failed" and result.attempts == 1

    def test_retry_counters_emitted(self, tmp_path):
        obs.configure(enabled=True, reset=True)
        try:
            ok_job = probe(tmp_path, "c1", fail_times=1)
            bad_job = probe(tmp_path, "c2", fail_times=99,
                            error="model")
            runner(tmp_path).run([ok_job, bad_job])
            counters = obs.metrics().snapshot()["counters"]
            assert counters.get("batch.retries") == 1
            assert counters.get("batch.poisoned") == 1
        finally:
            obs.disable(reset=True)


class TestChaosBackend:
    def test_injected_crashes_retried(self, tmp_path):
        job = probe(tmp_path, "cb1", fail_times=0)

        class CrashOnce(ChaosBackend):
            def _draw(self, key):
                rng = super()._draw(key)
                first = self._seen[key] == 1

                class Draw:
                    def random(self_inner):
                        return 0.0 if first else 1.0
                return Draw()

        backend = CrashOnce(SerialBackend(), seed=3, crash_rate=0.5)
        report = runner(tmp_path, backend=backend).run([job])
        result = report[job.key]
        assert result.ok and result.attempts == 2
        assert "ChaosWorkerCrash" in result.history[0]["error"]

    def test_chaos_schedule_reproducible(self, tmp_path):
        def crash_keys(seed):
            backend = ChaosBackend(SerialBackend(), seed=seed,
                                   crash_rate=0.5)
            crashed = []
            jobs = [probe(tmp_path, f"r{i}", fail_times=0)
                    for i in range(8)]
            backend.run(jobs, lambda r: crashed.append(r.key)
                        if not r.ok else None)
            return crashed

        assert crash_keys(13) == crash_keys(13)

    def test_delayed_result_trips_budget(self, tmp_path):
        job = Job("chaos_probe",
                  {"state_dir": str(tmp_path), "probe_id": "d1",
                   "fail_times": 0},
                  timeout=10.0)
        backend = ChaosBackend(SerialBackend(), seed=1, delay_rate=1.0,
                               delay=60.0, sleep=lambda _: None)
        results = []
        backend.run([job], results.append)
        assert results[0].status == STATUS_TIMEOUT


class TestPostHocTimeout:
    """Satellite regression: the non-SIGALRM path must discard a timed
    out job's observability side effects."""

    def _run_off_main_thread(self, job):
        captured = []
        thread = threading.Thread(
            target=lambda: SerialBackend().run([job], captured.append))
        thread.start()
        thread.join()
        return captured[0]

    def test_posthoc_timeout_discards_metrics(self):
        obs.configure(enabled=True, reset=True)
        try:
            registry = obs.metrics()
            job = Job("analyze",
                      {"system": system_to_dict(build_overloaded()),
                       "on_failure": "degrade"},
                      timeout=1e-9)
            before = dict(registry.snapshot()["counters"])
            result = self._run_off_main_thread(job)
            after = registry.snapshot()["counters"]
            assert result.status == STATUS_TIMEOUT
            # every counter the job touched was rolled back
            for name in ("propagation.iterations",
                         "resilience.quarantines",
                         "analysis.jobs.analyze"):
                assert after.get(name, 0) == before.get(name, 0)
        finally:
            obs.disable(reset=True)

    def test_posthoc_control_run_keeps_metrics(self):
        # Same job without the timeout: the metrics must survive,
        # proving the regression test above observes the discard and
        # not an accounting accident.
        obs.configure(enabled=True, reset=True)
        try:
            registry = obs.metrics()
            job = Job("analyze",
                      {"system": system_to_dict(build_overloaded()),
                       "on_failure": "degrade"})
            result = self._run_off_main_thread(job)
            counters = registry.snapshot()["counters"]
            assert result.ok
            assert counters.get("propagation.iterations", 0) > 0
            assert counters.get("resilience.quarantines", 0) > 0
        finally:
            obs.disable(reset=True)

    def test_sigalrm_timeout_also_discarded(self, tmp_path):
        # On the main thread SIGALRM pre-empts the job; partial
        # metrics written before the alarm are discarded the same way.
        obs.configure(enabled=True, reset=True)
        try:
            registry = obs.metrics()
            job = Job("chaos_probe",
                      {"state_dir": str(tmp_path), "probe_id": "alarm",
                       "hang_seconds": 5.0},
                      timeout=0.05)
            captured = []
            SerialBackend().run([job], captured.append)
            assert captured[0].status == STATUS_TIMEOUT
            counters = registry.snapshot()["counters"]
            assert counters.get("analysis.jobs.chaos_probe", 0) == 0
        finally:
            obs.disable(reset=True)


class TestDegradeJobKind:
    def test_analyze_job_degrade_option(self):
        job = Job("analyze",
                  {"system": system_to_dict(build_overloaded()),
                   "on_failure": "degrade"})
        result = run_job(job)
        assert result.ok
        outcome = result.data["outcome"]
        assert outcome["degraded"]
        assert outcome["health"]["CPU_HOT"] == "overloaded"
        assert outcome["tasks"]["T_hot"]["r_max"] == "inf"

    def test_analyze_job_strict_still_fails(self):
        job = Job("analyze",
                  {"system": system_to_dict(build_overloaded())})
        result = run_job(job)
        assert result.status == "failed"
        assert result.error.startswith("NotSchedulableError")
