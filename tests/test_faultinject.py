"""Seeded fault injection: determinism, per-kind semantics, and the
metamorphic monotone-conservativeness suite."""

import pytest

from repro import Fault, FaultPlan, analyze_system, inject_faults
from repro._errors import ModelError
from repro.examples_lib.rox08 import build_system
from repro.examples_lib.stress import build_oscillating
from repro.resilience import (
    check_monotone_conservativeness,
    clone_system,
)
from repro.system import system_hash
from repro.timebase import EPS


@pytest.fixture
def rox():
    return build_system("hem")


class TestCloneSystem:
    def test_clone_is_analysis_identical(self, rox):
        assert system_hash(clone_system(rox)) == system_hash(rox)

    def test_clone_is_independent(self, rox):
        clone = clone_system(rox)
        next(iter(clone.tasks.values())).c_max *= 10.0
        assert system_hash(clone) != system_hash(rox)
        assert system_hash(clone_system(rox)) == system_hash(rox)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            Fault("gamma_ray", "T1", 1.0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ModelError):
            Fault("wcet_inflation", "T1", -0.5)

    def test_unknown_target_rejected(self, rox):
        with pytest.raises(ModelError):
            inject_faults(rox, FaultPlan(
                (Fault("wcet_inflation", "nope", 0.1),)))


class TestFaultKinds:
    def test_wcet_inflation(self, rox):
        injected = inject_faults(rox, FaultPlan(
            (Fault("wcet_inflation", "T1", 0.5),)))
        assert injected.tasks["T1"].c_max == \
            pytest.approx(rox.tasks["T1"].c_max * 1.5)
        assert injected.tasks["T1"].c_min == rox.tasks["T1"].c_min

    def test_jitter_inflation(self, rox):
        source = next(iter(rox.sources))
        injected = inject_faults(rox, FaultPlan(
            (Fault("jitter_inflation", source, 0.25),)))
        before = rox.sources[source].model
        after = injected.sources[source].model
        assert after.jitter == pytest.approx(
            before.jitter + 0.25 * before.period)

    def test_frame_drop_inflates_bus_tasks(self, rox):
        injected = inject_faults(rox, FaultPlan(
            (Fault("frame_drop", "CAN", 1.0),)))
        for task in rox.tasks_on("CAN"):
            assert injected.tasks[task.name].c_max == \
                pytest.approx(task.c_max * 2.0)

    def test_can_error_burst_attaches_model(self, rox):
        injected = inject_faults(rox, FaultPlan(
            (Fault("can_error_burst", "CAN", 2),)))
        error_model = injected.resources["CAN"].scheduler.error_model
        assert error_model is not None
        assert error_model.burst_errors == 2
        assert error_model.recovery_time > 0

    def test_can_error_bursts_accumulate(self, rox):
        plan = FaultPlan((Fault("can_error_burst", "CAN", 2),
                          Fault("can_error_burst", "CAN", 1)))
        injected = inject_faults(rox, plan)
        assert injected.resources["CAN"].scheduler \
            .error_model.burst_errors == 3

    def test_can_error_burst_needs_spnp(self, rox):
        with pytest.raises(ModelError):
            inject_faults(rox, FaultPlan(
                (Fault("can_error_burst", "CPU1", 1),)))

    def test_original_untouched(self, rox):
        digest = system_hash(rox)
        inject_faults(rox, FaultPlan(
            (Fault("wcet_inflation", None, 0.5),
             Fault("can_error_burst", "CAN", 3))))
        assert system_hash(rox) == digest


class TestDeterminism:
    def test_sampled_plans_reproducible(self, rox):
        assert FaultPlan.sample(rox, seed=11) == \
            FaultPlan.sample(rox, seed=11)
        assert FaultPlan.sample(rox, seed=11) != \
            FaultPlan.sample(rox, seed=12)

    def test_injection_is_pure(self, rox):
        plan = FaultPlan.sample(rox, seed=5, n_faults=4)
        assert system_hash(inject_faults(rox, plan)) == \
            system_hash(inject_faults(rox, plan))


class TestMetamorphic:
    """More faults never decrease any cleanly-analysed WCRT.

    Three fault kinds, several pinned seeds — the acceptance gate of
    the resilience PR and the pinned half of the CI chaos-smoke job.
    """

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_sampled_ladders_hold(self, rox, seed):
        plan = FaultPlan.sample(rox, seed, n_faults=4)
        ladder = [FaultPlan(plan.faults[:i], seed=seed)
                  for i in range(len(plan.faults) + 1)]
        assert check_monotone_conservativeness(rox, ladder) == []

    @pytest.mark.parametrize("fault", [
        Fault("wcet_inflation", None, 0.3),
        Fault("jitter_inflation", None, 0.4),
        Fault("frame_drop", "CAN", 1.0),
        Fault("can_error_burst", "CAN", 2),
    ], ids=lambda f: f.kind)
    def test_each_kind_is_conservative(self, rox, fault):
        base = FaultPlan()
        assert check_monotone_conservativeness(
            rox, [base, base.extend(fault)]) == []

    def test_single_fault_strictly_increases_some_wcrt(self, rox):
        baseline = analyze_system(rox)
        injected = inject_faults(rox, FaultPlan(
            (Fault("wcet_inflation", "T1", 0.5),)))
        result = analyze_system(injected)
        assert result.wcrt("T1") > baseline.wcrt("T1") + EPS

    def test_ladder_into_degradation_still_sound(self):
        # Pushing the oscillating control case over the edge must not
        # produce a violation: degraded tasks are excluded, healthy
        # ones keep monotone bounds.
        system = build_oscillating(gain_c=30.0)
        ladder = [FaultPlan(),
                  FaultPlan((Fault("wcet_inflation", "T_c", 0.2),)),
                  FaultPlan((Fault("wcet_inflation", "T_c", 0.2),
                             Fault("wcet_inflation", "T_c", 0.4)))]
        assert check_monotone_conservativeness(system, ladder) == []
