"""Unit tests for the sensitivity-analysis searches."""

import pytest

from repro._errors import AnalysisError, ModelError
from repro.analysis import (
    SPPScheduler,
    TaskSpec,
    binary_search_max,
    max_wcet_scaling,
    min_period_scaling,
    task_wcet_slack,
)
from repro.eventmodels import or_join, periodic


def taskset():
    return [
        TaskSpec("hi", 2.0, 2.0, periodic(10.0), priority=1),
        TaskSpec("lo", 3.0, 3.0, periodic(20.0), priority=2),
    ]


DEADLINES = {"hi": 10.0, "lo": 20.0}


class TestBinarySearchMax:
    def test_threshold_found(self):
        x = binary_search_max(lambda v: v <= 7.25, 0.0, 10.0,
                              precision=1e-6, expand=False)
        assert x == pytest.approx(7.25, abs=1e-4)

    def test_expansion(self):
        x = binary_search_max(lambda v: v <= 40.0, 0.0, 1.0,
                              precision=1e-6)
        assert x == pytest.approx(40.0, abs=1e-3)

    def test_infeasible_low(self):
        with pytest.raises(AnalysisError):
            binary_search_max(lambda v: False, 0.0, 1.0)

    def test_empty_interval(self):
        with pytest.raises(ModelError):
            binary_search_max(lambda v: True, 2.0, 1.0)

    def test_everything_feasible_capped(self):
        # expand gives up after 20 doublings and returns the bracket.
        x = binary_search_max(lambda v: True, 0.0, 1.0)
        assert x >= 1.0


class TestMaxWcetScaling:
    def test_scaling_factor_meaningful(self):
        factor = max_wcet_scaling(SPPScheduler(), taskset(), DEADLINES)
        # Utilisation 0.35 with loose deadlines: clearly above 1.
        assert factor > 1.0
        # And the found factor actually is feasible while 110% of it
        # is not.
        from dataclasses import replace
        scaled = [replace(t, c_min=t.c_min * factor * 1.1,
                          c_max=t.c_max * factor * 1.1)
                  for t in taskset()]
        result = None
        try:
            result = SPPScheduler().analyze(scaled, "x")
        except Exception:
            pass
        if result is not None:
            assert any(result[n].r_max > DEADLINES[n]
                       for n in DEADLINES)

    def test_tight_deadline_limits_scaling(self):
        tight = {"hi": 2.5, "lo": 20.0}
        loose_factor = max_wcet_scaling(SPPScheduler(), taskset(),
                                        DEADLINES)
        tight_factor = max_wcet_scaling(SPPScheduler(), taskset(), tight)
        assert tight_factor < loose_factor

    def test_unknown_deadline_task(self):
        with pytest.raises(ModelError):
            max_wcet_scaling(SPPScheduler(), taskset(), {"ghost": 5.0})

    def test_nonpositive_deadline(self):
        with pytest.raises(ModelError):
            max_wcet_scaling(SPPScheduler(), taskset(), {"hi": 0.0})


class TestTaskWcetSlack:
    def test_low_priority_slack(self):
        slack = task_wcet_slack(SPPScheduler(), taskset(), "lo",
                                DEADLINES)
        assert slack > 0
        # lo: wcrt(c) = c + interference; deadline 20 on period-20
        # stream: generous but finite.
        assert slack < 20.0

    def test_high_priority_slack_limited_by_lo_deadline_too(self):
        # Inflating hi also inflates lo's interference.
        slack_hi = task_wcet_slack(SPPScheduler(), taskset(), "hi",
                                   {"hi": 10.0, "lo": 6.0})
        slack_hi_loose = task_wcet_slack(SPPScheduler(), taskset(), "hi",
                                         DEADLINES)
        assert slack_hi <= slack_hi_loose

    def test_unknown_task(self):
        with pytest.raises(ModelError):
            task_wcet_slack(SPPScheduler(), taskset(), "ghost", DEADLINES)


class TestMinPeriodScaling:
    def test_compression_below_one(self):
        factor = min_period_scaling(SPPScheduler(), taskset(), DEADLINES)
        assert factor < 1.0

    def test_result_feasible(self):
        factor = min_period_scaling(SPPScheduler(), taskset(), DEADLINES)
        from dataclasses import replace
        from repro.eventmodels import StandardEventModel
        scaled = [replace(t, event_model=StandardEventModel(
            t.event_model.period * factor)) for t in taskset()]
        result = SPPScheduler().analyze(scaled, "x")
        for name, deadline in DEADLINES.items():
            assert result[name].r_max <= deadline + 1e-6

    def test_curve_models_rejected(self):
        tasks = [TaskSpec("t", 1.0, 1.0,
                          or_join([periodic(10.0), periodic(15.0)]),
                          priority=1)]
        with pytest.raises(ModelError):
            min_period_scaling(SPPScheduler(), tasks, {"t": 10.0})


class TestBinarySearchEdgeCases:
    """Degenerate intervals and non-finite bounds (batch-cache
    prerequisites: searches must fail loudly, never spin or lie)."""

    def test_lo_equals_hi_feasible(self):
        assert binary_search_max(lambda v: True, 3.0, 3.0,
                                 expand=False) == 3.0

    def test_lo_equals_hi_infeasible(self):
        with pytest.raises(AnalysisError):
            binary_search_max(lambda v: False, 3.0, 3.0, expand=False)

    def test_expansion_from_zero_bracket(self):
        # hi == 0 used to double to 0 forever and report 0 even though
        # much larger values were feasible.
        x = binary_search_max(lambda v: v <= 5.0, 0.0, 0.0,
                              precision=1e-6)
        assert x == pytest.approx(5.0, abs=1e-3)

    def test_non_finite_bounds_rejected(self):
        import math
        for lo, hi in ((0.0, math.inf), (-math.inf, 1.0),
                       (math.nan, 1.0), (0.0, math.nan)):
            with pytest.raises(ModelError):
                binary_search_max(lambda v: True, lo, hi)

    def test_bad_precision_rejected(self):
        import math
        for precision in (0.0, -1e-3, math.inf, math.nan):
            with pytest.raises(ModelError):
                binary_search_max(lambda v: True, 0.0, 1.0,
                                  precision=precision)

    def test_expansion_never_overflows_to_inf(self):
        # Everything feasible: expansion stops at a finite value.
        import math
        x = binary_search_max(lambda v: True, 0.0, 1e300)
        assert math.isfinite(x)

    def test_negative_interval_bisects(self):
        x = binary_search_max(lambda v: v <= -2.5, -10.0, -1.0,
                              precision=1e-6, expand=False)
        assert x == pytest.approx(-2.5, abs=1e-4)
