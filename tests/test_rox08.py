"""Integration tests on the paper's evaluation system (section 6)."""

import pytest

from repro._errors import ModelError
from repro.core import is_hierarchical
from repro.examples_lib.rox08 import (
    CPU_TASKS,
    SOURCES,
    TASK_SIGNAL,
    analyze_both_variants,
    build_com_layer,
    build_source_models,
    build_system,
)
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver


@pytest.fixture(scope="module")
def comparison():
    return analyze_both_variants()


@pytest.fixture(scope="module")
def hem_state():
    system = build_system("hem")
    result = analyze_system(system)
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    return system, result, _StreamResolver(system, responses, {})


class TestStructure:
    def test_sources_match_table1(self):
        models = build_source_models()
        assert models["S1"].period == 250.0
        assert models["S2"].period == 450.0
        assert models["S4"].period == 400.0

    def test_frames_match_table2(self):
        layer = build_com_layer()
        assert layer.frames["F1"].payload_bytes == 4
        assert layer.frames["F2"].payload_bytes == 2
        assert layer.frames["F1"].can_id < layer.frames["F2"].can_id

    def test_f1_carries_three_signals(self):
        layer = build_com_layer()
        assert {s.name for s in layer.frames["F1"].signals} == \
            {"S1", "S2", "S3"}

    def test_invalid_variant(self):
        with pytest.raises(ModelError):
            build_system("turbo")


class TestTable3Shape:
    """The reproduction target: who wins, by roughly what factor."""

    def test_hem_never_worse(self, comparison):
        for task in CPU_TASKS:
            assert comparison.wcrt_hem[task] <= \
                comparison.wcrt_flat[task] + 1e-9

    def test_reduction_grows_with_lower_priority(self, comparison):
        reds = [comparison.reduction_percent(t)
                for t in ("T1", "T2", "T3")]
        assert reds == sorted(reds)

    def test_lowest_priority_reduction_substantial(self, comparison):
        # The paper reports double-digit reductions for the lower
        # priority tasks.
        assert comparison.reduction_percent("T3") > 30.0

    def test_flat_t3_suffers_frame_storm(self, comparison):
        # Flat T3 sees every frame as a potential activation; its WCRT
        # must exceed the sum of all CETs considerably.
        assert comparison.wcrt_flat["T3"] > 24 + 32 + 40

    def test_rows_accessor(self, comparison):
        rows = comparison.rows()
        assert [r[0] for r in rows] == ["T1", "T2", "T3"]


class TestFigure4Shape:
    def test_frame_curve_dominates_signals(self, hem_state):
        _, _, resolver = hem_state
        frame_out = resolver.port("F1")
        assert is_hierarchical(frame_out)
        for dt in (250.0, 500.0, 1000.0, 2000.0):
            total = frame_out.outer.eta_plus(dt)
            for label in frame_out.labels:
                assert frame_out.inner(label).eta_plus(dt) <= total

    def test_signal_sum_close_to_frame_curve(self, hem_state):
        # Triggering signals + timer make up the frame stream; the sum
        # of inner activations cannot exceed total frames by much more
        # than the (unbounded-burst-free) packing slack.
        _, _, resolver = hem_state
        frame_out = resolver.port("F1")
        dt = 2000.0
        total = frame_out.outer.eta_plus(dt)
        s1 = frame_out.inner("S1").eta_plus(dt)
        assert s1 < total

    def test_s3_curve_is_lowest(self, hem_state):
        _, _, resolver = hem_state
        frame_out = resolver.port("F1")
        dt = 2000.0
        assert frame_out.inner("S3").eta_plus(dt) <= \
            frame_out.inner("S1").eta_plus(dt)


class TestGlobalConsistency:
    def test_both_variants_converge(self):
        assert analyze_system(build_system("flat")).converged
        assert analyze_system(build_system("hem")).converged

    def test_bus_results_identical_across_variants(self, comparison):
        # The hierarchy only changes the receiver side; the bus analysis
        # is the same in both variants.
        flat = analyze_system(build_system("flat"))
        hem = analyze_system(build_system("hem"))
        for frame in ("F1", "F2"):
            assert flat.wcrt(frame) == pytest.approx(hem.wcrt(frame))

    def test_t1_highest_priority_equals_cet_in_hem(self, comparison):
        assert comparison.wcrt_hem["T1"] == CPU_TASKS["T1"][0]

    def test_task_signal_mapping_consistent(self):
        layer = build_com_layer()
        for task, signal in TASK_SIGNAL.items():
            assert layer.frame_of_signal(signal).name == "F1"
