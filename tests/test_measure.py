"""Direct unit tests for the measurement containers."""

import pytest

from repro._errors import ModelError
from repro.eventmodels import periodic
from repro.sim import EventTrace, ResponseRecorder


class TestEventTrace:
    def test_record_and_read(self):
        trace = EventTrace()
        trace.record("a", 1.0)
        trace.record("a", 2.0)
        trace.record("b", 0.5)
        assert trace.events("a") == [1.0, 2.0]
        assert trace.count("a") == 2
        assert trace.streams() == ["a", "b"]

    def test_unknown_stream_empty(self):
        assert EventTrace().events("ghost") == []

    def test_out_of_order_rejected(self):
        trace = EventTrace()
        trace.record("a", 5.0)
        with pytest.raises(ModelError):
            trace.record("a", 4.0)

    def test_simultaneous_allowed(self):
        trace = EventTrace()
        trace.record("a", 5.0)
        trace.record("a", 5.0)
        assert trace.count("a") == 2

    def test_observed_model(self):
        trace = EventTrace()
        for t in (0.0, 100.0, 200.0, 300.0):
            trace.record("a", t)
        model = trace.observed_model("a")
        assert model.delta_min(2) == 100.0

    def test_check_conservative(self):
        trace = EventTrace()
        for t in (0.0, 100.0, 200.0):
            trace.record("a", t)
        assert trace.check_conservative("a", periodic(100.0))
        assert not trace.check_conservative("a", periodic(150.0))


class TestResponseRecorder:
    def test_summary(self):
        rec = ResponseRecorder()
        rec.record("t", 0.0, 5.0)
        rec.record("t", 10.0, 13.0)
        assert rec.summary() == {"t": (3.0, 5.0, 2)}

    def test_negative_response_rejected(self):
        rec = ResponseRecorder()
        with pytest.raises(ModelError):
            rec.record("t", 10.0, 9.0)

    def test_empty_task_queries_rejected(self):
        rec = ResponseRecorder()
        with pytest.raises(ModelError):
            rec.worst_case("ghost")
        with pytest.raises(ModelError):
            rec.best_case("ghost")

    def test_responses_and_jobs(self):
        rec = ResponseRecorder()
        rec.record("t", 1.0, 4.0)
        assert rec.responses("t") == [3.0]
        assert rec.jobs("t") == [(1.0, 4.0)]
        assert rec.tasks() == ["t"]


class TestCheckConservativeEdgeCases:
    """Degenerate observations are vacuously conservative, not errors."""

    def test_empty_trace(self):
        assert EventTrace().check_conservative("ghost", periodic(10.0))

    def test_single_event(self):
        trace = EventTrace()
        trace.record("a", 5.0)
        assert trace.check_conservative("a", periodic(10.0))

    def test_zero_length_window(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("a", 1.0)  # would violate δ⁻ of periodic(10)
        assert trace.check_conservative("a", periodic(10.0),
                                        window=(3.0, 3.0))

    def test_inverted_window(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("a", 1.0)
        assert trace.check_conservative("a", periodic(10.0),
                                        window=(5.0, 2.0))

    def test_window_leaves_one_event(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("a", 1.0)
        trace.record("a", 50.0)
        assert trace.check_conservative("a", periodic(10.0),
                                        window=(40.0, 60.0))

    def test_violation_still_detected(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("a", 1.0)
        assert not trace.check_conservative("a", periodic(10.0))

    def test_window_restricts_check(self):
        trace = EventTrace()
        trace.record("a", 0.0)
        trace.record("a", 1.0)   # violating pair, outside the window
        trace.record("a", 20.0)
        trace.record("a", 30.0)
        assert trace.check_conservative("a", periodic(10.0),
                                        window=(15.0, 35.0))

    def test_n_max_clamps_window_length(self):
        trace = EventTrace()
        for t in (0.0, 10.0, 20.0, 25.0):  # δ(4)=25 < periodic 30
            trace.record("a", t)
        assert not trace.check_conservative("a", periodic(10.0))
        # n_max=2 only checks adjacent pairs, all >= 5 apart
        assert trace.check_conservative("a", periodic(5.0), n_max=2)
