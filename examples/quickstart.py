#!/usr/bin/env python3
"""Quickstart: pack two signals into a frame, cross a bus, unpack.

Walks the paper's pipeline on a toy example:

1. describe signal streams with standard event models,
2. pack them with the hierarchical constructor Ω_pa,
3. send the frame across an analysed bus (Θ_τ + inner update),
4. unpack the per-signal streams and compare against the flat view,
5. let the compositional engine do all of the above automatically:
   the same pipeline as a system graph, solved by the global
   fixed-point iteration.

Run:  python examples/quickstart.py

To watch the engine converge, run it traced instead:

    python -m repro trace examples/quickstart.py
"""

from repro import (
    BusyWindowOutput,
    JunctionKind,
    SPNPScheduler,
    SPPScheduler,
    System,
    TransferProperty,
    analyze_system,
    apply_operation,
    hsc_pack,
    periodic,
    unpack,
)
from repro.viz import render_table


def main() -> None:
    # 1. Two application signals: a fast triggering one, a slow pending
    #    one that just rides along.
    speed = periodic(250.0, "speed")        # triggers a frame per value
    diagnostics = periodic(1000.0, "diag")  # pending: waits for a ride

    # 2. Pack them into one frame.  The mixed frame also has a 1000-unit
    #    transmission timer, so pending data never starves.
    frame = hsc_pack(
        {
            "speed": (speed, TransferProperty.TRIGGERING),
            "diag": (diagnostics, TransferProperty.PENDING),
        },
        timer=periodic(1000.0, "timer"),
        name="F1",
    )
    print("Frame activation stream (outer):")
    print("  delta_min(2..5) =",
          [frame.delta_min(n) for n in range(2, 6)])

    # 3. The frame crosses a bus with response times in [40, 120].
    after_bus = apply_operation(frame, BusyWindowOutput(40.0, 120.0))

    # 4. Unpack: the receiver analyses each consumer against ITS stream,
    #    not against every frame.
    signals = unpack(after_bus)
    rows = []
    horizon = 2000.0
    rows.append(("all frames (flat view)", after_bus.eta_plus(horizon)))
    for label, model in signals.items():
        rows.append((f"unpacked {label!r}", model.eta_plus(horizon)))
    print()
    print(f"Max activations in any window of {horizon:g} time units:")
    print(render_table(["stream", "eta+"], rows))
    print()
    print("The unpacked streams are far sparser than the frame stream -")
    print("that gap is exactly the overestimation hierarchical event")
    print("models remove from receiver-side response-time analysis.")

    # 5. The same pipeline as a system graph: the global fixed-point
    #    engine packs, analyses the bus, applies the inner update, and
    #    unpacks at the receiver — iterating until every response time
    #    and propagated stream is stable.
    s = System("quickstart")
    s.add_source("speed", speed)
    s.add_source("diag", diagnostics)
    s.add_source("timer", periodic(1000.0, "timer"))
    s.add_junction("F1", JunctionKind.PACK, ["speed", "diag"],
                   properties={"speed": TransferProperty.TRIGGERING,
                               "diag": TransferProperty.PENDING},
                   timer="timer")
    s.add_resource("bus", SPNPScheduler())
    s.add_task("frame", "bus", (40.0, 120.0), ["F1"], priority=1)
    s.add_junction("rx", JunctionKind.UNPACK, ["frame"])
    s.add_resource("cpu", SPPScheduler())
    s.add_task("on_speed", "cpu", (20.0, 60.0), ["rx.speed"], priority=1)
    s.add_task("on_diag", "cpu", (10.0, 80.0), ["rx.diag"], priority=2)

    result = analyze_system(s)
    print()
    print(f"Compositional analysis converged in {result.iterations} "
          f"global iteration(s):")
    print(render_table(
        ["task", "R-", "R+"],
        [(name, result.task_result(name).r_min,
          result.task_result(name).r_max)
         for name in ("frame", "on_speed", "on_diag")]))


if __name__ == "__main__":
    main()
