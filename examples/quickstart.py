#!/usr/bin/env python3
"""Quickstart: pack two signals into a frame, cross a bus, unpack.

Walks the paper's pipeline on a toy example:

1. describe signal streams with standard event models,
2. pack them with the hierarchical constructor Ω_pa,
3. send the frame across an analysed bus (Θ_τ + inner update),
4. unpack the per-signal streams and compare against the flat view.

Run:  python examples/quickstart.py
"""

from repro import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    hsc_pack,
    periodic,
    unpack,
)
from repro.viz import render_table


def main() -> None:
    # 1. Two application signals: a fast triggering one, a slow pending
    #    one that just rides along.
    speed = periodic(250.0, "speed")        # triggers a frame per value
    diagnostics = periodic(1000.0, "diag")  # pending: waits for a ride

    # 2. Pack them into one frame.  The mixed frame also has a 1000-unit
    #    transmission timer, so pending data never starves.
    frame = hsc_pack(
        {
            "speed": (speed, TransferProperty.TRIGGERING),
            "diag": (diagnostics, TransferProperty.PENDING),
        },
        timer=periodic(1000.0, "timer"),
        name="F1",
    )
    print("Frame activation stream (outer):")
    print("  delta_min(2..5) =",
          [frame.delta_min(n) for n in range(2, 6)])

    # 3. The frame crosses a bus with response times in [40, 120].
    after_bus = apply_operation(frame, BusyWindowOutput(40.0, 120.0))

    # 4. Unpack: the receiver analyses each consumer against ITS stream,
    #    not against every frame.
    signals = unpack(after_bus)
    rows = []
    horizon = 2000.0
    rows.append(("all frames (flat view)", after_bus.eta_plus(horizon)))
    for label, model in signals.items():
        rows.append((f"unpacked {label!r}", model.eta_plus(horizon)))
    print()
    print(f"Max activations in any window of {horizon:g} time units:")
    print(render_table(["stream", "eta+"], rows))
    print()
    print("The unpacked streams are far sparser than the frame stream -")
    print("that gap is exactly the overestimation hierarchical event")
    print("models remove from receiver-side response-time analysis.")


if __name__ == "__main__":
    main()
