#!/usr/bin/env python3
"""CAN-to-Ethernet gateway: HEM propagation across a multi-hop backbone.

A full in-engine version of the nested-hierarchy story: sensor signals
are packed into a CAN frame, cross the CAN bus, and the gateway forwards
the frame stream as an Ethernet flow through two strict-priority switch
hops.  The hierarchical event model rides through every hop (Θ_τ on the
outer stream, Definition 9 on the inner streams), so the final receiver
unpacks tight per-signal activation models four hops from the sources.

Run:  python examples/ethernet_backbone.py
"""

from repro import SPPScheduler, TransferProperty, periodic
from repro.can import CanBus
from repro.com import ComLayer, Frame, FrameType, Signal
from repro.ethernet import EthernetLink, Flow, SwitchedNetwork
from repro.system import JunctionKind, System, analyze_system, path_latency
from repro.system.propagation import _StreamResolver
from repro.viz import render_table

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def main() -> None:
    system = System("can-eth-gateway")

    # Sources on the sensor ECU.
    system.add_source("speed", periodic(200.0, "speed"))
    system.add_source("torque", periodic(350.0, "torque"))
    system.add_source("diag", periodic(1500.0, "diag"))

    # CAN side: one mixed frame carries all three signals.
    bus = CanBus.from_bitrate("CAN", 2.0)
    bus.install(system)
    com = ComLayer("sensor-ecu")
    com.add_frame(Frame(
        "SENSORS", FrameType.MIXED,
        [Signal("speed", 16, TRIG), Signal("torque", 16, TRIG),
         Signal("diag", 16, PEND)],
        period=1000.0, can_id=1))
    com.install(system, "CAN", bus.timing,
                {"speed": "speed", "torque": "torque", "diag": "diag"})

    # Ethernet backbone: the gateway forwards every received CAN frame
    # as one Ethernet frame through two switches; a bulk flow competes.
    net = SwitchedNetwork("backbone")
    link = EthernetLink.mbps(100.0)
    net.add_port("gw.out", link)
    net.add_port("sw.out", link)
    net.add_flow(Flow("sensors", "SENSORS", ["gw.out", "sw.out"],
                      payload_bytes=100, priority=1))
    system.add_source("nas", periodic(250.0, "nas"))
    net.add_flow(Flow("bulk", "nas", ["gw.out", "sw.out"],
                      payload_bytes=1500, priority=2))
    sinks = net.install(system)

    # Receiver ECU: unpack AFTER the Ethernet hops and bound three
    # consumer tasks by their own signal streams.
    system.add_junction("rx", JunctionKind.UNPACK, [sinks["sensors"]])
    system.add_resource("RXCPU", SPPScheduler())
    consumers = {"speed_task": ("speed", 15.0, 1),
                 "torque_task": ("torque", 25.0, 2),
                 "diag_task": ("diag", 40.0, 3)}
    for task, (signal, cet, prio) in consumers.items():
        system.add_task(task, "RXCPU", (cet, cet), [f"rx.{signal}"],
                        priority=prio)

    result = analyze_system(system)
    print(f"Global analysis converged in {result.iterations} iterations.")

    rows = []
    for name in ("SENSORS", "sensors@gw.out", "sensors@sw.out",
                 *consumers):
        rows.append((name, result.wcrt(name)))
    print(render_table(["task / hop", "WCRT"], rows))

    lat = path_latency(system, result,
                       ["speed", "SENSORS_pack", "SENSORS",
                        "sensors@gw.out", "sensors@sw.out", "rx",
                        "speed_task"])
    print(f"\nEnd-to-end latency speed -> speed_task: "
          f"[{lat.best_case:.1f}, {lat.worst_case:.1f}]")

    # Compare against the flat receiver (every Ethernet sensor frame
    # activates every task).
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    delivered = resolver.port(sinks["sensors"])
    flat_rows = []
    horizon = 3000.0
    flat_rows.append(("all sensor frames", delivered.eta_plus(horizon)))
    for label in delivered.labels:
        flat_rows.append((f"unpacked {label!r}",
                          delivered.inner(label).eta_plus(horizon)))
    print(f"\nActivations possible in any {horizon:g}-unit window at "
          f"the receiver:")
    print(render_table(["stream", "eta+"], flat_rows))


if __name__ == "__main__":
    main()
