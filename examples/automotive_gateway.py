#!/usr/bin/env python3
"""The paper's evaluation system end to end (section 6, Fig. 2).

Builds the 4-source / 2-frame / 3-task automotive system from the paper's
Tables 1-3, runs the global compositional analysis twice — once with flat
event streams (standard event models) and once with hierarchical event
models — and prints the Table 3 comparison plus the Figure 4 curves.

Run:  python examples/automotive_gateway.py
"""

from repro.examples_lib.rox08 import (
    CPU_TASKS,
    SOURCES,
    analyze_both_variants,
    build_system,
)
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import eta_plus_series, render_step_chart, render_table


def main() -> None:
    print("Sources (Table 1):")
    print(render_table(
        ["source", "period", "type"],
        [(n, p, prop.value) for n, (p, prop) in SOURCES.items()]))
    print()

    comparison = analyze_both_variants()
    rows = [(task, flat, hem, f"{red:.1f}%")
            for task, flat, hem, red in comparison.rows()]
    print("Worst-case response times on CPU1 (Table 3):")
    print(render_table(["task", "R+ flat", "R+ HEM", "reduction"], rows))
    print()

    # Figure 4: eta+ of the frame output stream vs the unpacked signals.
    system = build_system("hem")
    result = analyze_system(system)
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    frame_out = resolver.port("F1")

    series = {"F1 frames": eta_plus_series(frame_out.outer, 2000.0, 25.0)}
    for label in frame_out.labels:
        series[f"signal {label}"] = eta_plus_series(
            frame_out.inner(label), 2000.0, 25.0)
    print(render_step_chart(
        series, title="Figure 4: eta+ of F1 output vs unpacked signals"))


if __name__ == "__main__":
    main()
