#!/usr/bin/env python3
"""Nested stream hierarchies: a two-level gateway.

The paper generalises event streams to "hierarchies" — its evaluation
packs signals into CAN frames (one level).  A realistic automotive
gateway adds a second level: whole CAN frames forwarded inside backbone
super-frames (FlexRay static slots, Ethernet containers).  This example
builds that two-level hierarchy, sends it across two analysed hops, and
unpacks the leaf signals — showing that Definition 9's inner update
composes through nesting.

Run:  python examples/nested_gateway.py
"""

from repro import (
    BusyWindowOutput,
    TransferProperty,
    apply_operation,
    depth,
    hsc_pack,
    periodic,
    unpack_deep,
)
from repro.viz import render_table

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING


def main() -> None:
    # Level 1: signals packed into two CAN frames.
    f1 = hsc_pack(
        {"wheel_speed": (periodic(100.0, "wheel_speed"), TRIG),
         "tyre_temp": (periodic(800.0, "tyre_temp"), PEND)},
        timer=periodic(500.0), name="F1")
    f2 = hsc_pack(
        {"steer_angle": (periodic(200.0, "steer_angle"), TRIG)},
        name="F2")

    # CAN hop: both frames are analysed on their bus (response
    # intervals from an SPNP analysis; here taken as given).
    f1_after_can = apply_operation(f1, BusyWindowOutput(12.0, 40.0))
    f2_after_can = apply_operation(f2, BusyWindowOutput(10.0, 55.0))

    # Level 2: the gateway re-packs both frame streams into one backbone
    # super-frame (each arriving CAN frame triggers a forwarding).
    backbone = hsc_pack(
        {"F1": (f1_after_can, TRIG), "F2": (f2_after_can, TRIG)},
        timer=periodic(1000.0), name="BB")
    print(f"Backbone hierarchy depth: {depth(backbone)} "
          f"(signals -> CAN frames -> super-frame)")

    # Backbone hop: the super-frame crosses the fast network.
    delivered = apply_operation(backbone, BusyWindowOutput(2.0, 9.0))

    # Receiver: unpack the LEAF streams through both levels.
    leaves = unpack_deep(delivered)
    horizon = 2000.0
    rows = [("all super-frames (flat view)",
             delivered.eta_plus(horizon))]
    rows += [(f"leaf {path!r}", model.eta_plus(horizon))
             for path, model in sorted(leaves.items())]
    print()
    print(f"Max activations in any window of {horizon:g}:")
    print(render_table(["stream", "eta+"], rows))
    print()
    print("Each receiver task is bounded by its own leaf stream, two")
    print("packing levels deep - not by the backbone frame storm.")


if __name__ == "__main__":
    main()
