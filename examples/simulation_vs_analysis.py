#!/usr/bin/env python3
"""Validate the analytic bounds with the discrete-event simulator.

Runs the paper's system in simulation (sources → COM layer → CAN bus →
receiver CPU) under critical-instant stimuli, then checks

* observed worst-case response times  <=  analysed WCRT bounds, and
* observed per-signal delivery streams stay inside the unpacked inner
  event models (the streams HEM analysis feeds to the receiver tasks).

Run:  python examples/simulation_vs_analysis.py
"""

from repro.can import CanBusTiming
from repro.examples_lib.rox08 import (
    BIT_TIME,
    CPU_TASKS,
    TASK_SIGNAL,
    build_com_layer,
    build_source_models,
    build_system,
)
from repro.eventmodels import trace_within_bounds
from repro.sim import GatewayScenario, arrivals_for_models, simulate_gateway
from repro.system import analyze_system
from repro.system.propagation import _StreamResolver
from repro.viz import render_table

HORIZON = 100_000.0


def main() -> None:
    layer = build_com_layer()
    models = build_source_models()
    scenario = GatewayScenario(
        layer=layer,
        bus_timing=CanBusTiming(BIT_TIME),
        signal_arrivals=arrivals_for_models(models, HORIZON, mode="worst"),
        cpu_tasks={t: (prio, cet, TASK_SIGNAL[t])
                   for t, (cet, prio) in CPU_TASKS.items()},
    )
    run = simulate_gateway(scenario, HORIZON)

    system = build_system("hem")
    result = analyze_system(system)

    rows = []
    for name in ("F1", "F2", "T1", "T2", "T3"):
        observed = run.responses.worst_case(name)
        bound = result.wcrt(name)
        rows.append((name, observed, bound,
                     "OK" if observed <= bound + 1e-6 else "VIOLATION"))
    print(f"Simulated {HORIZON:g} time units (critical-instant stimuli):")
    print(render_table(
        ["task/frame", "observed WCRT", "analysed bound", "verdict"], rows))
    print()

    # Per-signal delivery streams vs unpacked inner models.
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    frame_out = resolver.port("F1")
    rows = []
    for label in frame_out.labels:
        delivered = run.delivered(label)
        ok = trace_within_bounds(delivered, frame_out.inner(label))
        rows.append((label, len(delivered), "inside bound" if ok
                     else "BOUND VIOLATED"))
    print("Delivered signal streams vs unpacked inner event models:")
    print(render_table(["signal", "deliveries", "verdict"], rows))


if __name__ == "__main__":
    main()
