#!/usr/bin/env python3
"""Both hierarchy dimensions together: servers AND stream hierarchies.

The paper's introduction observes that local analysis had already been
extended to hierarchical *scheduling* (Shin & Lee's periodic resource
model) while event *streams* were still flat.  This example combines the
two: the receiver tasks of a packed CAN frame run inside a periodic
resource (a partition / virtualised share of a CPU), analysed with the
supply-bound-function busy window — activated by the HEM-unpacked
per-signal streams.

Run:  python examples/hierarchical_scheduling.py
"""

from repro import (
    BusyWindowOutput,
    HierarchicalSPPScheduler,
    PeriodicResource,
    TaskSpec,
    TransferProperty,
    apply_operation,
    hsc_pack,
    periodic,
    unpack,
)
from repro.viz import render_table


def main() -> None:
    # Sender side: three signals packed into one mixed frame.
    frame = hsc_pack(
        {
            "ctrl": (periodic(200.0, "ctrl"), TransferProperty.TRIGGERING),
            "status": (periodic(600.0, "status"),
                       TransferProperty.TRIGGERING),
            "log": (periodic(2000.0, "log"), TransferProperty.PENDING),
        },
        timer=periodic(1000.0, "timer"),
        name="Fx",
    )
    # The frame crosses a bus with response times in [30, 90].
    after_bus = apply_operation(frame, BusyWindowOutput(30.0, 90.0))
    signals = unpack(after_bus)

    # Receiver side: the consumer partition owns 40% of the CPU as a
    # periodic resource (budget 40 every 100).
    server = PeriodicResource(period=100.0, budget=40.0)
    scheduler = HierarchicalSPPScheduler(server)
    tasks = [
        TaskSpec("ctrl_task", 8.0, 8.0, signals["ctrl"], priority=1),
        TaskSpec("status_task", 12.0, 12.0, signals["status"], priority=2),
        TaskSpec("log_task", 15.0, 15.0, signals["log"], priority=3),
    ]
    inside = scheduler.analyze(tasks, "partition")

    # Baseline 1: same tasks, same server, but activated by the FLAT
    # frame stream (every frame could be for anyone).
    flat_tasks = [
        TaskSpec(t.name, t.c_min, t.c_max, after_bus.outer,
                 priority=t.priority) for t in tasks
    ]
    flat = scheduler.analyze(flat_tasks, "partition-flat")

    rows = [(t.name, flat[t.name].r_max, inside[t.name].r_max,
             f"{100 * (1 - inside[t.name].r_max / flat[t.name].r_max):.1f}%")
            for t in tasks]
    print(f"Periodic resource {server.period}/{server.budget} "
          f"(bandwidth {server.bandwidth:.0%}), SPP inside:")
    print(render_table(
        ["task", "R+ flat streams", "R+ HEM streams", "reduction"], rows))
    print()
    print("Supply bound function of the server (first 3 periods):")
    pts = [(t, server.sbf(t)) for t in range(0, 301, 25)]
    print(render_table(["t", "sbf(t)"], pts, floatfmt=".0f"))


if __name__ == "__main__":
    main()
