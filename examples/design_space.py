#!/usr/bin/env python3
"""Design-space exploration: packing, offsets, errors, headroom, sweeps.

Beyond reproducing the paper's numbers, the library is a design tool.
This example walks the decisions an integrator faces on one CAN cluster:

1. How should signals be packed into frames?  (packing strategies)
2. What do transmit offsets buy on the bus?   (offset-aware joins)
3. What does a fault model cost?              (CAN error frames)
4. How much execution-time headroom is left?  (a sensitivity *job*)
5. How does the whole neighbourhood behave?   (batch design-space sweep)

Steps 4-5 go through :mod:`repro.batch`: the sensitivity search and the
WCET x period sweep are content-addressed jobs, so re-running the sweep
serves every unchanged point from the persistent result cache — kill it
half-way and run again, only the missing points execute.

Run:  python examples/design_space.py
"""

import tempfile

from repro import (
    BatchRunner,
    CanErrorModel,
    ResultStore,
    SPNPScheduler,
    SPPScheduler,
    TaskSpec,
    make_backend,
    offset_join,
    or_join,
    periodic,
)
from repro.batch import Job, run_job, taskspec_to_dict
from repro.batch.spaces import quickstart_space
from repro.can import CanBusTiming, frame_bits_max
from repro.com import (
    Signal,
    estimate_bus_load,
    frame_activation_model,
    pack_by_period,
    pack_first_fit,
)
from repro.core import TransferProperty
from repro.viz import render_table

PEND = TransferProperty.PENDING
BIT_TIME = 0.5


def step1_packing(signals, models):
    print("1) Packing strategy (8 pending signals, derived timers):")
    rows = []
    for name, builder in (("period-grouped", pack_by_period),
                          ("first-fit", pack_first_fit)):
        layer = builder(signals, models)
        load = estimate_bus_load(layer, models, bit_time=BIT_TIME)
        rows.append((name, len(layer.frames), load,
                     "OK" if load < 1 else "OVERLOAD"))
    print(render_table(["strategy", "frames", "bus load", "verdict"],
                       rows, floatfmt=".2f"))
    return pack_by_period(signals, models)


def step2_offsets():
    print("\n2) Transmit offsets (4 nodes, shared 1000-unit base):")
    blind = or_join([periodic(1000.0)] * 4)
    aware = offset_join(1000.0, [0.0, 250.0, 500.0, 750.0])
    rows = [("offset-blind (OR-join)", blind.delta_min(4),
             blind.eta_plus(300.0)),
            ("offset-aware", aware.delta_min(4), aware.eta_plus(300.0))]
    print(render_table(["model", "delta-(4)", "eta+(300)"], rows))


def step3_errors(layer, models):
    print("\n3) Fault model (error frames + retransmissions):")
    timing = CanBusTiming(BIT_TIME)
    specs = []
    for frame in layer.frames.values():
        act = frame_activation_model(frame, models)
        wire = timing.transmission_time_max(frame.payload_bytes)
        specs.append(TaskSpec(frame.name, wire, wire, act,
                              priority=frame.can_id))
    recovery = CanErrorModel.recovery_time_for(BIT_TIME,
                                               frame_bits_max(8))
    rows = []
    for label, model in (
            ("no errors", None),
            ("1 burst error", CanErrorModel(1, 0.0, recovery)),
            ("1 burst + 1e-4 rate", CanErrorModel(1, 1e-4, recovery))):
        result = SPNPScheduler(error_model=model).analyze(specs, "CAN")
        worst = max(r.r_max for r in result.task_results.values())
        rows.append((label, worst))
    print(render_table(["fault model", "worst frame WCRT"], rows))


def step4_headroom():
    print("\n4) Receiver execution-time headroom (as a batch job):")
    tasks = [
        TaskSpec("ctrl", 8.0, 8.0, periodic(100.0), priority=1),
        TaskSpec("logger", 20.0, 20.0, periodic(500.0), priority=2),
    ]
    job = Job("wcet_scaling", {
        "scheduler": {"policy": "spp"},
        "tasks": [taskspec_to_dict(t) for t in tasks],
        "deadlines": {"ctrl": 100.0, "logger": 500.0},
    }, label="cpu headroom")
    result = run_job(job)
    factor = result.data["factor"]
    print(f"   all WCETs can grow {factor:.2f}x before a deadline miss")
    print(f"   (job {job.key[:12]}..., {result.status} in "
          f"{result.duration:.3f}s)")


def step5_sweep():
    print("\n5) Batch sweep of the WCET x period neighbourhood:")
    space = quickstart_space()
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = space.run(BatchRunner(store=ResultStore(cache_dir),
                                     backend=make_backend(0)))
        print(cold.table())
        point, worst = cold.best("worst_wcrt")
        print(f"   most stressed feasible point: {point} "
              f"(worst WCRT {worst:.1f})")
        # Same sweep again: every point is served from the result cache.
        warm = space.run(BatchRunner(store=ResultStore(cache_dir),
                                     backend=make_backend(0)))
        print(f"   cold run: {cold.report.summary()}")
        print(f"   warm run: {warm.report.summary()}")


def main() -> None:
    signals = []
    models = {}
    for i in range(1, 5):
        fast = Signal(f"fast{i}", 16, PEND)
        slow = Signal(f"slow{i}", 16, PEND)
        signals += [fast, slow]
        models[fast.name] = periodic(100.0, fast.name)
        models[slow.name] = periodic(2000.0, slow.name)

    layer = step1_packing(signals, models)
    step2_offsets()
    step3_errors(layer, models)
    step4_headroom()
    step5_sweep()


if __name__ == "__main__":
    main()
