#!/usr/bin/env python3
"""Design-space exploration: packing, offsets, error models, headroom.

Beyond reproducing the paper's numbers, the library is a design tool.
This example walks the decisions an integrator faces on one CAN cluster:

1. How should signals be packed into frames?  (packing strategies)
2. What do transmit offsets buy on the bus?   (offset-aware joins)
3. What does a fault model cost?              (CAN error frames)
4. How much execution-time headroom is left?  (sensitivity search)

Run:  python examples/design_space.py
"""

from repro import (
    CanErrorModel,
    SPNPScheduler,
    SPPScheduler,
    TaskSpec,
    max_wcet_scaling,
    offset_join,
    or_join,
    periodic,
)
from repro.can import CanBusTiming, frame_bits_max
from repro.com import (
    Signal,
    estimate_bus_load,
    frame_activation_model,
    pack_by_period,
    pack_first_fit,
)
from repro.core import TransferProperty
from repro.viz import render_table

PEND = TransferProperty.PENDING
BIT_TIME = 0.5


def step1_packing(signals, models):
    print("1) Packing strategy (8 pending signals, derived timers):")
    rows = []
    for name, builder in (("period-grouped", pack_by_period),
                          ("first-fit", pack_first_fit)):
        layer = builder(signals, models)
        load = estimate_bus_load(layer, models, bit_time=BIT_TIME)
        rows.append((name, len(layer.frames), load,
                     "OK" if load < 1 else "OVERLOAD"))
    print(render_table(["strategy", "frames", "bus load", "verdict"],
                       rows, floatfmt=".2f"))
    return pack_by_period(signals, models)


def step2_offsets():
    print("\n2) Transmit offsets (4 nodes, shared 1000-unit base):")
    blind = or_join([periodic(1000.0)] * 4)
    aware = offset_join(1000.0, [0.0, 250.0, 500.0, 750.0])
    rows = [("offset-blind (OR-join)", blind.delta_min(4),
             blind.eta_plus(300.0)),
            ("offset-aware", aware.delta_min(4), aware.eta_plus(300.0))]
    print(render_table(["model", "delta-(4)", "eta+(300)"], rows))


def step3_errors(layer, models):
    print("\n3) Fault model (error frames + retransmissions):")
    timing = CanBusTiming(BIT_TIME)
    specs = []
    for frame in layer.frames.values():
        act = frame_activation_model(frame, models)
        wire = timing.transmission_time_max(frame.payload_bytes)
        specs.append(TaskSpec(frame.name, wire, wire, act,
                              priority=frame.can_id))
    recovery = CanErrorModel.recovery_time_for(BIT_TIME,
                                               frame_bits_max(8))
    rows = []
    for label, model in (
            ("no errors", None),
            ("1 burst error", CanErrorModel(1, 0.0, recovery)),
            ("1 burst + 1e-4 rate", CanErrorModel(1, 1e-4, recovery))):
        result = SPNPScheduler(error_model=model).analyze(specs, "CAN")
        worst = max(r.r_max for r in result.task_results.values())
        rows.append((label, worst))
    print(render_table(["fault model", "worst frame WCRT"], rows))


def step4_headroom():
    print("\n4) Receiver execution-time headroom:")
    tasks = [
        TaskSpec("ctrl", 8.0, 8.0, periodic(100.0), priority=1),
        TaskSpec("logger", 20.0, 20.0, periodic(500.0), priority=2),
    ]
    deadlines = {"ctrl": 100.0, "logger": 500.0}
    factor = max_wcet_scaling(SPPScheduler(), tasks, deadlines)
    print(f"   all WCETs can grow {factor:.2f}x before a deadline miss")


def main() -> None:
    signals = []
    models = {}
    for i in range(1, 5):
        fast = Signal(f"fast{i}", 16, PEND)
        slow = Signal(f"slow{i}", 16, PEND)
        signals += [fast, slow]
        models[fast.name] = periodic(100.0, fast.name)
        models[slow.name] = periodic(2000.0, slow.name)

    layer = step1_packing(signals, models)
    step2_offsets()
    step3_errors(layer, models)
    step4_headroom()


if __name__ == "__main__":
    main()
