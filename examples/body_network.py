#!/usr/bin/env python3
"""Case study: a two-bus body/powertrain network with a gateway ECU.

Runs the larger built-in case study (6 signals, 5 frames, 2 CAN buses at
different bit rates, 3 CPUs, a gateway task chain that re-packs
powertrain data onto the body bus) through the global analysis and
prints WCRTs, bus utilisations, end-to-end path latencies, and frame
queue bounds.

Run:  python examples/body_network.py
"""

from repro.analysis import backlog_bound
from repro.examples_lib.body_gateway import DISPLAY_TASKS, PATHS, build
from repro.system import analyze_system, path_latency
from repro.system.propagation import _StreamResolver
from repro.viz import render_table


def main() -> None:
    system = build()
    result = analyze_system(system)
    print(f"Converged in {result.iterations} global iterations.\n")

    rows = [(bus, result.resource_results[bus].utilization)
            for bus in ("CAN_P", "CAN_B")]
    print(render_table(["bus", "utilisation"], rows, floatfmt=".2f"))
    print()

    rows = [(name, result.wcrt(name)) for name in
            ("PT_FAST", "PT_SLOW", "BODY_DOORS", "BODY_CLIMATE",
             "GW_STATUS", "gw_fuse", *DISPLAY_TASKS)]
    print(render_table(["task / frame", "WCRT (us)"], rows))
    print()

    rows = []
    for name, path in PATHS.items():
        lat = path_latency(system, result, path)
        rows.append((name, lat.best_case, lat.worst_case))
    print(render_table(["end-to-end path", "best", "worst"], rows))
    print()

    # Frame queue dimensioning on the buses.
    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    rows = []
    for frame in ("PT_FAST", "BODY_DOORS", "GW_STATUS"):
        act = resolver.activation_model(system.tasks[frame])
        rows.append((frame,
                     backlog_bound(result.task_result(frame), act)))
    print("Transmit-queue depth bounds (messages):")
    print(render_table(["frame", "max queued"], rows))


if __name__ == "__main__":
    main()
