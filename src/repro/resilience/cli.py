"""``python -m repro resilience`` — degraded analysis and fault drills.

Runs a built-in example through the degraded global fixed point and
prints the health map, the conservativeness certificates, and the
per-task WCRT bounds::

    python -m repro resilience overloaded
    python -m repro resilience rox08 --faults 3 --seed 42
    python -m repro resilience oscillating --json outcome.json
    python -m repro resilience rox08 --metamorphic --seed 7

``--faults N`` injects a reproducible random fault plan (seeded by
``--seed``) before analysing; ``--metamorphic`` additionally runs the
monotone-conservativeness ladder (fault-free baseline plus every prefix
of the plan) and exits non-zero on any violation — this is the CI
chaos-smoke entry point.  ``--json PATH`` writes the full
:class:`~repro.resilience.outcome.AnalysisOutcome` dict (plus the fault
plan and violation list) as the machine-readable artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Callable, Dict, Optional, Sequence

from ..system.model import System

#: Built-in example systems: name -> zero-arg System factory.
EXAMPLES: Dict[str, Callable[[], System]] = {}


def _register_examples() -> None:
    if EXAMPLES:
        return
    from ..examples_lib import body_gateway, rox08, stress
    EXAMPLES["rox08"] = lambda: rox08.build_system("hem")
    EXAMPLES["rox08-flat"] = lambda: rox08.build_system("flat")
    EXAMPLES["body_gateway"] = body_gateway.build
    EXAMPLES["overloaded"] = stress.build_overloaded
    EXAMPLES["oscillating"] = stress.build_oscillating


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if math.isinf(value):
        return "inf"
    return f"{value:g}"


def resilience_main(argv: Optional[Sequence[str]] = None) -> int:
    _register_examples()
    parser = argparse.ArgumentParser(
        prog="python -m repro resilience",
        description="Degraded analysis with health reporting, optional "
                    "seeded fault injection, and metamorphic checks.")
    parser.add_argument(
        "example", choices=sorted(EXAMPLES),
        help="built-in example system to analyse")
    parser.add_argument(
        "--faults", type=int, default=0, metavar="N",
        help="inject a random plan of N faults before analysing")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the fault plan (default 0)")
    parser.add_argument(
        "--max-iterations", type=int, default=None,
        help="global iteration budget (default: engine default)")
    parser.add_argument(
        "--metamorphic", action="store_true",
        help="run the monotone-conservativeness ladder over the fault "
             "plan prefixes; exit 1 on violations")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the AnalysisOutcome (plus plan and violations) as "
             "JSON to PATH")
    args = parser.parse_args(argv)

    from ..system.propagation import DEFAULT_MAX_ITERATIONS, analyze_system
    from .faultinject import (
        FaultPlan,
        check_monotone_conservativeness,
        inject_faults,
    )

    max_iterations = args.max_iterations or DEFAULT_MAX_ITERATIONS
    system = EXAMPLES[args.example]()

    plan = FaultPlan(seed=args.seed)
    if args.faults > 0:
        plan = FaultPlan.sample(system, args.seed, n_faults=args.faults)
        print(plan.describe())
        print()
    target = inject_faults(system, plan) if plan.faults else system

    outcome = analyze_system(target, max_iterations=max_iterations,
                             on_failure="degrade")
    print(f"=== {system.name} ===")
    print(outcome.summary())

    print("\ntask bounds:")
    for name in sorted(system.tasks):
        wcrt = outcome.wcrt(name)
        tr = (outcome.result.task_result(name)
              if outcome.result is not None else None)
        flag = " [degraded]" if tr is not None and tr.degraded else ""
        print(f"  {name:<12} r_max={_fmt(wcrt)}{flag}")

    if outcome.certificates:
        print("\nconservativeness certificates:")
        for cert in outcome.certificates:
            print(f"  {cert.port} ({cert.reason}): {cert.substitute}")
            print(f"    argument: {cert.argument}")

    violations = []
    if args.metamorphic:
        ladder = [FaultPlan(plan.faults[:i], seed=plan.seed)
                  for i in range(len(plan.faults) + 1)]
        violations = check_monotone_conservativeness(
            system, ladder, max_iterations=max_iterations)
        print(f"\nmetamorphic ladder ({len(ladder)} rungs): "
              f"{len(violations)} violations")
        for violation in violations:
            print(f"  VIOLATION {violation['task']}: "
                  f"{violation['wcrt_before']:g} -> "
                  f"{violation['wcrt_after']:g} after adding "
                  f"{violation['added_faults']}")

    if args.json:
        payload = outcome.to_dict()
        payload["example"] = args.example
        payload["fault_plan"] = {
            "seed": plan.seed,
            "faults": [{"kind": f.kind, "target": f.target,
                        "magnitude": f.magnitude} for f in plan.faults],
        }
        payload["metamorphic_violations"] = violations
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\noutcome -> {args.json}")

    if violations:
        print("metamorphic check FAILED", file=sys.stderr)
        return 1
    return 0
