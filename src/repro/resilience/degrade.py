"""Graceful-degradation engine: the degraded global fixed point.

Strict compositional analysis is all-or-nothing: one overloaded bus and
:func:`~repro.system.propagation.analyze_system` raises, discarding every
bound it had already computed for the healthy 95 % of the system.  The
degraded engine (reached via ``analyze_system(..., on_failure="degrade")``)
keeps going instead:

1. A resource whose local analysis fails is **quarantined**: it is
   excluded from further iterations and its health is recorded
   (``overloaded`` for :class:`~repro._errors.NotSchedulableError`,
   ``quarantined`` for model/cascade failures, ``diverged`` when the
   :class:`~repro.resilience.guards.DivergenceGuard` aborted it).
2. Every output port of a quarantined resource is replaced by a
   **guaranteed-conservative widened event model**, and the substitution
   is recorded as a :class:`ConservativenessCertificate`:

   * *Overload / cascade widening* — the sporadic envelope
     ``sporadic(c_min)``.  Completions of a single task are serialised
     by its own execution, so any feasible output stream satisfies
     δ⁻(2) >= c_min; by δ⁻ superadditivity (δ⁻(n) >= (n-1)·δ⁻(2)) the
     sporadic model with period ``c_min`` lower-bounds every feasible
     distance function and therefore upper-bounds η⁺ — conservative for
     every downstream consumer.  When ``c_min == 0`` no serialisation
     bound exists and the :class:`UnboundedEnvelope` (δ⁻ ≡ 0) is
     installed; consumers then fail with
     :class:`~repro._errors.UnboundedStreamError`, deliberately
     cascading the quarantine downstream rather than certifying an
     unsound bound.
   * *Divergence widening* — the response interval is frozen to the
     min/max observed across the iteration history and the output model
     becomes Θ_τ(activation, frozen interval).  This over-approximates
     every response the iteration actually visited; for a limit cycle
     the observed range brackets the cycle, which is exactly the case
     the oscillation guard detects.  (For monotone growth the observed
     range is *not* a bound on the true supremum — the certificate says
     so — but it is the tightest statement the run supports, and the
     resource is flagged ``diverged`` so no one mistakes it for a clean
     bound.)

3. The remaining healthy resources iterate to a fixed point against the
   widened inputs, so their bounds are valid (conservative) WCRTs of the
   degraded system.

The engine never raises for *analysis* failures; it always returns an
:class:`~repro.resilience.outcome.AnalysisOutcome`.  Model-construction
errors detected by :meth:`System.validate` (dangling ports, bad
parameters) still raise — they are caller bugs, not properties of the
analysed system, and no conservative substitution exists for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from ..obs.bus import BUS as _BUS
from .._errors import (
    AnalysisError,
    ModelError,
    NotSchedulableError,
    UnboundedStreamError,
)
from ..analysis.interface import TaskSpec
from ..analysis.memo import AnalysisMemo
from ..analysis.results import ResourceResult, SystemResult, TaskResult
from ..core.update import BusyWindowOutput, apply_operation
from ..eventmodels import compile as _compile
from ..eventmodels.base import EventModel
from ..eventmodels.curves import CachedModel
from ..eventmodels.standard import sporadic
from ..system.model import System, Task
from ..system.propagation import (
    DEFAULT_MAX_ITERATIONS,
    _changed_ports,
    _models_stable,
    _response_residuals,
    _responses_stable,
    _StreamResolver,
)
from ..timebase import EPS, INF
from .guards import DivergenceGuard, GuardVerdict
from .outcome import (
    HEALTH_DIVERGED,
    HEALTH_OK,
    HEALTH_OVERLOADED,
    HEALTH_QUARANTINED,
    AnalysisOutcome,
    ConservativenessCertificate,
    ResourceHealth,
)

#: Exceptions the degraded engine converts into quarantines.  Anything
#: else (KeyboardInterrupt, genuine bugs) still propagates.
_QUARANTINE_ERRORS = (ModelError, UnboundedStreamError, AnalysisError)


class UnboundedEnvelope(EventModel):
    """δ⁻ ≡ 0: a stream with no rate limit whatsoever.

    The only conservative output substitute for an overloaded task with
    ``c_min == 0`` — nothing serialises its completions, so no finite
    event bound is sound.  Any busy-window analysis consuming this model
    fails with :class:`UnboundedStreamError`, which the degraded engine
    turns into a cascade quarantine of the downstream resource.
    """

    def __init__(self, origin: str = ""):
        self.origin = origin
        self.name = f"unbounded({origin})" if origin else "unbounded"

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        return 0.0

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        return 0.0 if n < 2 else INF

    def eta_plus(self, dt: float) -> int:
        if dt <= 0:
            return 0
        raise UnboundedStreamError(
            f"stream {self.name} has no rate limit (source task was "
            f"quarantined with c_min == 0)",
            context={"origin": self.origin,
                     "reason": "unbounded_envelope"})

    def eta_min(self, dt: float) -> int:
        return 0

    def load(self, accuracy: int = 1000) -> float:
        return INF

    def __repr__(self) -> str:
        return f"<UnboundedEnvelope {self.origin or '?'}>"


class _DegradedResolver(_StreamResolver):
    """Stream resolver that serves fixed substitute models for the
    output ports of quarantined resources."""

    def __init__(self, system: System, responses, initial,
                 substitutes: "Dict[str, EventModel]"):
        super().__init__(system, responses, initial)
        self._substitutes = substitutes

    def port(self, port: str) -> EventModel:
        substitute = self._substitutes.get(port)
        if substitute is not None:
            return substitute
        return super().port(port)


# ----------------------------------------------------------------------
# widenings
# ----------------------------------------------------------------------
def widen_overload(task: Task, reason: str) \
        -> "Tuple[EventModel, ConservativenessCertificate]":
    """Sporadic-envelope widening for a task on a failed resource."""
    d2 = task.c_min
    if d2 > EPS:
        model = sporadic(d2, name=f"widened:{task.name}")
        argument = (
            f"completions of {task.name} are serialised by its own "
            f"execution, so any feasible output stream has "
            f"delta_min(2) >= c_min = {d2:g}; by superadditivity "
            f"delta_min(n) >= (n-1)*{d2:g}, hence sporadic({d2:g}) "
            f"lower-bounds every feasible distance function and "
            f"upper-bounds eta_plus for all consumers")
        cert = ConservativenessCertificate(
            port=task.name, task=task.name, resource=task.resource,
            reason=reason, substitute=repr(model), argument=argument,
            d2=d2)
    else:
        model = UnboundedEnvelope(origin=task.name)
        argument = (
            f"{task.name} has c_min == 0: nothing serialises its "
            f"completions, so no finite rate bound is sound; the "
            f"unbounded envelope (delta_min == 0) is installed and "
            f"downstream consumers are cascade-quarantined instead of "
            f"receiving an unsound bound")
        cert = ConservativenessCertificate(
            port=task.name, task=task.name, resource=task.resource,
            reason=reason, substitute=repr(model), argument=argument)
    return model, cert


def widen_diverged(task: Task, resolver: _StreamResolver,
                   history: "List[Tuple[float, float]]") \
        -> "Tuple[EventModel, ConservativenessCertificate, float, float]":
    """Frozen-interval widening for a task on a diverged resource.

    Freezes the response interval to the min/max observed over the
    iteration history and derives the output through Θ_τ.  Falls back to
    the overload widening when the activation stream itself cannot be
    evaluated.
    """
    if history:
        r_lo = min(r for r, _ in history)
        r_hi = max(r for _, r in history)
    else:
        r_lo, r_hi = task.c_min, task.c_max
    try:
        activation = resolver.activation_model(task)
        model = apply_operation(activation, BusyWindowOutput(r_lo, r_hi))
    except _QUARANTINE_ERRORS:
        model, cert = widen_overload(task, HEALTH_DIVERGED)
        return model, cert, r_lo, r_hi
    argument = (
        f"response interval of {task.name} frozen to the observed "
        f"range [{r_lo:g}, {r_hi:g}] over {len(history)} iterations; "
        f"Theta_tau of the activating stream with that interval "
        f"over-approximates every response the iteration visited "
        f"(brackets the limit cycle for oscillating systems; for "
        f"unbounded growth it is the tightest statement this run "
        f"supports and the resource stays flagged 'diverged')")
    cert = ConservativenessCertificate(
        port=task.name, task=task.name, resource=task.resource,
        reason=HEALTH_DIVERGED, substitute=repr(model),
        argument=argument, frozen_interval=(r_lo, r_hi))
    return model, cert, r_lo, r_hi


# ----------------------------------------------------------------------
# the degraded loop
# ----------------------------------------------------------------------
def degraded_analyze(system: System,
                     max_iterations: int = DEFAULT_MAX_ITERATIONS,
                     initial_outputs:
                     "Optional[Dict[str, EventModel]]" = None,
                     guard: "Optional[DivergenceGuard]" = None,
                     memo: "Optional[AnalysisMemo]" = None,
                     ) -> AnalysisOutcome:
    """Run the global fixed point with graceful degradation.

    Parameters mirror :func:`~repro.system.propagation.analyze_system`;
    ``guard=None`` installs a default :class:`DivergenceGuard`, pass
    ``guard=False`` to disable trend detection (the iteration budget
    then remains the only divergence backstop).  A ``memo`` routes the
    healthy resources' local analyses through the incremental cache;
    failed analyses never enter the memo, so quarantine behaviour is
    unchanged.

    Returns an :class:`AnalysisOutcome` — never raises for analysis
    failures (overload, divergence, unbounded streams).  Structural
    model errors from :meth:`System.validate` still raise.
    """
    if memo is not None and not memo.acquire():
        memo = None
    try:
        return _degraded_analysis(system, max_iterations,
                                  initial_outputs, guard, memo)
    finally:
        if memo is not None:
            memo.runs += 1
            memo.release()


def _degraded_analysis(system: System, max_iterations: int,
                       initial_outputs:
                       "Optional[Dict[str, EventModel]]",
                       guard: "Optional[DivergenceGuard]",
                       memo: "Optional[AnalysisMemo]",
                       ) -> AnalysisOutcome:
    system.validate()
    if guard is None:
        guard = DivergenceGuard()

    responses: "Dict[str, TaskResult]" = {}
    prev_models: "Dict[str, EventModel]" = {}
    cycle_seeds: "Dict[str, EventModel]" = dict(initial_outputs or {})
    substitutes: "Dict[str, EventModel]" = {}
    health: "Dict[str, ResourceHealth]" = {
        name: ResourceHealth(name) for name in system.resources}
    certificates: "List[ConservativenessCertificate]" = []
    verdicts: "List[GuardVerdict]" = []
    degraded_results: "Dict[str, ResourceResult]" = {}
    history: "Dict[str, List[Tuple[float, float]]]" = {}
    last_results: "Dict[str, ResourceResult]" = {}

    # --- helpers bound to the loop state ------------------------------
    def quarantine(resource_name: str, kind: str, exc: Exception,
                   utilization: "Optional[float]" = None) -> None:
        record = health[resource_name]
        record.health = kind
        record.error = str(exc)
        record.error_type = type(exc).__name__
        record.context = dict(getattr(exc, "context", None) or {})
        if _obs.enabled:
            _obs.metrics().counter("resilience.quarantines").inc()
            _obs.get_tracer().event(
                "resilience.quarantine", resource=resource_name,
                health=kind, error_type=record.error_type)
        task_results = {}
        for t in system.tasks_on(resource_name):
            model, cert = widen_overload(t, kind)
            substitutes[t.name] = model
            certificates.append(cert)
            if _obs.enabled:
                _obs.metrics().counter("resilience.widenings").inc()
            task_results[t.name] = TaskResult(
                name=t.name, r_min=t.c_min, r_max=INF, degraded=True)
        if utilization is None:
            utilization = getattr(exc, "utilization", None)
        degraded_results[resource_name] = ResourceResult(
            resource_name,
            utilization if utilization is not None else float("nan"),
            task_results, health=kind)

    def quarantine_diverged(resource_name: str, verdict: GuardVerdict,
                            resolver: _StreamResolver) -> None:
        record = health[resource_name]
        record.health = HEALTH_DIVERGED
        record.error = f"divergence guard: {verdict.verdict}"
        record.error_type = "ConvergenceError"
        record.context = {"verdict": verdict.verdict,
                          "iteration": verdict.iteration,
                          "detail": verdict.detail}
        if _obs.enabled:
            _obs.metrics().counter("resilience.quarantines").inc()
            _obs.get_tracer().event(
                "resilience.quarantine", resource=resource_name,
                health=HEALTH_DIVERGED, verdict=verdict.verdict)
        prev_rr = last_results.get(resource_name)
        task_results = {}
        for t in system.tasks_on(resource_name):
            model, cert, r_lo, r_hi = widen_diverged(
                t, resolver, history.get(t.name, []))
            substitutes[t.name] = model
            certificates.append(cert)
            if _obs.enabled:
                _obs.metrics().counter("resilience.widenings").inc()
            task_results[t.name] = TaskResult(
                name=t.name, r_min=r_lo, r_max=r_hi, degraded=True,
                details={"frozen": 1.0})
        degraded_results[resource_name] = ResourceResult(
            resource_name,
            prev_rr.utilization if prev_rr is not None else float("nan"),
            task_results, health=HEALTH_DIVERGED)

    def culprit_resource(residual_info: dict,
                         new_models: "Dict[str, EventModel]") \
            -> "Optional[str]":
        worst_task = residual_info.get("residual_argmax")
        if worst_task is not None and worst_task in system.tasks:
            return system.tasks[worst_task].resource
        for port in _changed_ports(prev_models, new_models):
            if port in system.tasks:
                name = system.tasks[port].resource
                if health[name].ok:
                    return name
        return None

    # --- global iteration ---------------------------------------------
    iterations_done = 0
    converged = False
    for iteration in range(1, max_iterations + 1):
        iterations_done = iteration
        iter_span = (_obs.get_tracer().start(
            "global_iteration", system=system.name, iteration=iteration,
            mode="degraded") if _obs.enabled else None)
        try:
            resolver = _DegradedResolver(system, responses, cycle_seeds,
                                         substitutes)

            new_resource_results: "Dict[str, ResourceResult]" = {}
            for resource in system.resources.values():
                tasks = system.tasks_on(resource.name)
                if not tasks or not health[resource.name].ok:
                    continue
                try:
                    specs = [
                        TaskSpec(name=t.name, c_min=t.c_min,
                                 c_max=t.c_max,
                                 event_model=resolver.activation_model(t),
                                 priority=t.priority, slot=t.slot,
                                 deadline=t.deadline,
                                 blocking=t.blocking)
                        for t in tasks
                    ]
                    if memo is None:
                        rr = resource.scheduler.analyze(specs,
                                                        resource.name)
                    else:
                        rr, _ = memo.resource_memo(
                            resource.name).analyze(
                                resource.scheduler, specs, resource.name)
                except NotSchedulableError as exc:
                    quarantine(resource.name, HEALTH_OVERLOADED, exc)
                    continue
                except _QUARANTINE_ERRORS as exc:
                    quarantine(resource.name, HEALTH_QUARANTINED, exc)
                    continue
                new_resource_results[resource.name] = rr

            new_responses: "Dict[str, TaskResult]" = {}
            for rr in new_resource_results.values():
                new_responses.update(rr.task_results)
            for name, tr in new_responses.items():
                history.setdefault(name, []).append((tr.r_min, tr.r_max))

            stable = _responses_stable(responses, new_responses)
            residual_info = _response_residuals(responses, new_responses)
            if iter_span is not None:
                iter_span.set(**residual_info)
            responses = new_responses
            last_results = new_resource_results

            # Propagate with the same (possibly shrunken) health map.
            resolver = _DegradedResolver(system, responses, cycle_seeds,
                                         substitutes)
            new_models: "Dict[str, EventModel]" = {}
            for task_name in system.tasks:
                try:
                    out = resolver.port(task_name)
                except _QUARANTINE_ERRORS as exc:
                    owner = system.tasks[task_name].resource
                    if health[owner].ok:
                        quarantine(owner, HEALTH_QUARANTINED, exc)
                    out = substitutes.get(task_name)
                if out is not None and not _compile.enabled \
                        and task_name not in substitutes:
                    out = CachedModel(out, name=f"{task_name}.out")
                if out is not None:
                    new_models[task_name] = out
                    cycle_seeds[task_name] = out

            models_stable = _models_stable(prev_models, new_models)
            converged = stable and models_stable
            if iter_span is not None:
                iter_span.set(responses_stable=stable,
                              models_stable=models_stable,
                              converged=converged,
                              quarantined=len(
                                  [h for h in health.values()
                                   if not h.ok]),
                              widened_ports=sorted(substitutes))
                _obs.metrics().counter("propagation.iterations").inc()
                if _BUS.active:
                    _BUS.publish({
                        "type": "iteration", "system": system.name,
                        "iteration": iteration, "converged": converged,
                        "mode": "degraded",
                        **residual_info,
                    })
            if converged:
                break

            if guard:
                verdict = guard.observe(
                    iteration, residual_info["residual_r_max"], stable,
                    models_stable)
                if verdict is not None:
                    verdicts.append(verdict)
                    if _obs.enabled:
                        _obs.metrics().counter(
                            "propagation.divergence_detected").inc()
                        _obs.get_tracer().event(
                            "divergence_detected",
                            verdict=verdict.verdict,
                            iteration=iteration, detail=verdict.detail,
                            mode="degraded")
                        if _BUS.active:
                            _BUS.publish({
                                "type": "guard",
                                "system": system.name,
                                "verdict": verdict.verdict,
                                "iteration": iteration,
                                "detail": verdict.detail,
                                "mode": "degraded",
                            })
                    culprit = culprit_resource(residual_info, new_models)
                    if culprit is not None:
                        quarantine_diverged(culprit, verdict, resolver)
                        guard.reset()
            prev_models = new_models
        finally:
            if iter_span is not None:
                iter_span.finish()

    # --- assemble the outcome -----------------------------------------
    resource_results: "Dict[str, ResourceResult]" = {}
    for name in system.resources:
        if not system.tasks_on(name):
            continue
        if health[name].ok:
            rr = last_results.get(name)
            if rr is not None:
                resource_results[name] = rr
        else:
            resource_results[name] = degraded_results[name]

    result = SystemResult(iterations=iterations_done,
                          converged=converged,
                          resource_results=resource_results)
    outcome = AnalysisOutcome(result=result, resources=health,
                              certificates=certificates,
                              verdicts=verdicts,
                              iterations=iterations_done,
                              converged=converged)
    if _obs.enabled:
        _obs.metrics().gauge("resilience.failed_resources").set(
            len(outcome.failed_resources()))
        if not converged:
            _obs.metrics().counter("propagation.divergences").inc()
    return outcome
