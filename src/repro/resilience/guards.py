"""Divergence guards for the global fixed-point iteration.

The compositional loop of :func:`repro.system.propagation.analyze_system`
normally runs until responses and propagated event models stop moving, or
until ``max_iterations`` is exhausted.  For genuinely divergent systems —
jitter feedback loops whose response times grow without bound, or limit
cycles that bounce between two states forever — waiting for the iteration
budget wastes most of the run and yields an unspecific "did not converge"
error.  The :class:`DivergenceGuard` watches the per-iteration residual
trend instead and declares a *verdict* as soon as the trend is hopeless:

``monotone_growth``
    The largest response-time movement has been strictly non-decreasing
    (and overall growing) for a full sliding window.  A contracting
    iteration has shrinking residuals; sustained growth means the
    feedback gain is >= 1 and the fixed point is unreachable.

``oscillation``
    The residual sequence repeats with period two (including the
    degenerate constant case) while staying bounded away from zero: the
    iteration is stuck in a limit cycle between two (or more) states.

``model_drift``
    Response times have settled but the propagated event models keep
    changing every iteration of the window — e.g. hierarchical inner
    streams accumulating timing shifts that never feed back into any
    response time.  Responses alone looking stable would otherwise hide
    this until the iteration budget runs out.

The guard is deliberately conservative: it never speaks before
``min_iterations`` global iterations and needs a full ``window`` of
matching evidence, so slowly-but-soundly converging systems (shrinking
residuals) can never trigger it.  Strict mode turns a verdict into an
early :class:`~repro._errors.ConvergenceError`; degraded mode
(:mod:`repro.resilience.degrade`) turns it into a widening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Residuals at or below this are treated as "not moving".
DEFAULT_RESIDUAL_TOL = 1e-9

#: Relative tolerance for comparing residuals across iterations.
DEFAULT_REL_TOL = 1e-6

VERDICT_MONOTONE_GROWTH = "monotone_growth"
VERDICT_OSCILLATION = "oscillation"
VERDICT_MODEL_DRIFT = "model_drift"


@dataclass
class GuardVerdict:
    """A divergence diagnosis emitted by :class:`DivergenceGuard`."""

    verdict: str
    iteration: int
    residuals: List[float] = field(default_factory=list)
    detail: str = ""

    def to_dict(self) -> dict:
        return {"verdict": self.verdict, "iteration": self.iteration,
                "residuals": list(self.residuals), "detail": self.detail}


class DivergenceGuard:
    """Sliding-window residual-trend detector.

    Parameters
    ----------
    window:
        Number of consecutive iterations a trend must persist before a
        verdict is declared (>= 4).
    min_iterations:
        Earliest global iteration at which the guard may speak; gives
        legitimately slow starts (cycle seeds settling, hierarchy
        updates rippling through) room before trend analysis begins.
    residual_tol:
        Absolute residual below which responses count as stable.
    rel_tol:
        Relative tolerance when comparing residual magnitudes.
    """

    def __init__(self, window: int = 8, min_iterations: int = 12,
                 residual_tol: float = DEFAULT_RESIDUAL_TOL,
                 rel_tol: float = DEFAULT_REL_TOL):
        if window < 4:
            raise ValueError(f"guard window must be >= 4, got {window}")
        if min_iterations < window:
            raise ValueError(
                f"min_iterations ({min_iterations}) must cover at least "
                f"one full window ({window})")
        self.window = window
        self.min_iterations = min_iterations
        self.residual_tol = residual_tol
        self.rel_tol = rel_tol
        self._residuals: List[float] = []
        self._responses_stable: List[bool] = []
        self._models_stable: List[bool] = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all observations (call after a widening action: the
        iteration dynamics change and the old trend no longer applies)."""
        self._residuals.clear()
        self._responses_stable.clear()
        self._models_stable.clear()

    def observe(self, iteration: int, residual: float,
                responses_stable: bool,
                models_stable: bool) -> Optional[GuardVerdict]:
        """Feed one global iteration; returns a verdict or ``None``.

        ``residual`` is the largest absolute response-time movement of
        the iteration (``residual_r_max`` of the propagation loop).
        """
        self._residuals.append(residual)
        self._responses_stable.append(responses_stable)
        self._models_stable.append(models_stable)
        if iteration < self.min_iterations:
            return None
        if len(self._residuals) < self.window:
            return None
        recent = self._residuals[-self.window:]

        verdict = self._check_growth(iteration, recent)
        if verdict is None:
            verdict = self._check_oscillation(iteration, recent)
        if verdict is None:
            verdict = self._check_model_drift(iteration, recent)
        return verdict

    # ------------------------------------------------------------------
    def _check_growth(self, iteration: int,
                      recent: List[float]) -> Optional[GuardVerdict]:
        if not all(r > self.residual_tol for r in recent):
            return None
        non_decreasing = all(
            b >= a * (1.0 - self.rel_tol)
            for a, b in zip(recent, recent[1:]))
        growing = recent[-1] > recent[0] * (1.0 + self.rel_tol)
        if non_decreasing and growing:
            return GuardVerdict(
                VERDICT_MONOTONE_GROWTH, iteration, list(recent),
                detail=f"residual grew from {recent[0]:.6g} to "
                       f"{recent[-1]:.6g} over {self.window} iterations")
        return None

    def _check_oscillation(self, iteration: int,
                           recent: List[float]) -> Optional[GuardVerdict]:
        if not all(r > self.residual_tol for r in recent):
            return None
        period2 = all(
            abs(recent[i] - recent[i - 2])
            <= self.rel_tol * max(recent[i], recent[i - 2])
            for i in range(2, len(recent)))
        if period2:
            constant = all(
                abs(recent[i] - recent[i - 1])
                <= self.rel_tol * max(recent[i], recent[i - 1])
                for i in range(1, len(recent)))
            kind = ("constant residual (stuck)" if constant
                    else "period-2 residual cycle")
            return GuardVerdict(
                VERDICT_OSCILLATION, iteration, list(recent),
                detail=f"{kind}: residual pinned near {recent[-1]:.6g} "
                       f"for {self.window} iterations")
        return None

    def _check_model_drift(self, iteration: int,
                           recent: List[float]) -> Optional[GuardVerdict]:
        window_stable = self._responses_stable[-self.window:]
        window_models = self._models_stable[-self.window:]
        if all(window_stable) and not any(window_models):
            return GuardVerdict(
                VERDICT_MODEL_DRIFT, iteration, list(recent),
                detail=f"responses stable but propagated models moved in "
                       f"every one of the last {self.window} iterations")
        return None
