"""Seeded fault-injection harness.

Deterministic perturbations of a :class:`~repro.system.model.System`
that model real failure modes while staying *monotone conservative*:
every fault only ever adds load, jitter, or error overhead, so for any
two plans ``A ⊆ B`` (B contains every fault of A) every analysed WCRT
under B is at least the WCRT under A.  The metamorphic suite
(:func:`check_monotone_conservativeness`) asserts exactly that property
— it is the paper-level soundness invariant the analysis must keep
under degradation.

Fault kinds
-----------
``wcet_inflation``
    Multiply a task's ``c_max`` by ``1 + magnitude`` (``c_min``
    untouched).  Models pessimistic execution paths, cache misses,
    DVFS throttling.
``jitter_inflation``
    Add ``magnitude * period`` of jitter to a source's standard event
    model.  Models upstream scheduling noise and clock drift.
``frame_drop``
    Inflate the transmission time of every task on a bus resource by a
    retransmission factor ``1 + ceil(magnitude)``: each frame may be
    corrupted and resent up to ``ceil(magnitude)`` times.  (A dropped
    CAN frame is retransmitted by the controller, so the worst-case
    *timing* effect of loss is extra transmissions, never fewer.)
``can_error_burst``
    Attach (or intensify) a
    :class:`~repro.analysis.spnp.CanErrorModel` on an SPNP bus:
    ``magnitude`` error frames strike at the critical instant, each
    costing an error flag plus the retransmission of the largest frame.

Determinism: applying a plan involves *no* randomness — a
:class:`Fault` is fully determined by ``(kind, target, magnitude)``.
The ``seed`` lives in :meth:`FaultPlan.sample`, which draws random
plans reproducibly; two runs with the same seed build identical plans,
and plans are value objects you can log, diff, and replay.

Chaos hooks for the batch pool live here too:
:class:`ChaosBackend` wraps any executor backend and injects seeded
worker crashes and delayed results, and the ``chaos_probe`` job kind
fails deterministically for its first N executions — together they
drive the retry/poisoning machinery of
:class:`~repro.batch.executor.BatchRunner` in tests and in the CI
chaos-smoke job.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._errors import ModelError
from ..analysis.spnp import CanErrorModel, SPNPScheduler
from ..eventmodels.standard import StandardEventModel
from ..system.model import Junction, Resource, Source, System, Task

FAULT_KINDS = ("wcet_inflation", "jitter_inflation", "frame_drop",
               "can_error_burst")

#: Error-frame cost factor: a CAN error frame is at most 31 bit times
#: and the smallest data frame is 47, so one error costs at most
#: ``31/47`` of any frame's transmission time on top of the
#: retransmission itself.
_ERROR_FRAME_FACTOR = 1.0 + 31.0 / 47.0


# ----------------------------------------------------------------------
# structural system clone
# ----------------------------------------------------------------------
def clone_system(system: System) -> System:
    """Deep-enough structural copy of a system graph.

    Tasks, junctions, and resources are copied (they are mutated or
    replaced by fault application); event models are shared (immutable
    value objects).  Deliberately *not* a serialise/deserialise round
    trip: serialisation freezes derived models to sampled curves and
    must stay lossless-optional, while the clone must preserve the
    exact objects the strict analysis would see.
    """
    cloned = System(system.name)
    for name, src in system.sources.items():
        cloned.sources[name] = Source(name, src.model)
    for name, res in system.resources.items():
        cloned.resources[name] = Resource(name, res.scheduler)
    for name, task in system.tasks.items():
        cloned.tasks[name] = replace(task, inputs=list(task.inputs))
    for name, junction in system.junctions.items():
        cloned.junctions[name] = replace(
            junction, inputs=list(junction.inputs),
            properties=dict(junction.properties))
    return cloned


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """One deterministic perturbation: ``(kind, target, magnitude)``.

    ``target`` names the node the fault applies to (task for
    ``wcet_inflation``, source for ``jitter_inflation``, resource for
    ``frame_drop``/``can_error_burst``); ``None`` applies the fault to
    every eligible node.
    """

    kind: str
    target: Optional[str] = None
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ModelError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})")
        if self.magnitude < 0:
            raise ModelError(
                f"fault magnitude must be >= 0, got {self.magnitude}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable collection of faults."""

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __len__(self) -> int:
        return len(self.faults)

    def extend(self, *faults: Fault) -> "FaultPlan":
        """Superset plan — the metamorphic suite compares a plan
        against its extensions."""
        return FaultPlan(self.faults + tuple(faults), seed=self.seed)

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: (empty)"
        lines = [f"fault plan (seed {self.seed}):"]
        for f in self.faults:
            lines.append(f"  {f.kind} target={f.target or '*'} "
                         f"magnitude={f.magnitude:g}")
        return "\n".join(lines)

    def to_dict(self) -> "Dict[str, object]":
        """JSON-compatible value: plans are loggable and replayable
        (soak triage bundles and fault-drill reports carry them
        verbatim)."""
        return {
            "seed": self.seed,
            "faults": [{"kind": f.kind, "target": f.target,
                        "magnitude": f.magnitude}
                       for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: "Dict[str, object]") -> "FaultPlan":
        return cls(
            faults=tuple(Fault(kind=f["kind"], target=f.get("target"),
                               magnitude=f.get("magnitude", 1.0))
                         for f in data.get("faults", [])),
            seed=int(data.get("seed", 0)))

    @classmethod
    def sample(cls, system: System, seed: int,
               n_faults: int = 3,
               kinds: Sequence[str] = FAULT_KINDS,
               max_magnitude: float = 0.5) -> "FaultPlan":
        """Draw a random plan reproducibly from *seed*.

        Randomness is confined to plan construction; applying the
        resulting plan is fully deterministic.
        """
        rng = random.Random(seed)
        faults = []
        for _ in range(n_faults):
            kind = rng.choice(list(kinds))
            if kind == "wcet_inflation":
                pool = sorted(system.tasks)
            elif kind == "jitter_inflation":
                pool = sorted(
                    name for name, src in system.sources.items()
                    if isinstance(src.model, StandardEventModel))
            elif kind == "can_error_burst":
                pool = sorted(
                    name for name, res in system.resources.items()
                    if isinstance(res.scheduler, SPNPScheduler))
            else:
                pool = sorted(system.resources)
            if not pool:
                continue
            target = rng.choice(pool)
            if kind == "can_error_burst":
                magnitude = float(rng.randint(1, 3))
            else:
                magnitude = rng.uniform(0.05, max_magnitude)
            faults.append(Fault(kind, target, magnitude))
        return cls(tuple(faults), seed=seed)


# ----------------------------------------------------------------------
# fault application
# ----------------------------------------------------------------------
def inject_faults(system: System, plan: FaultPlan) -> System:
    """Return a perturbed clone of *system*; the original is untouched."""
    injected = clone_system(system)
    for fault in plan.faults:
        _apply(injected, fault)
    return injected


def _apply(system: System, fault: Fault) -> None:
    if fault.kind == "wcet_inflation":
        for task in _target_tasks(system, fault.target):
            task.c_max = task.c_max * (1.0 + fault.magnitude)
    elif fault.kind == "jitter_inflation":
        for name in _target_sources(system, fault.target):
            model = system.sources[name].model
            extra = fault.magnitude * model.period
            system.sources[name] = Source(
                name, model.with_jitter(model.jitter + extra))
    elif fault.kind == "frame_drop":
        retransmissions = max(1, math.ceil(fault.magnitude))
        for task in _resource_tasks(system, fault.target):
            task.c_max = task.c_max * (1.0 + retransmissions)
    elif fault.kind == "can_error_burst":
        for name in _target_spnp_resources(system, fault.target):
            resource = system.resources[name]
            scheduler = resource.scheduler
            c_worst = max(
                (t.c_max for t in system.tasks_on(name)), default=0.0)
            recovery = c_worst * _ERROR_FRAME_FACTOR
            previous = scheduler.error_model
            if previous is not None:
                model = CanErrorModel(
                    previous.burst_errors + int(fault.magnitude),
                    previous.error_rate,
                    max(previous.recovery_time, recovery))
            else:
                model = CanErrorModel(int(fault.magnitude), 0.0,
                                      recovery)
            system.resources[name] = Resource(name, SPNPScheduler(
                scheduler.utilization_limit, scheduler.arbitration_eps,
                error_model=model))


def _target_tasks(system: System, target: Optional[str]) -> List[Task]:
    if target is None:
        return list(system.tasks.values())
    if target not in system.tasks:
        raise ModelError(f"fault target task {target!r} not in system",
                         context={"task": target})
    return [system.tasks[target]]


def _target_sources(system: System,
                    target: Optional[str]) -> List[str]:
    if target is None:
        return [name for name, src in system.sources.items()
                if isinstance(src.model, StandardEventModel)]
    if target not in system.sources:
        raise ModelError(
            f"fault target source {target!r} not in system",
            context={"source": target})
    if not isinstance(system.sources[target].model, StandardEventModel):
        raise ModelError(
            f"jitter_inflation needs a standard event model on "
            f"{target!r}", context={"source": target})
    return [target]


def _resource_tasks(system: System,
                    target: Optional[str]) -> List[Task]:
    if target is None:
        return list(system.tasks.values())
    if target not in system.resources:
        raise ModelError(
            f"fault target resource {target!r} not in system",
            context={"resource": target})
    return system.tasks_on(target)


def _target_spnp_resources(system: System,
                           target: Optional[str]) -> List[str]:
    if target is None:
        return [name for name, res in system.resources.items()
                if isinstance(res.scheduler, SPNPScheduler)]
    if target not in system.resources:
        raise ModelError(
            f"fault target resource {target!r} not in system",
            context={"resource": target})
    if not isinstance(system.resources[target].scheduler,
                      SPNPScheduler):
        raise ModelError(
            f"can_error_burst needs an SPNP resource, {target!r} is "
            f"{system.resources[target].scheduler.policy}",
            context={"resource": target})
    return [target]


# ----------------------------------------------------------------------
# metamorphic conservativeness check
# ----------------------------------------------------------------------
def check_monotone_conservativeness(
        system: System, plans: Sequence[FaultPlan],
        max_iterations: int = 64) -> List[dict]:
    """Assert the monotone-conservativeness invariant over a fault
    ladder.

    ``plans`` must be ordered by inclusion (each plan a superset of the
    previous; start with ``FaultPlan()`` for the fault-free baseline).
    Every system is analysed in degraded mode; for each consecutive
    pair, every task that is *cleanly analysed in both* (not
    quarantined in either) must have a non-decreasing WCRT.  Returns a
    list of violation records — empty means the invariant held.
    """
    from ..system.propagation import analyze_system
    from ..timebase import EPS

    outcomes = []
    for plan in plans:
        injected = inject_faults(system, plan)
        outcomes.append(
            analyze_system(injected, max_iterations=max_iterations,
                           on_failure="degrade"))

    violations = []
    for i in range(1, len(outcomes)):
        before, after = outcomes[i - 1], outcomes[i]
        for task_name in system.tasks:
            b = before.result.task_result(task_name)
            a = after.result.task_result(task_name)
            if b is None or a is None:
                continue
            if b.degraded or a.degraded:
                continue  # quarantined/frozen bounds are not comparable
            if a.r_max < b.r_max - EPS:
                violations.append({
                    "task": task_name,
                    "plan_index": i,
                    "wcrt_before": b.r_max,
                    "wcrt_after": a.r_max,
                    "added_faults": [
                        f"{f.kind}:{f.target}:{f.magnitude:g}"
                        for f in plans[i].faults[len(plans[i - 1]):]],
                })
    return violations


# ----------------------------------------------------------------------
# batch-pool chaos hooks
# ----------------------------------------------------------------------
class ChaosBackend:
    """Wrap an executor backend with seeded worker chaos.

    With probability ``crash_rate`` a job's execution is replaced by a
    fabricated transient worker-crash failure (the job function never
    runs); with probability ``delay_rate`` the result is delivered
    ``delay`` seconds late (tripping post-hoc timeout budgets).  Draws
    are deterministic in ``(seed, job key, occurrence)``: the first
    execution of a job may crash while its retry succeeds, and the
    whole schedule replays identically for the same seed.
    """

    name = "chaos"

    def __init__(self, inner, seed: int = 0, crash_rate: float = 0.0,
                 delay_rate: float = 0.0, delay: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.seed = seed
        self.crash_rate = crash_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self._sleep = sleep
        self._seen: Dict[str, int] = {}

    @property
    def workers(self) -> int:
        return getattr(self.inner, "workers", 1)

    @property
    def merges_worker_obs(self) -> bool:
        return getattr(self.inner, "merges_worker_obs", False)

    def _draw(self, key: str) -> random.Random:
        occurrence = self._seen.get(key, 0)
        self._seen[key] = occurrence + 1
        return random.Random(f"{self.seed}:{key}:{occurrence}")

    def run(self, jobs, on_result) -> None:
        from ..batch.executor import _enforce_budget
        from ..batch.jobs import STATUS_FAILED, JobResult

        survivors = []
        delayed = {}
        for job in jobs:
            rng = self._draw(job.key)
            if rng.random() < self.crash_rate:
                on_result(JobResult(
                    job.key, job.kind, job.label, STATUS_FAILED,
                    error="ChaosWorkerCrash: injected worker crash "
                          f"(seed {self.seed})"))
                continue
            if rng.random() < self.delay_rate:
                delayed[job.key] = job
            survivors.append(job)

        def chaotic_on_result(result) -> None:
            job = delayed.get(result.key)
            if job is not None and self.delay > 0:
                self._sleep(self.delay)
                result.duration += self.delay
                # The delay may push the job over its wall budget; the
                # inner backend already enforced it, so re-enforce here.
                result = _enforce_budget(job, result)
            on_result(result)

        self.inner.run(survivors, chaotic_on_result)


def register_chaos_job_kinds() -> None:
    """Register the ``chaos_probe`` job kind (idempotent).

    ``chaos_probe`` fails its first ``fail_times`` executions and
    succeeds afterwards, tracking attempts in a file under
    ``state_dir`` so the count survives process boundaries (pool
    workers).  ``error`` selects the failure flavour: ``"transient"``
    raises a plain ``RuntimeError`` (retryable), ``"model"`` raises
    :class:`~repro._errors.ModelError` (deterministic — poisoned on
    first sight), ``"hang"`` sleeps ``hang_seconds`` to trip timeouts.
    """
    from ..batch.jobs import _JOB_KINDS, register_job_kind

    if "chaos_probe" in _JOB_KINDS:
        return

    @register_job_kind("chaos_probe")
    def _run_chaos_probe(payload: dict) -> dict:
        import os

        state_dir = payload["state_dir"]
        probe_id = payload.get("probe_id", "probe")
        marker = os.path.join(state_dir, f"chaos-{probe_id}.count")
        try:
            with open(marker) as fh:
                attempts = int(fh.read().strip() or 0)
        except FileNotFoundError:
            attempts = 0
        attempts += 1
        with open(marker, "w") as fh:
            fh.write(str(attempts))

        if payload.get("hang_seconds"):
            time.sleep(float(payload["hang_seconds"]))
        if attempts <= int(payload.get("fail_times", 0)):
            if payload.get("error", "transient") == "model":
                raise ModelError(
                    f"injected deterministic failure "
                    f"(attempt {attempts})",
                    context={"probe": probe_id, "attempt": attempts})
            raise RuntimeError(
                f"injected transient crash (attempt {attempts})")
        return {"attempts_needed": attempts}
