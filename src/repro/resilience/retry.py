"""Retry policy for the batch engine: transient vs deterministic
failures, capped exponential backoff, poison quarantine.

A failed job is worth re-running only when the failure could plausibly
not repeat.  Analysis errors raised by the engine itself —
:class:`~repro._errors.ModelError`, ``NotSchedulableError``,
``ConvergenceError``, ``UnboundedStreamError`` — are *deterministic*:
the same system produces the same error on every attempt, so retrying
burns a worker slot for nothing.  Everything else (worker crashes,
broken pools, timeouts, injected chaos) is treated as *transient* and
retried with capped exponential backoff.

Jobs whose failures persist past the attempt budget — and deterministic
failures immediately — are **poisoned**: recorded in the result store
with status ``"poisoned"`` and their full attempt history, so later
runs skip them instead of re-tripping on the same mine.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet

TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Exception names (the prefix of ``JobResult.error``) whose failures
#: are deterministic: a retry re-runs the identical pure computation
#: and fails identically.
DETERMINISTIC_ERRORS: FrozenSet[str] = frozenset({
    "ModelError",
    "NotSchedulableError",
    "ConvergenceError",
    "UnboundedStreamError",
    "AnalysisError",
})


@dataclass
class RetryPolicy:
    """Classification and backoff schedule for failed batch jobs.

    ``delay(attempt, key)`` is capped exponential backoff with
    deterministic jitter: ``min(base_delay * 2**(attempt-1),
    max_delay)`` scaled by a factor drawn from
    ``[1 - jitter, 1 + jitter]`` seeded by ``(seed, key, attempt)`` —
    reproducible across runs, decorrelated across jobs so retry storms
    don't re-synchronise.

    ``sleep`` is injectable so tests (and the CI chaos-smoke job) can
    run retry schedules without wall-clock delay.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def classify(self, result) -> str:
        """``TRANSIENT`` or ``DETERMINISTIC`` for a failed JobResult.

        Timeouts are transient (the machine may have been loaded);
        engine errors and malformed jobs are deterministic.
        """
        from ..batch.jobs import STATUS_TIMEOUT

        if result.status == STATUS_TIMEOUT:
            return TRANSIENT
        error = result.error or ""
        name = error.split(":", 1)[0].strip()
        if name in DETERMINISTIC_ERRORS:
            return DETERMINISTIC
        if error.startswith("unknown job kind"):
            return DETERMINISTIC
        return TRANSIENT

    def retryable(self, result, attempts: int) -> bool:
        """Whether a failed result should be attempted again."""
        if attempts >= self.max_attempts:
            return False
        return self.classify(result) == TRANSIENT

    def delay(self, attempt: int, key: str) -> float:
        """Backoff before retry number *attempt* (1 = first retry)."""
        base = min(self.base_delay * (2.0 ** (attempt - 1)),
                   self.max_delay)
        if not self.jitter:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
