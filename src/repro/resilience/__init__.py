"""Resilience subsystem: graceful degradation, divergence guards, fault
injection, and retry policies.

Entry points:

* ``analyze_system(system, on_failure="degrade")`` — the degraded global
  fixed point (:func:`repro.resilience.degrade.degraded_analyze`):
  quarantines failed resources, widens their outputs conservatively, and
  always returns an :class:`~repro.resilience.outcome.AnalysisOutcome`.
* :class:`~repro.resilience.guards.DivergenceGuard` — residual-trend
  detector aborting hopeless iterations early (strict mode) or
  triggering widening (degraded mode).
* :mod:`repro.resilience.faultinject` — seeded, deterministic fault
  perturbations plus metamorphic conservativeness checks.
* :class:`~repro.resilience.retry.RetryPolicy` — transient/deterministic
  failure classification and capped exponential backoff for the batch
  engine.

Submodules are loaded lazily so importing :mod:`repro.resilience` from
inside :mod:`repro.system.propagation` (which the degrade engine itself
imports) can never create an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "AnalysisOutcome": ("outcome", "AnalysisOutcome"),
    "ConservativenessCertificate": ("outcome",
                                    "ConservativenessCertificate"),
    "ResourceHealth": ("outcome", "ResourceHealth"),
    "HEALTH_OK": ("outcome", "HEALTH_OK"),
    "HEALTH_OVERLOADED": ("outcome", "HEALTH_OVERLOADED"),
    "HEALTH_DIVERGED": ("outcome", "HEALTH_DIVERGED"),
    "HEALTH_QUARANTINED": ("outcome", "HEALTH_QUARANTINED"),
    "DivergenceGuard": ("guards", "DivergenceGuard"),
    "GuardVerdict": ("guards", "GuardVerdict"),
    "degraded_analyze": ("degrade", "degraded_analyze"),
    "UnboundedEnvelope": ("degrade", "UnboundedEnvelope"),
    "widen_overload": ("degrade", "widen_overload"),
    "widen_diverged": ("degrade", "widen_diverged"),
    "Fault": ("faultinject", "Fault"),
    "FaultPlan": ("faultinject", "FaultPlan"),
    "inject_faults": ("faultinject", "inject_faults"),
    "clone_system": ("faultinject", "clone_system"),
    "check_monotone_conservativeness": (
        "faultinject", "check_monotone_conservativeness"),
    "ChaosBackend": ("faultinject", "ChaosBackend"),
    "register_chaos_job_kinds": ("faultinject",
                                 "register_chaos_job_kinds"),
    "RetryPolicy": ("retry", "RetryPolicy"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
