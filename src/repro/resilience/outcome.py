"""Outcome containers for degraded analysis.

A strict :func:`~repro.system.propagation.analyze_system` run either
returns a :class:`~repro.analysis.results.SystemResult` or raises.  The
degraded path (:mod:`repro.resilience.degrade`) instead *always* returns
an :class:`AnalysisOutcome`: the best achievable system result plus a
per-resource health map, the divergence verdicts encountered, and one
:class:`ConservativenessCertificate` per event-model substitution so a
reviewer can audit why each widened bound is still an over-approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.results import SystemResult
from .guards import GuardVerdict

#: Per-resource health states of a degraded analysis.
HEALTH_OK = "ok"
HEALTH_OVERLOADED = "overloaded"
HEALTH_DIVERGED = "diverged"
HEALTH_QUARANTINED = "quarantined"

HEALTH_STATES = (HEALTH_OK, HEALTH_OVERLOADED, HEALTH_DIVERGED,
                 HEALTH_QUARANTINED)


def _json_num(value):
    """JSON-portable float: ``inf``/``nan`` become strings."""
    if value is None:
        return None
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


@dataclass
class ConservativenessCertificate:
    """Audit record for one event-model substitution.

    Attributes
    ----------
    port:
        Output port whose model was replaced (== the task name).
    task / resource:
        The producing task and its (failed) resource.
    reason:
        Health state that triggered the substitution (``overloaded``,
        ``diverged``, or ``quarantined`` for cascade failures).
    substitute:
        ``repr`` of the widened event model installed at the port.
    argument:
        The soundness argument: why the substitute over-approximates
        every stream the failed component could actually emit.
    d2:
        δ⁻(2) of a sporadic-envelope substitution, if that widening was
        used (``None`` otherwise).
    frozen_interval:
        ``(r_min, r_max)`` of a frozen-response widening, if that
        widening was used (``None`` otherwise).
    """

    port: str
    task: str
    resource: str
    reason: str
    substitute: str
    argument: str
    d2: Optional[float] = None
    frozen_interval: Optional[Tuple[float, float]] = None

    def to_dict(self) -> dict:
        return {
            "port": self.port,
            "task": self.task,
            "resource": self.resource,
            "reason": self.reason,
            "substitute": self.substitute,
            "argument": self.argument,
            "d2": _json_num(self.d2),
            "frozen_interval": (
                [_json_num(v) for v in self.frozen_interval]
                if self.frozen_interval is not None else None),
        }


@dataclass
class ResourceHealth:
    """Health record of one resource after a degraded analysis."""

    resource: str
    health: str = HEALTH_OK
    error: Optional[str] = None
    error_type: Optional[str] = None
    context: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.health == HEALTH_OK

    def to_dict(self) -> dict:
        return {"resource": self.resource, "health": self.health,
                "error": self.error, "error_type": self.error_type,
                "context": {k: _json_num(v)
                            for k, v in self.context.items()}}


@dataclass
class AnalysisOutcome:
    """Everything a degraded analysis produced — never raised, always
    returned.

    Attributes
    ----------
    result:
        The (possibly partially degraded) :class:`SystemResult`.  Task
        results on failed resources carry ``degraded=True`` and
        conservative bounds (``inf`` for quarantined tasks whose
        response is unknowable).
    resources:
        Per-resource :class:`ResourceHealth`, including healthy ones.
    certificates:
        One :class:`ConservativenessCertificate` per substituted output
        port.
    verdicts:
        Divergence-guard verdicts encountered during the run.
    """

    result: Optional[SystemResult]
    resources: Dict[str, ResourceHealth] = field(default_factory=dict)
    certificates: List[ConservativenessCertificate] = field(
        default_factory=list)
    verdicts: List[GuardVerdict] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    # ------------------------------------------------------------------
    @property
    def health(self) -> Dict[str, str]:
        """Resource name -> health state."""
        return {name: rh.health for name, rh in self.resources.items()}

    @property
    def degraded(self) -> bool:
        """True when any resource failed (the result is not a clean
        CPA fixed point)."""
        return any(not rh.ok for rh in self.resources.values())

    def ok(self) -> bool:
        """True for a fully healthy, converged analysis."""
        return self.converged and not self.degraded

    def failed_resources(self) -> List[str]:
        return sorted(name for name, rh in self.resources.items()
                      if not rh.ok)

    def wcrt(self, task_name: str) -> Optional[float]:
        """Worst-case response bound for a task (``inf`` when the task
        sits on a quarantined resource), ``None`` if unknown."""
        if self.result is None:
            return None
        return self.result.wcrt(task_name)

    def certificate_for(self, port: str) \
            -> Optional[ConservativenessCertificate]:
        for cert in self.certificates:
            if cert.port == port:
                return cert
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-portable summary (the CI chaos-smoke artifact format)."""
        tasks = {}
        if self.result is not None:
            for rr in self.result.resource_results.values():
                for tr in rr.task_results.values():
                    tasks[tr.name] = {
                        "r_min": _json_num(tr.r_min),
                        "r_max": _json_num(tr.r_max),
                        "degraded": tr.degraded,
                        "resource": rr.resource,
                    }
        return {
            "converged": self.converged,
            "degraded": self.degraded,
            "iterations": self.iterations,
            "health": self.health,
            "resources": {name: rh.to_dict()
                          for name, rh in self.resources.items()},
            "certificates": [c.to_dict() for c in self.certificates],
            "verdicts": [v.to_dict() for v in self.verdicts],
            "tasks": tasks,
        }

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        state = "converged" if self.converged else "NOT converged"
        lines = [f"degraded analysis: {state} after {self.iterations} "
                 f"iterations, {len(self.certificates)} widened ports"]
        for name in sorted(self.resources):
            rh = self.resources[name]
            note = f" ({rh.error_type}: {rh.error})" if rh.error else ""
            lines.append(f"  {name}: {rh.health}{note}")
        for verdict in self.verdicts:
            lines.append(f"  guard: {verdict.verdict} at iteration "
                         f"{verdict.iteration} — {verdict.detail}")
        return "\n".join(lines)
