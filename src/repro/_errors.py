"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Analysis failures (overload, divergence) are separated
from modelling errors (invalid parameters) because they mean different
things: the former is a *property of the analysed system*, the latter a bug
in the caller's model construction.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An event model, task, or system was constructed with invalid
    parameters (e.g. negative period, jitter < 0, empty join)."""


class AnalysisError(ReproError):
    """A local or global analysis could not complete."""


class NotSchedulableError(AnalysisError):
    """The analysed resource is overloaded: a busy window does not close or
    the long-run utilisation exceeds capacity.

    Attributes
    ----------
    resource:
        Name of the overloaded resource, if known.
    utilization:
        The offending utilisation value, if computed.
    """

    def __init__(self, message, resource=None, utilization=None):
        super().__init__(message)
        self.resource = resource
        self.utilization = utilization


class ConvergenceError(AnalysisError):
    """The global compositional fixed-point iteration did not converge
    within the configured iteration limit."""


class UnboundedStreamError(AnalysisError):
    """An event-stream evaluation would require an unbounded number of
    events in a finite window (e.g. ``eta_plus`` on a stream with zero
    minimum distance and no rate limit)."""
