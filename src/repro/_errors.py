"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Analysis failures (overload, divergence) are separated
from modelling errors (invalid parameters) because they mean different
things: the former is a *property of the analysed system*, the latter a bug
in the caller's model construction.

Every class carries a ``context`` dict of structured attribution
(resource / task / port / junction names, iteration counts, offending
values) so degraded-mode quarantine reports
(:mod:`repro.resilience`) can say *which* node failed without parsing
message strings.  ``context`` is always a plain JSON-compatible dict —
empty when the raise site had nothing to attach.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Attributes
    ----------
    context:
        Structured attribution of the failure (node names, offending
        values) as a plain dict; ``{}`` when nothing was attached.
    """

    def __init__(self, *args, context=None):
        super().__init__(*args)
        self.context = dict(context) if context else {}


class ModelError(ReproError):
    """An event model, task, or system was constructed with invalid
    parameters (e.g. negative period, jitter < 0, empty join)."""


class AnalysisError(ReproError):
    """A local or global analysis could not complete."""


class NotSchedulableError(AnalysisError):
    """The analysed resource is overloaded: a busy window does not close or
    the long-run utilisation exceeds capacity.

    Attributes
    ----------
    resource:
        Name of the overloaded resource, if known.
    task:
        Name of the task whose busy window failed to close, if known.
    utilization:
        The offending utilisation value, if computed.
    """

    def __init__(self, message, resource=None, utilization=None,
                 task=None, context=None):
        merged = dict(context) if context else {}
        if resource is not None:
            merged.setdefault("resource", resource)
        if task is not None:
            merged.setdefault("task", task)
        if utilization is not None:
            merged.setdefault("utilization", utilization)
        super().__init__(message, context=merged)
        self.resource = resource
        self.task = task
        self.utilization = utilization


class ConvergenceError(AnalysisError):
    """The global compositional fixed-point iteration did not converge
    within the configured iteration limit, or a divergence guard
    detected a hopeless residual trend before the limit.

    Attributes
    ----------
    iterations:
        Global iterations completed when the failure was declared.
    verdict:
        Divergence-guard verdict that triggered the early abort
        (``"monotone_growth"``, ``"oscillation"``, ``"model_drift"``)
        or ``None`` when the plain iteration limit was exhausted.
    residuals:
        Recent response-time residual history (one value per global
        iteration, newest last), if the caller recorded it.
    """

    def __init__(self, message, iterations=None, verdict=None,
                 residuals=None, context=None):
        merged = dict(context) if context else {}
        if iterations is not None:
            merged.setdefault("iterations", iterations)
        if verdict is not None:
            merged.setdefault("verdict", verdict)
        super().__init__(message, context=merged)
        self.iterations = iterations
        self.verdict = verdict
        self.residuals = list(residuals) if residuals else []


class UnboundedStreamError(AnalysisError):
    """An event-stream evaluation would require an unbounded number of
    events in a finite window (e.g. ``eta_plus`` on a stream with zero
    minimum distance and no rate limit)."""
