"""Plain-text result tables (markdown-ish) for reports and benchmarks."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 floatfmt: str = ".1f") -> str:
    """Render a list of rows as an aligned markdown table.

    Floats are formatted with *floatfmt*; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w)
                                 for c, w in zip(cells, widths)) + " |"

    out = [line(list(headers)),
           "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
