"""Plain-text result tables (markdown-ish) for reports and benchmarks."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 floatfmt: str = ".1f") -> str:
    """Render a list of rows as an aligned markdown table.

    Floats are formatted with *floatfmt*; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w)
                                 for c, w in zip(cells, widths)) + " |"

    out = [line(list(headers)),
           "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def sweep_table(points: Sequence[dict], outcomes: Sequence[dict],
                floatfmt: str = ".4g") -> str:
    """Aligned table for a design-space sweep.

    *points* carries one dict of axis values per row, *outcomes* the
    matching dict of result metrics; headers are the union of keys in
    first-seen order (axes first), missing entries render as ``-``.
    """
    if len(points) != len(outcomes):
        raise ValueError(
            f"{len(points)} points but {len(outcomes)} outcomes")

    def ordered_keys(dicts: Sequence[dict]) -> List[str]:
        keys: List[str] = []
        for d in dicts:
            for k in d:
                if k not in keys:
                    keys.append(k)
        return keys

    axis_keys = ordered_keys(points)
    metric_keys = ordered_keys(outcomes)
    headers = axis_keys + metric_keys
    rows = []
    for point, outcome in zip(points, outcomes):
        row = [point.get(k, "-") for k in axis_keys]
        row += [outcome.get(k, "-") if outcome.get(k) is not None else "-"
                for k in metric_keys]
        rows.append(row)
    return render_table(headers, rows, floatfmt=floatfmt)
