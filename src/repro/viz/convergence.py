"""Convergence diagnostics renderer for the global fixed-point loop.

Consumes the ``global_iteration`` spans emitted by
:func:`repro.system.propagation.analyze_system` when observability is
enabled (see :mod:`repro.obs`) and renders them as an ASCII table of
per-iteration residuals — which response time is still moving, how far,
and which propagated output models have not settled yet::

    import repro
    repro.configure(enabled=True)
    repro.analyze_system(system)
    print(ConvergenceReport.from_tracer(repro.get_tracer()).render())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .tables import render_table

#: Span name the propagation loop uses for one global iteration.
ITERATION_SPAN = "global_iteration"

#: Resilience and batch counters surfaced in the report footer when any
#: of them fired (see :mod:`repro.resilience` and :mod:`repro.batch`).
RESILIENCE_COUNTERS = (
    "resilience.quarantines",
    "resilience.widenings",
    "propagation.divergence_detected",
    "batch.retries",
    "batch.poisoned",
)

#: Engine-efficiency metrics (counter or gauge) surfaced on their own
#: footer line: how much work the vector kernels batched, how much the
#: incremental memo and the compiled-curve cache reused.
ENGINE_METRICS = (
    "kernels.vector_lanes",
    "memo.reuse_rate",
    "compile.cache_hit_rate",
)


class ConvergenceReport:
    """Per-iteration convergence history of one (or more) analysis runs.

    Built from finished tracer spans (:meth:`from_tracer`) or from the
    dict records of an exported JSONL trace (:meth:`from_records`).
    """

    def __init__(self, rows: List[Dict[str, Any]],
                 counters: Optional[Dict[str, float]] = None,
                 engine: Optional[Dict[str, float]] = None):
        #: One dict per global iteration, in iteration order.
        self.rows = rows
        #: Resilience/batch counter values captured at build time
        #: (counter name -> value; only nonzero ones are rendered).
        self.counters = dict(counters or {})
        #: Engine-efficiency metric values (see :data:`ENGINE_METRICS`).
        self.engine = dict(engine or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer, registry=None) -> "ConvergenceReport":
        """Build from a tracer; pass a
        :class:`repro.obs.metrics.MetricsRegistry` as *registry* to also
        capture the resilience/batch counters into the report footer."""
        rows = []
        for span in tracer.spans(ITERATION_SPAN):
            rows.append({**span.attributes, "duration": span.duration})
        counters = {}
        engine = {}
        if registry is not None:
            snapshot = registry.snapshot()
            counter_values = snapshot.get("counters", {})
            counters = {name: counter_values[name]
                        for name in RESILIENCE_COUNTERS
                        if counter_values.get(name)}
            gauge_values = snapshot.get("gauges", {})
            for name in ENGINE_METRICS:
                value = counter_values.get(name)
                if value is None:
                    value = gauge_values.get(name)
                if value is not None:
                    engine[name] = value
        return cls(rows, counters, engine)

    @classmethod
    def from_records(cls,
                     records: Sequence[Dict[str, Any]]
                     ) -> "ConvergenceReport":
        """Build from JSONL records (see :func:`repro.obs.read_jsonl`)."""
        rows = []
        for record in records:
            if record.get("type") == "span" \
                    and record.get("name") == ITERATION_SPAN:
                rows.append({**record.get("attributes", {}),
                             "duration": record.get("duration")})
        return cls(rows)

    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        return len(self.rows)

    @property
    def converged(self) -> Optional[bool]:
        if not self.rows:
            return None
        return bool(self.rows[-1].get("converged"))

    def render(self, max_ports: int = 4) -> str:
        """ASCII table: one line per global iteration.

        ``max_ports`` limits how many changed port names are spelled out
        per line (the rest are elided as ``+N``).
        """
        if not self.rows:
            return ("(no convergence data -- run analyze_system with "
                    "repro.configure(enabled=True))")
        table_rows = []
        for row in self.rows:
            changed = row.get("changed_ports") or []
            shown = ", ".join(changed[:max_ports])
            if len(changed) > max_ports:
                shown += f" +{len(changed) - max_ports}"
            duration = row.get("duration")
            table_rows.append((
                row.get("iteration", "?"),
                _fmt_residual(row.get("residual_r_max")),
                row.get("residual_argmax") or "-",
                row.get("unstable_models", "?"),
                shown or "-",
                f"{duration * 1e3:.1f}" if duration is not None else "-",
            ))
        table = render_table(
            ["iter", "max |dR+|", "worst task", "unstable", "moving ports",
             "ms"],
            table_rows)
        verdict = ("converged" if self.converged
                   else "NOT converged" if self.converged is not None
                   else "unknown")
        report = (f"Convergence of the global fixed-point iteration "
                  f"({self.iterations} iterations, {verdict}):\n{table}")
        active = {n: v for n, v in self.counters.items() if v}
        if active:
            pairs = ", ".join(f"{n}={v:g}" for n, v in sorted(
                active.items()))
            report += f"\nresilience: {pairs}"
        if self.engine:
            pairs = ", ".join(f"{n}={v:g}" for n, v in sorted(
                self.engine.items()))
            report += f"\nengine: {pairs}"
        return report


def _fmt_residual(value) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    return f"{value:.6g}"


def render_convergence_report(source) -> str:
    """Render a convergence report from a tracer or JSONL record list."""
    if hasattr(source, "spans"):
        return ConvergenceReport.from_tracer(source).render()
    return ConvergenceReport.from_records(source).render()
