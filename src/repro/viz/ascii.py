"""ASCII rendering of arrival curves and step functions.

No plotting backend is assumed (the benchmarks run headless); curves are
rendered as monospace step charts good enough to eyeball the paper's
Figure 4, and exported as CSV series for external plotting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .._errors import ModelError
from ..eventmodels.base import EventModel

Series = List[Tuple[float, int]]


def eta_plus_series(model: EventModel, t_max: float,
                    step: float) -> Series:
    """Sampled η⁺ curve of one model."""
    return model.eta_plus_series(t_max, step)


def render_step_chart(series_by_label: "Dict[str, Series]",
                      width: int = 72, height: int = 18,
                      title: str = "") -> str:
    """Render several step series into one ASCII chart.

    Each series gets a distinct marker; values are bucketed onto a
    character grid.  Later series draw over earlier ones, so order the
    most interesting curve last.
    """
    if not series_by_label:
        raise ModelError("nothing to render")
    markers = "#*o+x%@&"
    all_points = [p for s in series_by_label.values() for p in s]
    if not all_points:
        raise ModelError("all series empty")
    t_max = max(p[0] for p in all_points)
    y_max = max(p[1] for p in all_points)
    if t_max <= 0 or y_max <= 0:
        raise ModelError("degenerate axes")

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, series) in enumerate(series_by_label.items()):
        mark = markers[idx % len(markers)]
        for t, y in series:
            col = min(width - 1, int(round(t / t_max * (width - 1))))
            row = min(height - 1, int(round(y / y_max * (height - 1))))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"eta+ (max {y_max})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" 0{'':>{width - 12}}dt = {t_max:g}")
    for idx, label in enumerate(series_by_label):
        lines.append(f"  {markers[idx % len(markers)]} {label}")
    return "\n".join(lines)


def series_to_csv(series_by_label: "Dict[str, Series]") -> str:
    """All series on a shared Δt axis as CSV text (for external tools)."""
    if not series_by_label:
        raise ModelError("nothing to export")
    labels = list(series_by_label)
    axis = sorted({t for s in series_by_label.values() for t, _ in s})
    lookup = {label: dict(series)
              for label, series in series_by_label.items()}
    lines = ["dt," + ",".join(labels)]
    for t in axis:
        row = [f"{t:g}"]
        for label in labels:
            value = lookup[label].get(t)
            row.append("" if value is None else str(value))
        lines.append(",".join(row))
    return "\n".join(lines)
