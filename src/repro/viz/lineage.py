"""Renderers for event-model lineage graphs.

Turns the :class:`repro.explain.lineage.LineageGraph` recorded during a
global analysis into either an ASCII derivation tree (for terminals and
reports) or Graphviz DOT (for everything else)::

    print(render_lineage(graph, "F1_rx.S3"))
    Path("lineage.dot").write_text(lineage_to_dot(graph))

Both renderers are pure functions over the graph snapshot — they never
touch the engine or the recorder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..explain.lineage import LineageGraph


def render_lineage(graph: LineageGraph, port: str) -> str:
    """ASCII derivation tree of *port*, upstream-expanded.

    Ports resolved more than once render once in full and afterwards as
    a back-reference, so shared subtrees (one frame feeding many
    receivers) and cycles stay readable.
    """
    lines: List[str] = []
    seen: set = set()

    def walk(name: str, prefix: str, branch: str) -> None:
        node = graph.node(name)
        label = f"{name}  [{node.describe()}]" if node is not None \
            else f"{name}  [unrecorded]"
        if name in seen:
            lines.append(f"{prefix}{branch}{name}  (see above)")
            return
        seen.add(name)
        lines.append(f"{prefix}{branch}{label}")
        if node is None:
            return
        child_prefix = prefix
        if branch:
            child_prefix += "   " if branch.startswith("└") else "│  "
        inputs = list(node.inputs)
        for i, child in enumerate(inputs):
            last = i == len(inputs) - 1
            walk(child, child_prefix, "└─ " if last else "├─ ")

    walk(port, "", "")
    return "\n".join(lines)


def lineage_to_dot(graph: LineageGraph,
                   roots: Optional[Sequence[str]] = None,
                   name: str = "lineage") -> str:
    """Graphviz DOT of the lineage DAG (optionally restricted to the
    ancestry of *roots*); edges point upstream → downstream."""
    if roots:
        keep = set()
        for root in roots:
            keep.add(root)
            keep.update(n.port for n in graph.ancestors(root))
        nodes = [n for n in graph.nodes() if n.port in keep]
    else:
        nodes = graph.nodes()

    shape = {
        "source": "ellipse",
        "pack": "box3d",
        "unpack": "invhouse",
        "theta_tau": "box",
        "or_join": "diamond",
        "and_join": "diamond",
        "activation": "diamond",
    }
    lines = [f"digraph {name} {{",
             "  rankdir=LR;",
             "  node [fontname=\"Helvetica\", fontsize=10];"]
    known = {n.port for n in nodes}
    for node in nodes:
        label = _dot_escape(f"{node.port}\n{node.symbol} {node.kind}")
        detail = node.describe()
        lines.append(
            f"  \"{_dot_escape(node.port)}\" [label=\"{label}\", "
            f"shape={shape.get(node.kind, 'box')}, "
            f"tooltip=\"{_dot_escape(detail)}\"];")
    for node in nodes:
        for src in node.inputs:
            if roots and src not in known:
                continue
            lines.append(f"  \"{_dot_escape(src)}\" -> "
                         f"\"{_dot_escape(node.port)}\";")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\"", "\\\"") \
        .replace("\n", "\\n")
