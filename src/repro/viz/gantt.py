"""ASCII Gantt charts for simulator traces.

Renders per-task job intervals (activation → completion) on a shared
monospace timeline — handy for eyeballing preemption/arbitration
behaviour of a :class:`~repro.sim.measure.ResponseRecorder` run.

Each row shows a task; ``#`` marks time buckets where a job of the task
was in flight (queued or running — the recorder only knows activation
and completion), ``.`` marks idle buckets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .._errors import ModelError
from ..sim.measure import ResponseRecorder

Interval = Tuple[float, float]


def render_gantt(jobs_by_task: "Dict[str, List[Interval]]",
                 t_start: float = 0.0, t_end: float = None,
                 width: int = 72) -> str:
    """Render (activation, completion) intervals as a Gantt chart."""
    if not jobs_by_task:
        raise ModelError("nothing to render")
    spans = [iv for ivs in jobs_by_task.values() for iv in ivs]
    if not spans:
        raise ModelError("no jobs recorded")
    if t_end is None:
        t_end = max(c for _, c in spans)
    if t_end <= t_start:
        raise ModelError("empty time range")
    scale = (t_end - t_start) / width

    label_width = max(len(name) for name in jobs_by_task)
    lines = []
    for name in sorted(jobs_by_task):
        row = ["."] * width
        for activation, completion in jobs_by_task[name]:
            lo = max(0, int((activation - t_start) / scale))
            hi = min(width - 1, int((completion - t_start) / scale))
            if completion <= t_start or activation >= t_end:
                continue
            for col in range(lo, hi + 1):
                row[col] = "#"
        lines.append(f"{name.rjust(label_width)} |{''.join(row)}|")
    axis = (f"{' ' * label_width} "
            f"{t_start:<10g}{'':>{max(0, width - 18)}}{t_end:>8g}")
    lines.append(axis)
    return "\n".join(lines)


def gantt_from_recorder(recorder: ResponseRecorder,
                        t_start: float = 0.0, t_end: float = None,
                        width: int = 72) -> str:
    """Gantt chart straight from a simulation's response recorder."""
    jobs = {task: recorder.jobs(task) for task in recorder.tasks()}
    return render_gantt(jobs, t_start=t_start, t_end=t_end, width=width)
