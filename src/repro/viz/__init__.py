"""Reporting helpers: ASCII charts, CSV series, text tables, and the
convergence diagnostics renderer."""

from .ascii import eta_plus_series, render_step_chart, series_to_csv
from .convergence import ConvergenceReport, render_convergence_report
from .gantt import gantt_from_recorder, render_gantt
from .lineage import lineage_to_dot, render_lineage
from .tables import render_table, sweep_table

__all__ = [
    "eta_plus_series",
    "render_step_chart",
    "series_to_csv",
    "render_table",
    "sweep_table",
    "render_gantt",
    "gantt_from_recorder",
    "ConvergenceReport",
    "render_convergence_report",
    "render_lineage",
    "lineage_to_dot",
]
