"""One-shot reproduction report: ``python -m repro``.

Runs the paper's full evaluation (both analysis variants, Figure 4
curves, simulation validation) and prints a self-contained markdown-ish
report.  This is the "does the reproduction hold on this machine" button.
"""

from __future__ import annotations

import sys

from .can import CanBusTiming
from .eventmodels import trace_within_bounds
from .examples_lib.rox08 import (
    BIT_TIME,
    CPU_TASKS,
    SOURCES,
    TASK_SIGNAL,
    analyze_both_variants,
    build_com_layer,
    build_source_models,
    build_system,
)
from .sim import GatewayScenario, arrivals_for_models, simulate_gateway
from .system import analyze_system
from .system.propagation import _StreamResolver
from .viz import eta_plus_series, render_step_chart, render_table

SIM_HORIZON = 100_000.0


def build_report(sim_horizon: float = SIM_HORIZON) -> str:
    """Assemble the full reproduction report as text."""
    sections = []

    # --- Table 1 ------------------------------------------------------
    sections.append("## Table 1 — Sources\n" + render_table(
        ["Source", "Period", "Type"],
        [(n, p, prop.value) for n, (p, prop) in SOURCES.items()],
        floatfmt=".0f"))

    # --- Tables 2 and 3 ----------------------------------------------
    hem_result = analyze_system(build_system("hem"))
    sections.append("## Table 2 — Bus (CAN)\n" + render_table(
        ["Frame", "R- bus", "R+ bus"],
        [(f, hem_result.task_result(f).r_min,
          hem_result.task_result(f).r_max) for f in ("F1", "F2")]))

    comparison = analyze_both_variants()
    sections.append("## Table 3 — CPU1 WCRT, flat vs HEM\n" + render_table(
        ["Task", "R+ flat", "R+ HEM", "Reduction"],
        [(t, flat, hem, f"{red:.1f}%")
         for t, flat, hem, red in comparison.rows()]))

    # --- Figure 4 ------------------------------------------------------
    system = build_system("hem")
    responses = {}
    for rr in hem_result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    frame_out = resolver.port("F1")
    series = {"F1 frames": eta_plus_series(frame_out.outer, 2000.0, 25.0)}
    for label in frame_out.labels:
        series[f"signal {label}"] = eta_plus_series(
            frame_out.inner(label), 2000.0, 25.0)
    sections.append("## Figure 4 — eta+ curves\n"
                    + render_step_chart(series))

    # --- Simulation validation -----------------------------------------
    layer = build_com_layer()
    scenario = GatewayScenario(
        layer=layer,
        bus_timing=CanBusTiming(BIT_TIME),
        signal_arrivals=arrivals_for_models(build_source_models(),
                                            sim_horizon, mode="worst"),
        cpu_tasks={t: (prio, cet, TASK_SIGNAL[t])
                   for t, (cet, prio) in CPU_TASKS.items()},
    )
    run = simulate_gateway(scenario, sim_horizon)
    rows = []
    sound = True
    for name in ("F1", "F2", "T1", "T2", "T3"):
        observed = run.responses.worst_case(name)
        bound = hem_result.wcrt(name)
        ok = observed <= bound + 1e-6
        sound = sound and ok
        rows.append((name, observed, bound, "OK" if ok else "VIOLATED"))
    for label in frame_out.labels:
        ok = trace_within_bounds(run.delivered(label),
                                 frame_out.inner(label))
        sound = sound and ok
        rows.append((f"rx.{label}", len(run.delivered(label)),
                     "inner bound", "OK" if ok else "VIOLATED"))
    sections.append(
        f"## Simulation validation ({sim_horizon:g} time units)\n"
        + render_table(["Item", "observed", "bound", "verdict"], rows))

    verdict = "SOUND" if sound else "*** BOUND VIOLATIONS ***"
    sections.append(f"## Verdict: {verdict}")
    return "\n\n".join(sections)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    horizon = SIM_HORIZON
    if argv:
        try:
            horizon = float(argv[0])
        except ValueError:
            print(f"usage: python -m repro [sim_horizon]",
                  file=sys.stderr)
            return 2
    report = build_report(horizon)
    print(report)
    return 0 if "VIOLATED" not in report else 1
