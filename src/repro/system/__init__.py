"""System graph and global compositional analysis engine."""

from .junctions import (
    and_join_buffer_bound,
    check_and_join_rates,
    decompose_multi_input,
)
from .model import (
    Junction,
    JunctionKind,
    Resource,
    Source,
    System,
    Task,
)
from .path import PathLatency, path_latency
from .propagation import DEFAULT_MAX_ITERATIONS, analyze_system
from .serialize import (
    canonical_json,
    content_hash,
    model_from_dict,
    model_to_dict,
    scheduler_from_dict,
    scheduler_to_dict,
    system_from_dict,
    system_hash,
    system_to_dict,
)

__all__ = [
    "System",
    "Source",
    "Task",
    "Resource",
    "Junction",
    "JunctionKind",
    "analyze_system",
    "DEFAULT_MAX_ITERATIONS",
    "path_latency",
    "PathLatency",
    "check_and_join_rates",
    "and_join_buffer_bound",
    "decompose_multi_input",
    "system_to_dict",
    "system_from_dict",
    "system_hash",
    "canonical_json",
    "content_hash",
    "model_to_dict",
    "model_from_dict",
    "scheduler_to_dict",
    "scheduler_from_dict",
]
