"""System graph: resources, tasks, sources, junctions.

The performance model of a distributed system (paper section 3, Fig. 1):
event streams interconnected by operations.  Concretely:

* :class:`Source` — an external stimulus with a fixed event model.
* :class:`Task` — a stream operation bound to a :class:`Resource`; its
  activating stream is the output stream of its predecessor.  Analysing
  the resource yields response times, and Θ_τ turns the activating model
  into the task's output model.
* :class:`Junction` — an explicit stream constructor node (OR, AND, or
  the hierarchical *pack*); tasks activated by multiple streams are
  decomposed into a junction followed by a single-input task, exactly as
  in the paper ("the first is an event stream constructor ... the second
  models the actual processing").
* :class:`Resource` — a processor or bus with a scheduling policy from
  :mod:`repro.analysis`.

The graph is deliberately explicit (named nodes, named ports) rather than
implicit via Python object wiring, so systems can be inspected, printed,
and serialised for reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._errors import ModelError
from ..analysis.interface import Scheduler, TaskSpec
from ..core.constructors import TransferProperty
from ..eventmodels.base import EventModel


class JunctionKind(enum.Enum):
    """Stream-constructor flavours available as junction nodes."""

    OR = "or"
    AND = "and"
    PACK = "pack"
    UNPACK = "unpack"


@dataclass
class Source:
    """External event source with a fixed input event model."""

    name: str
    model: EventModel

    def __post_init__(self):
        if not isinstance(self.model, EventModel):
            raise ModelError(f"source {self.name}: model must be an "
                             f"EventModel",
                             context={"source": self.name})


@dataclass
class Task:
    """A computation or transmission bound to a resource.

    Attributes
    ----------
    name:
        Globally unique task name.
    resource:
        Name of the resource this task executes on.
    c_min / c_max:
        Best-/worst-case execution (or transmission) time.
    inputs:
        Names of the nodes (source/task/junction output ports) whose
        streams activate this task.  More than one input requires an
        ``activation`` combinator.
    priority / slot / deadline:
        Scheduling parameters forwarded to the resource's analysis.
    activation:
        How multiple inputs combine: "or" or "and" (single-input tasks
        ignore this).
    """

    name: str
    resource: str
    c_min: float
    c_max: float
    inputs: List[str] = field(default_factory=list)
    priority: int = 0
    slot: Optional[float] = None
    deadline: Optional[float] = None
    activation: str = "or"
    blocking: float = 0.0

    def __post_init__(self):
        if self.c_min < 0 or self.c_max < self.c_min:
            raise ModelError(
                f"task {self.name} on resource {self.resource!r}: need "
                f"0 <= c_min <= c_max (got [{self.c_min}, {self.c_max}])",
                context={"task": self.name, "resource": self.resource,
                         "c_min": self.c_min, "c_max": self.c_max})
        if self.activation not in ("or", "and"):
            raise ModelError(
                f"task {self.name}: activation must be 'or' or 'and' "
                f"(got {self.activation!r})",
                context={"task": self.name, "resource": self.resource,
                         "activation": self.activation})


@dataclass
class Junction:
    """Explicit stream-constructor node.

    For ``PACK`` junctions, ``properties[input]`` gives the transfer
    property of each input stream and ``timer`` optionally names a source
    acting as the transmission timer.  An ``UNPACK`` junction exposes one
    output port per inner stream of its (hierarchical) input; port names
    are ``f"{junction}.{label}"``.
    """

    name: str
    kind: JunctionKind
    inputs: List[str]
    properties: Dict[str, TransferProperty] = field(default_factory=dict)
    timer: Optional[str] = None

    def __post_init__(self):
        if not self.inputs:
            raise ModelError(f"junction {self.name}: needs inputs",
                             context={"junction": self.name,
                                      "kind": self.kind.value})
        if self.kind is JunctionKind.PACK:
            missing = [i for i in self.inputs if i not in self.properties]
            if missing:
                raise ModelError(
                    f"pack junction {self.name}: missing transfer "
                    f"properties for {missing}",
                    context={"junction": self.name,
                             "missing_properties": list(missing)})
        if self.kind is JunctionKind.UNPACK and len(self.inputs) != 1:
            raise ModelError(
                f"unpack junction {self.name}: exactly one input "
                f"required (got {self.inputs})",
                context={"junction": self.name,
                         "inputs": list(self.inputs)})


@dataclass
class Resource:
    """A processor or bus with a local scheduling analysis."""

    name: str
    scheduler: Scheduler


class System:
    """A complete analysable system model.

    Build incrementally with :meth:`add_source`, :meth:`add_resource`,
    :meth:`add_task`, :meth:`add_junction`; then hand to
    :func:`repro.system.propagation.analyze_system`.
    """

    def __init__(self, name: str = "system"):
        self.name = name
        self.sources: Dict[str, Source] = {}
        self.resources: Dict[str, Resource] = {}
        self.tasks: Dict[str, Task] = {}
        self.junctions: Dict[str, Junction] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_source(self, name: str, model: EventModel) -> Source:
        self._check_new_name(name)
        src = Source(name, model)
        self.sources[name] = src
        return src

    def add_resource(self, name: str, scheduler: Scheduler) -> Resource:
        if name in self.resources:
            raise ModelError(f"duplicate resource name {name!r}",
                             context={"resource": name})
        res = Resource(name, scheduler)
        self.resources[name] = res
        return res

    def add_task(self, name: str, resource: str, c: Tuple[float, float],
                 inputs: Sequence[str], priority: int = 0,
                 slot: Optional[float] = None,
                 deadline: Optional[float] = None,
                 activation: str = "or",
                 blocking: float = 0.0) -> Task:
        self._check_new_name(name)
        if resource not in self.resources:
            raise ModelError(
                f"task {name}: unknown resource {resource!r} (known: "
                f"{sorted(self.resources) or '(none)'})",
                context={"task": name, "resource": resource})
        task = Task(name, resource, c[0], c[1], list(inputs), priority,
                    slot, deadline, activation, blocking)
        self.tasks[name] = task
        return task

    def add_junction(self, name: str, kind: JunctionKind,
                     inputs: Sequence[str],
                     properties: Optional[Dict[str, TransferProperty]] = None,
                     timer: Optional[str] = None) -> Junction:
        self._check_new_name(name)
        junction = Junction(name, kind, list(inputs), properties or {},
                            timer)
        self.junctions[name] = junction
        return junction

    def add_pack_junction(self, name: str,
                          signals: Dict[str, TransferProperty],
                          timer: Optional[str] = None) -> Junction:
        """Convenience wrapper: a PACK junction over named input streams."""
        return self.add_junction(name, JunctionKind.PACK,
                                 list(signals), properties=signals,
                                 timer=timer)

    def _check_new_name(self, name: str) -> None:
        if name in self.sources or name in self.tasks \
                or name in self.junctions:
            kind = ("source" if name in self.sources
                    else "task" if name in self.tasks else "junction")
            raise ModelError(
                f"duplicate node name {name!r} (already a {kind})",
                context={"node": name, "existing_kind": kind})

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def node_names(self) -> List[str]:
        return (list(self.sources) + list(self.tasks)
                + list(self.junctions))

    def tasks_on(self, resource: str) -> List[Task]:
        return [t for t in self.tasks.values() if t.resource == resource]

    def producer_of(self, port: str) -> str:
        """Resolve a port name to its producing node.

        A port is either a node name verbatim (source, task, or a
        junction's unadorned output) or ``junction.label`` selecting one
        output of an UNPACK junction.  Exact node names win, so task
        names may contain dots without being misparsed.
        """
        if port in self.sources or port in self.tasks \
                or port in self.junctions:
            return port
        if "." in port:
            node = port.split(".", 1)[0]
            if node in self.junctions:
                return node
        raise ModelError(f"unknown stream producer {port!r}",
                         context={"port": port})

    def validate(self) -> None:
        """Check referential integrity of the whole graph."""
        for task in self.tasks.values():
            if not task.inputs:
                raise ModelError(
                    f"task {task.name} on resource {task.resource!r}: "
                    f"no activating input",
                    context={"task": task.name,
                             "resource": task.resource})
            for port in task.inputs:
                try:
                    self.producer_of(port)
                except ModelError as exc:
                    raise ModelError(
                        f"task {task.name}: input port {port!r} has no "
                        f"producer",
                        context={"task": task.name,
                                 "resource": task.resource,
                                 "port": port}) from exc
        for junction in self.junctions.values():
            for port in junction.inputs:
                try:
                    self.producer_of(port)
                except ModelError as exc:
                    raise ModelError(
                        f"junction {junction.name}: input port {port!r} "
                        f"has no producer",
                        context={"junction": junction.name,
                                 "port": port}) from exc
            if junction.timer is not None:
                if junction.timer not in self.sources:
                    raise ModelError(
                        f"junction {junction.name}: timer "
                        f"{junction.timer!r} must be a source",
                        context={"junction": junction.name,
                                 "timer": junction.timer})

    def describe(self) -> str:
        """Human-readable dump of the whole graph (sources, resources
        with their policies, tasks with wiring, junctions)."""
        lines = [f"System {self.name!r}"]
        if self.sources:
            lines.append("  sources:")
            for src in self.sources.values():
                lines.append(f"    {src.name}: {src.model!r}")
        if self.resources:
            lines.append("  resources:")
            for res in self.resources.values():
                lines.append(
                    f"    {res.name}: {res.scheduler.policy}")
        if self.tasks:
            lines.append("  tasks:")
            for t in self.tasks.values():
                extras = []
                if t.slot is not None:
                    extras.append(f"slot={t.slot}")
                if t.deadline is not None:
                    extras.append(f"deadline={t.deadline}")
                if t.blocking:
                    extras.append(f"blocking={t.blocking}")
                extra = (", " + ", ".join(extras)) if extras else ""
                lines.append(
                    f"    {t.name} on {t.resource} "
                    f"C=[{t.c_min}, {t.c_max}] prio={t.priority}"
                    f"{extra} <- {' ,'.join(t.inputs) or '(none)'}")
        if self.junctions:
            lines.append("  junctions:")
            for j in self.junctions.values():
                timer = f" timer={j.timer}" if j.timer else ""
                lines.append(
                    f"    {j.name} [{j.kind.value}]{timer} "
                    f"<- {', '.join(j.inputs)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<System {self.name}: {len(self.sources)} sources, "
                f"{len(self.resources)} resources, {len(self.tasks)} "
                f"tasks, {len(self.junctions)} junctions>")
