"""System serialisation: dump/load system graphs as plain dicts.

Enables config-driven analysis (JSON/TOML system descriptions checked
into a repo) and golden-file testing.  Schedulers and event models are
encoded by type tags; arbitrary curve models are sampled via
:func:`repro.eventmodels.freeze` before encoding, which keeps the format
closed under every model the engine can produce (at the documented
conservative-extension precision).

Round trip: ``system_from_dict(system_to_dict(s))`` reproduces an
equivalent system (same analysis results).

The emitted dict is **canonical**: node maps are sorted by name, so two
structurally identical systems built in different insertion orders
serialise identically, and the round trip is a fixed point
(``system_to_dict(system_from_dict(d)) == d``).  :func:`canonical_json`
and :func:`system_hash` build on this to give every system a
content-addressed identity — the cache key of the batch engine
(:mod:`repro.batch`), stable across processes and interpreter runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from .._errors import ModelError
from ..analysis.edf import EDFScheduler
from ..analysis.interface import Scheduler
from ..analysis.resource_model import (
    HierarchicalSPPScheduler,
    PeriodicResource,
)
from ..analysis.round_robin import RoundRobinScheduler
from ..analysis.spnp import CanErrorModel, SPNPScheduler
from ..analysis.spp import SPPScheduler
from ..analysis.tdma import TDMAScheduler
from ..core.constructors import TransferProperty
from ..eventmodels.base import EventModel
from ..eventmodels.curves import CurveEventModel, freeze
from ..eventmodels.standard import StandardEventModel
from .model import JunctionKind, System

#: Sampling depth when an arbitrary event model must be frozen.
FREEZE_N = 64


# ----------------------------------------------------------------------
# event models
# ----------------------------------------------------------------------
def model_to_dict(model: EventModel) -> "Dict[str, Any]":
    if isinstance(model, StandardEventModel):
        return {
            "type": "standard",
            "period": model.period,
            "jitter": model.jitter,
            "d_min": model.d_min,
            "sporadic": model.sporadic,
            "name": model.name,
        }
    if not isinstance(model, CurveEventModel):
        model = freeze(model, n_max=FREEZE_N)
    return {
        "type": "curve",
        "delta_min": list(model._dmin),
        "delta_plus": list(model._dplus),
        "n_period": model._n_period,
        "t_period": model._t_period,
        "name": model.name,
    }


def model_from_dict(data: "Dict[str, Any]") -> EventModel:
    kind = data.get("type")
    if kind == "standard":
        return StandardEventModel(
            data["period"], data["jitter"], data["d_min"],
            sporadic=data.get("sporadic", False),
            name=data.get("name", "sem"))
    if kind == "curve":
        return CurveEventModel(
            data["delta_min"], data["delta_plus"],
            n_period=data.get("n_period"),
            t_period=data.get("t_period"),
            name=data.get("name", "curve"))
    raise ModelError(f"unknown event-model type {kind!r}")


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
def scheduler_to_dict(scheduler: Scheduler) -> "Dict[str, Any]":
    if isinstance(scheduler, HierarchicalSPPScheduler):
        return {"policy": "hspp",
                "server_period": scheduler.server.period,
                "server_budget": scheduler.server.budget}
    if isinstance(scheduler, SPPScheduler):
        return {"policy": "spp",
                "utilization_limit": scheduler.utilization_limit}
    if isinstance(scheduler, SPNPScheduler):
        data = {"policy": "spnp",
                "utilization_limit": scheduler.utilization_limit}
        # Optional key: only emitted when present, so hashes of systems
        # without an error model are unchanged.
        if scheduler.error_model is not None:
            em = scheduler.error_model
            data["error_model"] = {"burst_errors": em.burst_errors,
                                   "error_rate": em.error_rate,
                                   "recovery_time": em.recovery_time}
        return data
    if isinstance(scheduler, RoundRobinScheduler):
        return {"policy": "round_robin",
                "utilization_limit": scheduler.utilization_limit}
    if isinstance(scheduler, TDMAScheduler):
        return {"policy": "tdma"}
    if isinstance(scheduler, EDFScheduler):
        return {"policy": "edf",
                "utilization_limit": scheduler.utilization_limit}
    raise ModelError(
        f"scheduler {type(scheduler).__name__} has no serialisation")


def scheduler_from_dict(data: "Dict[str, Any]") -> Scheduler:
    policy = data.get("policy")
    if policy == "spp":
        return SPPScheduler(data.get("utilization_limit", 1.0))
    if policy == "spnp":
        error_model = None
        if data.get("error_model"):
            em = data["error_model"]
            error_model = CanErrorModel(
                burst_errors=em.get("burst_errors", 0),
                error_rate=em.get("error_rate", 0.0),
                recovery_time=em.get("recovery_time", 0.0))
        return SPNPScheduler(data.get("utilization_limit", 1.0),
                             error_model=error_model)
    if policy == "round_robin":
        return RoundRobinScheduler(data.get("utilization_limit", 1.0))
    if policy == "tdma":
        return TDMAScheduler()
    if policy == "edf":
        return EDFScheduler(data.get("utilization_limit", 1.0))
    if policy == "hspp":
        return HierarchicalSPPScheduler(PeriodicResource(
            data["server_period"], data["server_budget"]))
    raise ModelError(f"unknown scheduler policy {policy!r}")


# ----------------------------------------------------------------------
# whole systems
# ----------------------------------------------------------------------
def system_to_dict(system: System) -> "Dict[str, Any]":
    """Serialise a system graph to a canonical JSON-compatible dict.

    Node maps are emitted sorted by name so the output is independent of
    construction order; list-valued fields (task/junction ``inputs``)
    keep their order because it is semantically meaningful.
    """
    return {
        "name": system.name,
        "sources": {
            name: model_to_dict(src.model)
            for name, src in sorted(system.sources.items())
        },
        "resources": {
            name: scheduler_to_dict(res.scheduler)
            for name, res in sorted(system.resources.items())
        },
        "tasks": {
            name: {
                "resource": t.resource,
                "c_min": t.c_min,
                "c_max": t.c_max,
                "inputs": list(t.inputs),
                "priority": t.priority,
                "slot": t.slot,
                "deadline": t.deadline,
                "activation": t.activation,
                "blocking": t.blocking,
            }
            for name, t in sorted(system.tasks.items())
        },
        "junctions": {
            name: {
                "kind": j.kind.value,
                "inputs": list(j.inputs),
                "properties": {k: v.value
                               for k, v in sorted(j.properties.items())},
                "timer": j.timer,
            }
            for name, j in sorted(system.junctions.items())
        },
    }


def system_from_dict(data: "Dict[str, Any]") -> System:
    """Rebuild a system graph from :func:`system_to_dict` output."""
    system = System(data.get("name", "system"))
    for name, model_data in data.get("sources", {}).items():
        system.add_source(name, model_from_dict(model_data))
    for name, sched_data in data.get("resources", {}).items():
        system.add_resource(name, scheduler_from_dict(sched_data))
    for name, t in data.get("tasks", {}).items():
        system.add_task(name, t["resource"], (t["c_min"], t["c_max"]),
                        t["inputs"], priority=t.get("priority", 0),
                        slot=t.get("slot"), deadline=t.get("deadline"),
                        activation=t.get("activation", "or"),
                        blocking=t.get("blocking", 0.0))
    for name, j in data.get("junctions", {}).items():
        system.add_junction(
            name, JunctionKind(j["kind"]), j["inputs"],
            properties={k: TransferProperty(v)
                        for k, v in j.get("properties", {}).items()},
            timer=j.get("timer"))
    system.validate()
    return system


# ----------------------------------------------------------------------
# canonical encoding and content hashing
# ----------------------------------------------------------------------
def canonical_json(data: Any) -> str:
    """Canonical JSON encoding of a JSON-compatible value.

    Keys are sorted at every nesting level and separators carry no
    whitespace, so the encoding depends only on the *content* of the
    value — not on dict insertion order, ``PYTHONHASHSEED``, or which
    process produced it.  Floats rely on :func:`repr`'s shortest-
    round-trip representation, which is identical across CPython builds.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of *data*."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def system_hash(system: System) -> str:
    """Deterministic content hash of a system graph.

    Two systems hash equal iff their canonical serialisations agree;
    the digest is stable across processes and interpreter invocations,
    which is what makes it usable as a cross-run cache key.
    """
    return content_hash(system_to_dict(system))
