"""Global compositional analysis: the fixed-point iteration.

This is the system-level loop the paper describes in its introduction:

    "in each global iteration of the compositional system level analysis,
     local analysis is performed for each component to derive response
     times and the timing of output event streams.  Afterwards, the
     calculated output event streams are propagated to the connected
     components, where they are used as input event streams for the
     subsequent global iteration."

The engine resolves every task's activating event model from the stream
graph (applying junction constructors — including the hierarchical pack
constructor and the unpack deconstructor — on the way), runs each
resource's local analysis, derives output models through Θ_τ (with inner
updates for hierarchical streams), and repeats until both response times
and propagated event models are stable.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .. import obs as _obs
from .._errors import ConvergenceError, ModelError
from ..obs.bus import BUS as _BUS
from ..analysis.interface import TaskSpec
from ..analysis.memo import AnalysisMemo
from ..analysis.results import ResourceResult, SystemResult, TaskResult
from ..core.constructors import hsc_and, hsc_or, hsc_pack
from ..core.deconstruct import unpack_signal
from ..core.hem import is_hierarchical
from ..core.update import BusyWindowOutput, apply_operation
from ..eventmodels import compile as _compile
from ..eventmodels.base import EventModel, models_equal
from ..eventmodels.curves import CachedModel
from ..eventmodels.operations import and_join, or_join
from ..explain.lineage import (
    KIND_ACTIVATION,
    KIND_AND,
    KIND_OR,
    KIND_PACK,
    KIND_SOURCE,
    KIND_THETA,
    KIND_UNPACK,
    lineage as _lineage,
)
from ..timebase import EPS
from .model import Junction, JunctionKind, System, Task

#: Default bound on global iterations before declaring divergence.
DEFAULT_MAX_ITERATIONS = 64

#: Event-count range on which propagated models are compared for
#: convergence.
CONVERGENCE_CHECK_N = 32


class _StreamResolver:
    """Resolves the event model present at any output port of the graph
    for one global iteration, with memoisation and cycle detection."""

    def __init__(self, system: System,
                 responses: "Dict[str, TaskResult]",
                 initial_outputs: "Dict[str, EventModel]"):
        self._system = system
        self._responses = responses
        self._initial = initial_outputs
        self._cache: "Dict[str, EventModel]" = {}
        self._visiting: Set[str] = set()

    # ------------------------------------------------------------------
    def port(self, port: str) -> EventModel:
        """Event model observable at *port* this iteration."""
        cached = self._cache.get(port)
        if cached is not None:
            return cached
        # Compile derived chains into array-backed curves; the global
        # fingerprint cache carries them across iterations, so only
        # streams whose inputs actually moved are recompiled.
        model = _compile.maybe_compile(self._resolve(port), name=port)
        self._cache[port] = model
        return model

    def _resolve(self, port: str) -> EventModel:
        system = self._system
        node = system.producer_of(port)
        if node in system.sources:
            model = system.sources[node].model
            if _obs.enabled:
                _lineage().record(port, KIND_SOURCE, model=repr(model))
            return model
        if node in system.junctions:
            return self._resolve_junction(system.junctions[node], port)
        return self._resolve_task_output(system.tasks[node])

    # ------------------------------------------------------------------
    def _resolve_junction(self, junction: Junction,
                          port: str) -> EventModel:
        key = f"junction:{junction.name}"
        if key in self._visiting:
            raise ModelError(
                f"dependency cycle through junction {junction.name!r} "
                f"while resolving port {port!r}",
                context={"junction": junction.name, "port": port,
                         "reason": "dependency_cycle"})
        self._visiting.add(key)
        try:
            if _obs.enabled:
                _obs.metrics().counter(
                    f"propagation.junction.{junction.kind.name.lower()}"
                ).inc()
                _obs.get_tracer().event(
                    "junction", junction=junction.name,
                    kind=junction.kind.name.lower(), port=port)
            if junction.kind is JunctionKind.UNPACK:
                upstream = self.port(junction.inputs[0])
                if not is_hierarchical(upstream):
                    raise ModelError(
                        f"unpack junction {junction.name}: input stream "
                        f"{junction.inputs[0]!r} is flat",
                        context={"junction": junction.name, "port": port,
                                 "input": junction.inputs[0],
                                 "reason": "unpack_flat_stream"})
                if port == junction.name:
                    # the unadorned port exposes the outer stream
                    if _obs.enabled:
                        _lineage().record(
                            port, KIND_UNPACK, inputs=junction.inputs,
                            rule="Ψ (outer stream)", label="(outer)")
                    return upstream.outer
                label = port[len(junction.name) + 1:]
                if _obs.enabled:
                    _lineage().record(
                        port, KIND_UNPACK, inputs=junction.inputs,
                        rule="Ψ_pa: F_i = L(i)", label=label,
                        from_rule=upstream.rule.name)
                return unpack_signal(upstream, label)

            inputs = {name: self.port(name) for name in junction.inputs}
            if junction.kind is JunctionKind.PACK:
                timer = (self._system.sources[junction.timer].model
                         if junction.timer is not None else None)
                signals = {name: (model, junction.properties[name])
                           for name, model in inputs.items()}
                packed = hsc_pack(signals, timer=timer,
                                  name=junction.name)
                if _obs.enabled:
                    upstream = list(junction.inputs)
                    if junction.timer is not None:
                        # The timer never passes through port(); record
                        # its source node here so the DAG is closed.
                        upstream.append(junction.timer)
                        _lineage().record(junction.timer, KIND_SOURCE,
                                          model=repr(timer))
                    _lineage().record(
                        port, KIND_PACK, inputs=upstream,
                        rule=f"Ω_pa: {packed.rule.describe()}",
                        inner_labels=packed.labels,
                        timer=junction.timer)
                return packed
            if junction.kind is JunctionKind.OR:
                joined = hsc_or(inputs, name=junction.name)
                if _obs.enabled:
                    _lineage().record(port, KIND_OR,
                                      inputs=junction.inputs,
                                      rule=f"Ω_∨: {joined.rule.describe()}",
                                      inner_labels=joined.labels)
                return joined
            if junction.kind is JunctionKind.AND:
                joined = hsc_and(inputs, name=junction.name)
                if _obs.enabled:
                    _lineage().record(port, KIND_AND,
                                      inputs=junction.inputs,
                                      rule=f"Ω_∧: {joined.rule.describe()}",
                                      inner_labels=joined.labels)
                return joined
            raise ModelError(
                f"junction {junction.name}: unsupported kind "
                f"{junction.kind}",
                context={"junction": junction.name, "port": port,
                         "kind": str(junction.kind),
                         "reason": "unsupported_junction_kind"})
        finally:
            self._visiting.discard(key)

    # ------------------------------------------------------------------
    def _resolve_task_output(self, task: Task) -> EventModel:
        key = f"task:{task.name}"
        if key in self._visiting:
            # Dependency cycle: cut it with the previous iteration's
            # output (or a user-provided initial model).
            fallback = self._initial.get(task.name)
            if fallback is None:
                raise ModelError(
                    f"dependency cycle through task {task.name!r} on "
                    f"resource {task.resource!r}; provide an initial "
                    f"output model to cut it",
                    context={"task": task.name,
                             "resource": task.resource,
                             "reason": "dependency_cycle"})
            return fallback
        self._visiting.add(key)
        try:
            activation = self.activation_model(task)
        finally:
            self._visiting.discard(key)
        result = self._responses.get(task.name)
        if result is not None:
            r_min, r_max = result.r_min, result.r_max
        else:
            # First iteration: optimistic seed — the task responds within
            # its own execution-time interval.
            r_min, r_max = task.c_min, task.c_max
        op = BusyWindowOutput(r_min, r_max)
        if _obs.enabled:
            attrs = {"rule": "Θ_τ", "r_min": r_min, "r_max": r_max,
                     "resource": task.resource}
            if is_hierarchical(activation):
                attrs.update(
                    inner_update=f"B_Θτ,C_{activation.rule.name} "
                                 f"(k={activation.outer.simultaneity()})",
                    inner_labels=activation.labels)
            upstream = ([f"{task.name}.act"] if len(task.inputs) > 1
                        else list(task.inputs))
            _lineage().record(task.name, KIND_THETA, inputs=upstream,
                              **attrs)
        return apply_operation(activation, op)

    # ------------------------------------------------------------------
    def activation_model(self, task: Task) -> EventModel:
        """The stream that activates *task* (combining multiple inputs
        per the task's activation semantics)."""
        models = [self.port(p) for p in task.inputs]
        if len(models) == 1:
            return models[0]
        flat = [m.outer if is_hierarchical(m) else m for m in models]
        if task.activation == "and":
            joined = and_join(flat, name=f"{task.name}.act")
        else:
            joined = or_join(flat, name=f"{task.name}.act")
        if _obs.enabled:
            flattened = [p for p, m in zip(task.inputs, models)
                         if is_hierarchical(m)]
            _lineage().record(
                f"{task.name}.act", KIND_ACTIVATION, inputs=task.inputs,
                rule=f"{task.activation.upper()}-join "
                     f"({task.activation}_join of {len(models)} inputs)",
                flattened_hierarchies=flattened)
        return _compile.maybe_compile(joined, name=f"{task.name}.act")


def output_models(system: System, result,
                  ports: "Optional[list]" = None
                  ) -> "Dict[str, EventModel]":
    """Reconstruct the converged per-port output event models.

    :class:`~repro.analysis.results.SystemResult` carries response
    times, not the propagated streams; differential checks (e.g. the
    soak oracle's envelope-containment contract) need the analytic
    output model of each task to compare observed traces against.
    Rebuilding a :class:`_StreamResolver` from the converged task
    results reproduces exactly the models of the final iteration.

    ``ports`` defaults to every task's output port.  Systems with
    dependency cycles need the cycle seeds the original call provided;
    this helper targets acyclic graphs and raises for unseeded cycles.
    """
    responses: "Dict[str, TaskResult]" = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    if ports is None:
        ports = list(system.tasks)
    return {port: resolver.port(port) for port in ports}


def analyze_system(system: System,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS,
                   initial_outputs: "Optional[Dict[str, EventModel]]" = None,
                   on_failure: str = "raise",
                   guard=None,
                   memo: "Optional[AnalysisMemo]" = None,
                   ):
    """Run the global compositional fixed-point analysis.

    Parameters
    ----------
    system:
        The system graph; validated before the first iteration.
    max_iterations:
        Bound on global iterations; exceeding it raises
        :class:`~repro._errors.ConvergenceError` (response times that keep
        growing indicate an overloaded or ill-conditioned system).
    initial_outputs:
        Optional seed output models for tasks inside dependency cycles.
        Seed *every* task of a cycle — which member the resolver revisits
        first depends on its traversal entry point.  After the first
        iteration all task outputs serve as their own seeds.
    on_failure:
        ``"raise"`` (default): analysis failures propagate as
        exceptions.  ``"degrade"``: delegate to
        :func:`repro.resilience.degrade.degraded_analyze` — failed
        resources are quarantined, their outputs conservatively widened,
        and an :class:`~repro.resilience.outcome.AnalysisOutcome` is
        returned instead of raising.
    guard:
        Divergence guard
        (:class:`~repro.resilience.guards.DivergenceGuard`).  ``None``
        installs the default guard, ``False`` disables trend detection.
        In strict mode a guard verdict raises
        :class:`~repro._errors.ConvergenceError` early (fail fast); in
        degraded mode it triggers widening of the diverging resource.
    memo:
        Optional :class:`~repro.analysis.memo.AnalysisMemo` enabling
        dirty-set incremental re-analysis: local analyses whose input
        fingerprints match a previous run are reused instead of
        re-solved.  The iteration trajectory is unchanged, so results
        (including the iteration count) are bit-identical to a cold
        run.  A memo busy in another thread is skipped, not awaited.

    Returns
    -------
    :class:`~repro.analysis.results.SystemResult` in strict mode, an
    :class:`~repro.resilience.outcome.AnalysisOutcome` in degraded mode.
    """
    if on_failure not in ("raise", "degrade"):
        raise ModelError(
            f"on_failure must be 'raise' or 'degrade', got "
            f"{on_failure!r}")
    if on_failure == "degrade":
        # Lazy import: repro.resilience.degrade imports this module at
        # its top level, so the dependency must stay one-directional at
        # import time.
        from ..resilience.degrade import degraded_analyze

        return degraded_analyze(system, max_iterations=max_iterations,
                                initial_outputs=initial_outputs,
                                guard=guard, memo=memo)
    if guard is None:
        from ..resilience.guards import DivergenceGuard

        guard = DivergenceGuard()
    if memo is not None and not memo.acquire():
        memo = None
    try:
        return _strict_analysis(system, max_iterations, initial_outputs,
                                guard, memo)
    finally:
        if memo is not None:
            memo.runs += 1
            memo.release()


def _local_analysis(resource, specs, memo: "Optional[AnalysisMemo]"):
    """One resource's local analysis, through the memo when present.

    Returns ``(ResourceResult, info)`` where ``info`` is the memo's
    reuse accounting (``None`` without a memo).
    """
    if memo is None:
        return resource.scheduler.analyze(specs, resource.name), None
    return memo.resource_memo(resource.name).analyze(
        resource.scheduler, specs, resource.name)


def _strict_analysis(system: System, max_iterations: int,
                     initial_outputs: "Optional[Dict[str, EventModel]]",
                     guard, memo: "Optional[AnalysisMemo]"):
    system.validate()
    responses: "Dict[str, TaskResult]" = {}
    prev_models: "Dict[str, EventModel]" = {}
    cycle_seeds: "Dict[str, EventModel]" = dict(initial_outputs or {})
    resource_results: "Dict[str, ResourceResult]" = {}

    for iteration in range(1, max_iterations + 1):
        iter_span = (_obs.get_tracer().start("global_iteration",
                                             system=system.name,
                                             iteration=iteration)
                     if _obs.enabled else None)
        try:
            resolver = _StreamResolver(system, responses, cycle_seeds)

            # Local analysis per resource (through the incremental memo
            # when one is attached — same inputs, reused outputs).
            new_resource_results: "Dict[str, ResourceResult]" = {}
            dirty_resources = []
            reused_tasks = 0
            for resource in system.resources.values():
                tasks = system.tasks_on(resource.name)
                if not tasks:
                    continue
                specs = [
                    TaskSpec(name=t.name, c_min=t.c_min, c_max=t.c_max,
                             event_model=resolver.activation_model(t),
                             priority=t.priority, slot=t.slot,
                             deadline=t.deadline, blocking=t.blocking)
                    for t in tasks
                ]
                if _obs.enabled:
                    with _obs.get_tracer().span(
                            "local_analysis", resource=resource.name,
                            policy=resource.scheduler.policy,
                            tasks=len(specs)) as span:
                        rr, info = _local_analysis(resource, specs, memo)
                        span.set(utilization=rr.utilization)
                        if info is not None:
                            span.set(**info)
                    _obs.metrics().histogram(
                        "propagation.local_analysis_seconds").observe(
                            span.duration)
                else:
                    rr, info = _local_analysis(resource, specs, memo)
                if info is not None:
                    reused_tasks += info["reused_tasks"]
                    if not info["resource_hit"]:
                        dirty_resources.append(resource.name)
                new_resource_results[resource.name] = rr
            if memo is not None and _obs.enabled:
                metrics = _obs.metrics()
                metrics.gauge("incremental.dirty_resources").set(
                    len(dirty_resources))
                metrics.counter("incremental.reused_tasks").inc(
                    reused_tasks)
                metrics.counter("incremental.analyzed_resources").inc(
                    len(new_resource_results))

            # Gather new responses and check convergence.
            new_responses: "Dict[str, TaskResult]" = {}
            for rr in new_resource_results.values():
                new_responses.update(rr.task_results)

            stable = _responses_stable(responses, new_responses)
            residual_info = None
            if iter_span is not None or guard:
                residual_info = _response_residuals(responses,
                                                    new_responses)
                if iter_span is not None:
                    iter_span.set(**residual_info)
            responses = new_responses
            resource_results = new_resource_results

            # Propagate: compute every task's output model with the *new*
            # responses and compare with the previous iteration's models.
            resolver = _StreamResolver(system, responses, cycle_seeds)
            new_models: "Dict[str, EventModel]" = {}
            for task_name in system.tasks:
                out = resolver.port(task_name)
                if not _compile.enabled:
                    # Lazy mode: memoise the chain for the convergence
                    # check; compiled curves are already array-backed.
                    out = CachedModel(out, name=f"{task_name}.out")
                new_models[task_name] = out
                # Cycle seeds advance with the iteration.
                cycle_seeds[task_name] = new_models[task_name]

            models_stable = _models_stable(prev_models, new_models)
            converged = stable and models_stable
            if iter_span is not None:
                changed = _changed_ports(prev_models, new_models)
                iter_span.set(responses_stable=stable,
                              models_stable=models_stable,
                              unstable_models=len(changed),
                              changed_ports=changed,
                              converged=converged)
                _obs.metrics().counter("propagation.iterations").inc()
                if _BUS.active and residual_info is not None:
                    event = {
                        "type": "iteration", "system": system.name,
                        "iteration": iteration, "converged": converged,
                        "unstable_models": len(changed),
                        **residual_info,
                    }
                    if memo is not None:
                        event["dirty_resources"] = len(dirty_resources)
                        event["reused_tasks"] = reused_tasks
                    _BUS.publish(event)
            if converged:
                if _obs.enabled:
                    _obs.metrics().gauge(
                        "propagation.iterations_to_convergence").set(
                            iteration)
                    cache_stats = _compile.cache().stats()
                    cache_total = (cache_stats["hits"]
                                   + cache_stats["misses"])
                    if cache_total:
                        _obs.metrics().gauge(
                            "compile.cache_hit_rate").set(
                                cache_stats["hits"] / cache_total)
                    if memo is not None:
                        memo_stats = memo.stats()
                        _obs.metrics().gauge(
                            "incremental.reuse_rate").set(
                                memo_stats["reuse_rate"])
                        _obs.metrics().gauge(
                            "memo.reuse_rate").set(
                                memo_stats["reuse_rate"])
                        if _BUS.active:
                            _BUS.publish({
                                "type": "incremental",
                                "system": system.name,
                                "iterations": iteration,
                                **memo_stats,
                            })
                return SystemResult(iterations=iteration, converged=True,
                                    resource_results=resource_results)
            if guard:
                verdict = guard.observe(
                    iteration, residual_info["residual_r_max"], stable,
                    models_stable)
                if verdict is not None:
                    if _obs.enabled:
                        _obs.metrics().counter(
                            "propagation.divergence_detected").inc()
                        _obs.metrics().counter(
                            "propagation.divergences").inc()
                        _obs.get_tracer().event(
                            "divergence_detected",
                            verdict=verdict.verdict,
                            iteration=iteration, detail=verdict.detail)
                        if _BUS.active:
                            _BUS.publish({
                                "type": "guard",
                                "system": system.name,
                                "verdict": verdict.verdict,
                                "iteration": iteration,
                                "detail": verdict.detail,
                            })
                    raise ConvergenceError(
                        f"divergence guard aborted the global analysis "
                        f"after {iteration} iterations: "
                        f"{verdict.verdict} ({verdict.detail})",
                        iterations=iteration, verdict=verdict.verdict,
                        residuals=verdict.residuals)
            prev_models = new_models
        finally:
            if iter_span is not None:
                iter_span.finish()

    if _obs.enabled:
        _obs.metrics().counter("propagation.divergences").inc()
    raise ConvergenceError(
        f"global analysis did not converge within {max_iterations} "
        f"iterations", iterations=max_iterations,
        context={"system": system.name})


def _responses_stable(old: "Dict[str, TaskResult]",
                      new: "Dict[str, TaskResult]") -> bool:
    if set(old) != set(new):
        return False
    for name, result in new.items():
        prev = old[name]
        if abs(prev.r_max - result.r_max) > EPS:
            return False
        if abs(prev.r_min - result.r_min) > EPS:
            return False
    return True


def _models_stable(old: "Dict[str, EventModel]",
                   new: "Dict[str, EventModel]") -> bool:
    if set(old) != set(new):
        return False
    return all(models_equal(old[k], new[k], n_max=CONVERGENCE_CHECK_N)
               for k in new)


def _response_residuals(old: "Dict[str, TaskResult]",
                        new: "Dict[str, TaskResult]") -> dict:
    """Convergence diagnostics for one iteration (observability only):
    the largest response-time movement and which task moved most."""
    residual_r_max = 0.0
    residual_r_min = 0.0
    argmax = None
    for name, result in new.items():
        prev = old.get(name)
        if prev is None:
            # New task this iteration: its whole response is the delta.
            d_max, d_min = result.r_max, result.r_min
        else:
            d_max = abs(prev.r_max - result.r_max)
            d_min = abs(prev.r_min - result.r_min)
        if d_max > residual_r_max:
            residual_r_max = d_max
            argmax = name
        if d_min > residual_r_min:
            residual_r_min = d_min
    return {"residual_r_max": residual_r_max,
            "residual_r_min": residual_r_min,
            "residual_argmax": argmax}


def _changed_ports(old: "Dict[str, EventModel]",
                   new: "Dict[str, EventModel]") -> list:
    """Task output ports whose propagated model moved this iteration
    (observability only)."""
    return sorted(
        name for name, model in new.items()
        if name not in old
        or not models_equal(old[name], model, n_max=CONVERGENCE_CHECK_N))
