"""Junction-related checks and helpers.

AND-activation only has bounded buffering when all joined streams share
the same long-run rate (Jersak); :func:`check_and_join_rates` verifies
that before an AND junction is trusted.  :func:`decompose_multi_input`
documents/automates the paper's decomposition of a multi-input task into
a stream constructor followed by a single-input task.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .._errors import AnalysisError, ModelError
from ..eventmodels.base import EventModel


def check_and_join_rates(models: Sequence[EventModel],
                         tolerance: float = 0.05,
                         accuracy: int = 1000) -> None:
    """Raise :class:`ModelError` if the joined streams' long-run rates
    differ by more than *tolerance* (relative) — AND-activation would
    then require unbounded buffering on the faster input."""
    rates = [m.load(accuracy) for m in models]
    lo, hi = min(rates), max(rates)
    if lo <= 0:
        raise ModelError("AND-join input with zero rate never activates")
    if (hi - lo) / hi > tolerance:
        raise ModelError(
            f"AND-join rates diverge (min {lo:.6g}, max {hi:.6g}); "
            f"buffering is unbounded")


def and_join_buffer_bound(models: Sequence[EventModel],
                          horizon_n: int = 512) -> int:
    """Worst-case token backlog at an AND junction.

    An AND join consumes one token from *every* input per output; input
    i's queue is deepest when i runs maximally fast while the slowest
    partner runs minimally.  With the n-th token of i arriving at
    δ⁻ᵢ(n) earliest and only ``η⁻ⱼ`` outputs guaranteed by then::

        backlog_i  <=  max_n [ n - min_j η⁻ⱼ(δ⁻ᵢ(n)) ]

    evaluated over n up to *horizon_n*.  Returns the maximum over all
    inputs; raises :class:`AnalysisError` if the bound has not settled
    within the horizon (diverging rates — check
    :func:`check_and_join_rates` first).
    """
    if len(models) < 2:
        raise ModelError("an AND join needs at least two inputs")
    worst = 1
    for i, fast in enumerate(models):
        partners = [m for j, m in enumerate(models) if j != i]
        best_for_i = 1
        settled = 0
        for n in range(1, horizon_n + 1):
            arrival = fast.delta_min(n)
            consumed = min(p.eta_min(arrival) for p in partners)
            backlog = n - consumed
            if backlog > best_for_i:
                best_for_i = backlog
                settled = 0
            else:
                settled += 1
            if settled > 64:
                break
        else:
            raise AnalysisError(
                f"AND-join backlog still growing after {horizon_n} "
                f"tokens; input rates likely diverge")
        worst = max(worst, best_for_i)
    return worst


def decompose_multi_input(task_name: str, inputs: Sequence[str],
                          activation: str = "or"
                          ) -> Tuple[Tuple[str, str, List[str]],
                                     Tuple[str, List[str]]]:
    """Decompose a multi-input task into (constructor, processing task).

    Returns ``((junction_name, kind, inputs), (task_name, [junction]))``
    — the explicit two-operation form of the paper's section 3: "tasks
    activated by multiple event streams are decomposed in two operations:
    the first is an event stream constructor (SC) ... the second models
    the actual processing".
    """
    if len(inputs) < 2:
        raise ModelError("decomposition only applies to multi-input tasks")
    junction_name = f"{task_name}__sc"
    return ((junction_name, activation, list(inputs)),
            (task_name, [junction_name]))
