"""End-to-end path latency on analysed systems.

The classic first-order bound: the worst-case latency of an event
traversing a task chain is the sum of per-task worst-case response times
(each event is fully processed by stage k before stage k+1 sees it).  The
best case is the sum of best-case response times.

For chains crossing a *pack* junction the path semantics matter: a
triggering signal's frame leaves immediately, while a pending signal may
additionally wait up to the maximum frame distance δ⁺_f(2) for the next
transmission opportunity (paper section 4, Fig. 3).
:func:`path_latency` accounts for that sampling delay when the path
enters a pack junction through a pending input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .._errors import AnalysisError, ModelError
from ..analysis.results import SystemResult
from ..core.constructors import TransferProperty
from ..core.hem import is_hierarchical
from .model import JunctionKind, System


@dataclass
class PathLatency:
    """Best-/worst-case end-to-end latency of a named path."""

    path: List[str]
    best_case: float
    worst_case: float
    sampling_delay: float = 0.0

    @property
    def span(self) -> float:
        return self.worst_case - self.best_case


def path_latency(system: System, result: SystemResult,
                 path: Sequence[str]) -> PathLatency:
    """Sum-of-response-times latency bound along *path*.

    ``path`` lists node names in traversal order.  Tasks contribute their
    response-time interval; junction nodes contribute zero except a PACK
    junction entered through a *pending* input, which adds the worst-case
    wait for the next frame.  The pending wait is bounded by δ⁺(2) of the
    packed (outer) stream, which requires the junction's output model —
    recomputed here from the converged system state.
    """
    if len(path) < 2:
        raise ModelError("a path needs at least two nodes")
    best = 0.0
    worst = 0.0
    sampling = 0.0
    for idx, node in enumerate(path):
        if node in system.tasks:
            tr = result.task_result(node)
            if tr is None:
                raise AnalysisError(
                    f"path node {node!r} has no analysis result")
            best += tr.r_min
            worst += tr.r_max
        elif node in system.junctions:
            junction = system.junctions[node]
            if junction.kind is JunctionKind.PACK and idx > 0:
                prev = path[idx - 1]
                prop = junction.properties.get(prev)
                if prop is TransferProperty.PENDING:
                    wait = _pack_outer_delta_plus2(system, result, junction)
                    sampling += wait
                    worst += wait
        elif node in system.sources:
            if idx != 0:
                raise ModelError(
                    f"source {node!r} may only start a path")
        else:
            raise ModelError(f"unknown path node {node!r}")
    return PathLatency(list(path), best, worst, sampling)


def _pack_outer_delta_plus2(system: System, result: SystemResult,
                            junction) -> float:
    """δ⁺(2) of the pack junction's outer stream in the converged state."""
    from .propagation import _StreamResolver  # local import: avoid cycle

    responses = {}
    for rr in result.resource_results.values():
        responses.update(rr.task_results)
    resolver = _StreamResolver(system, responses, {})
    model = resolver.port(junction.name)
    if is_hierarchical(model):
        return model.outer.delta_plus(2)
    return model.delta_plus(2)
