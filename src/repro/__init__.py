"""repro — Hierarchical Event Models for Compositional Scheduling Analysis.

A complete, self-contained reproduction of

    Jonas Rox, Rolf Ernst: "Modeling Event Stream Hierarchies with
    Hierarchical Event Models", DATE 2008.

Layers (bottom-up):

* :mod:`repro.eventmodels` — the flat event-stream algebra: δ⁻/δ⁺/η⁺/η⁻
  characteristic functions, standard (P, J, d) models, curve models,
  OR/AND joins (paper eqs. (3)/(4)), Θ_τ output models, shapers.
* :mod:`repro.analysis` — local scheduling analyses: SPP, SPNP (CAN),
  round-robin, TDMA, EDF, and hierarchical scheduling via the periodic
  resource model.
* :mod:`repro.core` — **the paper's contribution**: hierarchical event
  models ``H = (F_out, L, C)``, the pack constructor Ω_pa (Def. 8), inner
  update functions (Def. 7/9), and deconstructors Ψ (Def. 6/10).
* :mod:`repro.system` — the compositional system engine: stream graph +
  global fixed-point iteration.
* :mod:`repro.com` / :mod:`repro.can` — AUTOSAR-style COM layer and CAN
  bus substrates (paper section 4).
* :mod:`repro.sim` — discrete-event simulator used to validate that every
  analytic bound is conservative.
* :mod:`repro.obs` — span tracer, metrics registry, and convergence
  diagnostics for the whole stack (off by default; enable with
  :func:`repro.configure`).
* :mod:`repro.explain` — result-level observability: WCRT blame
  attribution, event-model lineage graphs, and the
  ``python -m repro explain`` driver.

Quickstart::

    from repro import (periodic, hsc_pack, TransferProperty,
                       BusyWindowOutput, apply_operation, unpack)

    frame = hsc_pack(
        {"speed": (periodic(250), TransferProperty.TRIGGERING),
         "diag":  (periodic(1000), TransferProperty.PENDING)},
        timer=periodic(1000), name="F1")
    after_bus = apply_operation(frame, BusyWindowOutput(40.0, 120.0))
    per_signal = unpack(after_bus)   # tight streams for receiver analysis
"""

from ._errors import (
    AnalysisError,
    ConvergenceError,
    ModelError,
    NotSchedulableError,
    ReproError,
    UnboundedStreamError,
)
from .analysis import (
    EDFScheduler,
    HierarchicalSPPScheduler,
    PeriodicResource,
    ResourceResult,
    RoundRobinScheduler,
    Scheduler,
    SPNPScheduler,
    SPPScheduler,
    SystemResult,
    TaskResult,
    TaskSpec,
    TDMAScheduler,
)
from .can import CanBus, CanBusTiming, frame_bits_max, frame_bits_min
from .com import ComLayer, Frame, FrameType, Signal
from .analysis import (
    BoundedDelayResource,
    CanErrorModel,
    backlog_bound,
    binary_search_max,
    buffer_bound,
    max_wcet_scaling,
    min_period_scaling,
    task_wcet_slack,
)
from .core import (
    BusyWindowOutput,
    HierarchicalEventModel,
    ShaperOperation,
    TransferProperty,
    apply_operation,
    depth,
    flatten,
    hsc_and,
    hsc_or,
    hsc_pack,
    is_hierarchical,
    register_inner_update,
    shift_hierarchy,
    unpack,
    unpack_deep,
    unpack_path,
    unpack_polled,
    unpack_signal,
)
from .eventmodels import (
    CurveEventModel,
    DminShaper,
    EventModel,
    NullEventModel,
    StandardEventModel,
    TaskOutputModel,
    and_join,
    fit_standard,
    freeze,
    model_from_trace,
    models_equal,
    offset_join,
    or_join,
    or_join_superposition,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
    trace_within_bounds,
    verify_dominates,
)
from . import obs
from .obs import configure, get_tracer, metrics
from . import explain
from .explain import Blame, BlameTerm, LineageGraph
from .system import (
    Junction,
    JunctionKind,
    PathLatency,
    Resource,
    Source,
    System,
    Task,
    analyze_system,
    canonical_json,
    path_latency,
    system_from_dict,
    system_hash,
    system_to_dict,
)
from . import batch
from .batch import (
    BatchRunner,
    DesignSpace,
    Job,
    JobResult,
    ResultStore,
    make_backend,
)
from . import resilience
from .resilience import (
    AnalysisOutcome,
    DivergenceGuard,
    Fault,
    FaultPlan,
    RetryPolicy,
    inject_faults,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "ModelError", "AnalysisError", "NotSchedulableError",
    "ConvergenceError", "UnboundedStreamError",
    # event models
    "EventModel", "NullEventModel", "StandardEventModel",
    "CurveEventModel", "TaskOutputModel", "DminShaper",
    "periodic", "periodic_with_jitter", "periodic_with_burst", "sporadic",
    "or_join", "or_join_superposition", "and_join", "offset_join",
    "freeze",
    "models_equal", "fit_standard", "verify_dominates",
    "model_from_trace", "trace_within_bounds",
    # core (the paper)
    "HierarchicalEventModel", "TransferProperty", "hsc_pack", "hsc_or",
    "hsc_and", "BusyWindowOutput", "ShaperOperation", "apply_operation",
    "register_inner_update", "unpack", "unpack_signal", "unpack_polled",
    "flatten", "is_hierarchical",
    "unpack_deep", "unpack_path", "shift_hierarchy", "depth",
    "binary_search_max", "max_wcet_scaling", "task_wcet_slack",
    "min_period_scaling", "backlog_bound", "buffer_bound",
    # analysis
    "TaskSpec", "Scheduler", "TaskResult", "ResourceResult",
    "SystemResult", "SPPScheduler", "SPNPScheduler", "CanErrorModel",
    "RoundRobinScheduler", "TDMAScheduler", "EDFScheduler",
    "PeriodicResource", "BoundedDelayResource",
    "HierarchicalSPPScheduler",
    # system
    "System", "Source", "Task", "Resource", "Junction", "JunctionKind",
    "analyze_system", "path_latency", "PathLatency",
    "system_to_dict", "system_from_dict", "system_hash", "canonical_json",
    # observability
    "obs", "configure", "get_tracer", "metrics",
    # explanation (blame attribution + lineage; engine loads lazily)
    "explain", "Blame", "BlameTerm", "LineageGraph",
    # batch engine
    "batch", "Job", "JobResult", "BatchRunner", "ResultStore",
    "DesignSpace", "make_backend",
    # resilience (degraded analysis, guards, fault injection, retry)
    "resilience", "AnalysisOutcome", "DivergenceGuard", "Fault",
    "FaultPlan", "RetryPolicy", "inject_faults",
    # substrates
    "ComLayer", "Frame", "FrameType", "Signal",
    "CanBus", "CanBusTiming", "frame_bits_max", "frame_bits_min",
]
