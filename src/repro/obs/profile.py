"""Wall-clock sampling profiler: stdlib-only, always-attachable.

A background daemon thread wakes ``hz`` times a second, walks
``sys._current_frames()`` and folds each observed stack into a counter
keyed by the collapsed stack string (``module.fn;module.fn;... N`` —
the folded format Brendan Gregg's ``flamegraph.pl`` and every
collapsed-stack viewer consume).  Because it samples instead of
tracing, the overhead is a few stack walks per second regardless of
how hot the profiled code is, and *zero* between :meth:`stop` and the
next :meth:`start` — which is what makes it safe to leave attachable
on a production daemon:

* per-request: ``POST /v1/analyze?profile=1`` profiles just that
  request's worker thread and returns the collapsed stacks + hot
  table in the response body;
* per-sweep: ``python -m repro batch <space> --profile`` writes
  ``profile.collapsed`` next to the sweep's result store;
* standalone: ``python -m repro profile <example>`` profiles one
  analysis run.

Samples are wall-clock, not CPU: a thread blocked in a lock or a read
is sampled where it blocks, which is exactly what you want when the
question is "where did this request's latency go".
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["DEFAULT_HZ", "SamplingProfiler", "profile_main"]

#: Default sampling rate.  100 Hz resolves anything that takes more
#: than a few tens of milliseconds while keeping the sampler's own
#: cost well under 1% of one core.
DEFAULT_HZ = 100


class SamplingProfiler:
    """Samples thread stacks on a timer; reports collapsed stacks.

    Usage::

        with SamplingProfiler(hz=100) as prof:
            run_expensive_analysis()
        print(prof.render_hot_table())
        Path("out.collapsed").write_text(prof.collapsed())

    *threads* restricts sampling to the given thread idents (e.g. the
    one worker thread executing a request); ``None`` samples every
    thread except the sampler's own.
    """

    def __init__(self, hz: int = DEFAULT_HZ,
                 threads: Optional[Iterable[int]] = None,
                 max_depth: int = 64):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = hz
        self.max_depth = max_depth
        self.samples = 0
        self.duration = 0.0
        self._threads = frozenset(threads) if threads is not None else None
        self._counts: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self  # already running
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=2.0 + 2.0 / self.hz)
        self._thread = None
        self.duration += time.perf_counter() - self._t0
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(own)

    def _sample(self, own_ident: int) -> None:
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            if self._threads is not None and ident not in self._threads:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                module = frame.f_globals.get("__name__", "?")
                stack.append(f"{module}.{code.co_name}")
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # flamegraph convention: root first
            key = ";".join(stack)
            self._counts[key] = self._counts.get(key, 0) + 1
            self.samples += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """Folded-stack text, one ``frame;frame;... count`` per line
        (feed straight into ``flamegraph.pl`` or speedscope)."""
        return "\n".join(f"{stack} {count}" for stack, count
                         in sorted(self._counts.items()))

    def hot_table(self, limit: int = 15) -> List[Dict[str, Any]]:
        """Per-function self/cumulative sample counts, hottest first.

        *self* counts samples where the function was the leaf frame;
        *cum* counts samples where it appears anywhere on the stack.
        """
        self_counts: Dict[str, int] = {}
        cum_counts: Dict[str, int] = {}
        for stack, count in self._counts.items():
            frames = stack.split(";")
            leaf = frames[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for func in set(frames):
                cum_counts[func] = cum_counts.get(func, 0) + count
        total = self.samples or 1
        rows = [{"function": func,
                 "self": self_counts.get(func, 0),
                 "cum": cum,
                 "self_pct": 100.0 * self_counts.get(func, 0) / total,
                 "cum_pct": 100.0 * cum / total}
                for func, cum in cum_counts.items()]
        rows.sort(key=lambda r: (-r["self"], -r["cum"], r["function"]))
        return rows[:limit]

    def render_hot_table(self, limit: int = 15) -> str:
        """The hot table as aligned text for terminals and logs."""
        rows = self.hot_table(limit)
        if not rows:
            return "(no samples)"
        width = max(len(r["function"]) for r in rows)
        lines = [f"{'function':<{width}}  {'self':>6} {'self%':>6} "
                 f"{'cum':>6} {'cum%':>6}"]
        for r in rows:
            lines.append(f"{r['function']:<{width}}  {r['self']:>6} "
                         f"{r['self_pct']:>5.1f}% {r['cum']:>6} "
                         f"{r['cum_pct']:>5.1f}%")
        return "\n".join(lines)

    def to_dict(self, hot_limit: int = 15) -> Dict[str, Any]:
        """JSON-ready report (per-request responses embed this)."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "duration": self.duration,
            "collapsed": self.collapsed(),
            "hot": self.hot_table(hot_limit),
        }


# ----------------------------------------------------------------------
# CLI: python -m repro profile <example-or-script>
# ----------------------------------------------------------------------
def profile_main(argv: Optional[List[str]] = None) -> int:
    """Profile one analysis run and emit collapsed stacks + hot table."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run an example (or python script) under the "
                    "wall-clock sampling profiler.")
    parser.add_argument("target",
                        help="built-in example name (see 'repro serve' "
                             "examples) or a path to a python script")
    parser.add_argument("--hz", type=int, default=DEFAULT_HZ,
                        help="sampling rate (default %(default)s)")
    parser.add_argument("--out", default=None,
                        help="collapsed-stack output path "
                             "(default <target>.collapsed)")
    parser.add_argument("--top", type=int, default=15,
                        help="hot-table rows to print")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the workload N times (longer runs "
                             "give the sampler more to see)")
    args = parser.parse_args(argv)

    target = args.target
    profiler = SamplingProfiler(hz=args.hz)
    if target.endswith(".py"):
        import runpy
        out_path = args.out or (target[:-3] + ".collapsed")
        with profiler:
            for _ in range(args.repeat):
                runpy.run_path(target, run_name="__main__")
    else:
        from ..serve.handlers import EXAMPLES, _register_examples
        _register_examples()
        builder = EXAMPLES.get(target)
        if builder is None:
            print(f"unknown example {target!r} "
                  f"(known: {', '.join(sorted(EXAMPLES))})",
                  file=sys.stderr)
            return 2
        from ..system.propagation import analyze_system
        out_path = args.out or f"{target}.collapsed"
        with profiler:
            for _ in range(args.repeat):
                analyze_system(builder())

    with open(out_path, "w", encoding="utf-8") as fh:
        text = profiler.collapsed()
        fh.write(text + ("\n" if text else ""))
    print(f"profiled {target!r}: {profiler.samples} samples "
          f"@ {args.hz} Hz over {profiler.duration:.2f}s -> {out_path}")
    print(profiler.render_hot_table(args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(profile_main())
