"""Trace and metrics serialisation: JSONL spans, JSON metric snapshots.

The JSONL layout is one JSON object per line, each with a ``"type"``
field (``"span"`` today; readers must skip unknown types so the format
can grow).  Timestamps are seconds relative to the tracer's clock
origin, keeping traces diffable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import Span, Tracer


def span_to_dict(span: Span, t0: float = 0.0) -> Dict[str, Any]:
    """JSON-serialisable representation of one finished span."""
    record: Dict[str, Any] = {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "thread_id": span.thread_id,
        "start": span.start - t0,
        "end": (span.end - t0) if span.end is not None else None,
        "duration": span.duration,
        "status": span.status,
        "attributes": _jsonable(span.attributes),
    }
    if span.error is not None:
        record["error"] = span.error
    if span.events:
        record["events"] = [
            {**_jsonable(e), "time": e["time"] - t0} for e in span.events
        ]
    return record


def spans_to_jsonl(spans: Sequence[Span], path: str,
                   t0: float = 0.0) -> str:
    """Write spans to *path* as JSONL; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_to_dict(span, t0)) + "\n")
    return path


def tracer_to_jsonl(tracer: Tracer, path: str) -> str:
    """Export every finished span of *tracer* (origin-relative times)."""
    return spans_to_jsonl(tracer.spans(), path, t0=tracer.t0)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of dicts (blank lines and
    unknown record types are preserved as-is for forward compatibility)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_to_chrome(spans: Sequence[Span],
                    t0: float = 0.0) -> Dict[str, Any]:
    """Convert finished spans to the Chrome trace-event format.

    The returned object loads directly into Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``: one ``"X"``
    (complete) event per span with microsecond timestamps relative to
    *t0*, one ``"i"`` (instant) event per span event, plus metadata
    naming the process and one row per traced thread.  Unfinished spans
    are skipped — the format has no open-ended complete events.
    """
    # Perfetto renders tids as small integers; map thread idents to a
    # compact, deterministic numbering in first-seen (span-id) order.
    tid_map: Dict[int, int] = {}
    events: List[Dict[str, Any]] = []
    for span in sorted(spans, key=lambda s: s.span_id):
        if span.end is None:
            continue
        tid = tid_map.setdefault(span.thread_id, len(tid_map) + 1)
        args = _jsonable(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
            if span.error is not None:
                args["error"] = span.error
        events.append({
            "name": span.name,
            "cat": "repro" if span.status == "ok" else "repro,error",
            "ph": "X",
            "ts": (span.start - t0) * 1e6,
            "dur": (span.end - span.start) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
        for ev in span.events:
            extra = {k: v for k, v in ev.items()
                     if k not in ("name", "time")}
            events.append({
                "name": ev["name"],
                "cat": "repro",
                "ph": "i",
                "ts": (ev["time"] - t0) * 1e6,
                "pid": 1,
                "tid": tid,
                "s": "t",
                "args": _jsonable(extra),
            })
    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "repro analysis"},
    }]
    for ident, tid in tid_map.items():
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": f"thread-{ident}"},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def tracer_to_chrome(tracer: Tracer,
                     path: Optional[str] = None) -> Dict[str, Any]:
    """Export *tracer* in Chrome trace-event format; when *path* is
    given the JSON is also written there (returns the payload either
    way)."""
    payload = spans_to_chrome(tracer.spans(), t0=tracer.t0)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
    return payload


def metrics_to_json(registry: MetricsRegistry, path: str,
                    extra: Optional[Dict[str, Any]] = None) -> str:
    """Write a metrics snapshot (plus optional extra fields) to *path*."""
    payload = registry.snapshot()
    if extra:
        payload.update(_jsonable(extra))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
