"""Trace and metrics serialisation: JSONL spans, JSON metric snapshots.

The JSONL layout is one JSON object per line, each with a ``"type"``
field (``"span"`` today; readers must skip unknown types so the format
can grow).  Timestamps are seconds relative to the tracer's clock
origin, keeping traces diffable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import Span, Tracer


def span_to_dict(span: Span, t0: float = 0.0) -> Dict[str, Any]:
    """JSON-serialisable representation of one finished span."""
    record: Dict[str, Any] = {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "thread_id": span.thread_id,
        "start": span.start - t0,
        "end": (span.end - t0) if span.end is not None else None,
        "duration": span.duration,
        "status": span.status,
        "attributes": _jsonable(span.attributes),
    }
    if span.worker is not None:
        record["worker"] = span.worker
    if span.request_id is not None:
        record["request_id"] = span.request_id
    if span.error is not None:
        record["error"] = span.error
    if span.events:
        record["events"] = [
            {**_jsonable(e), "time": e["time"] - t0} for e in span.events
        ]
    return record


def spans_to_jsonl(spans: Sequence[Span], path: str,
                   t0: float = 0.0) -> str:
    """Write spans to *path* as JSONL; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_to_dict(span, t0)) + "\n")
    return path


def tracer_to_jsonl(tracer: Tracer, path: str) -> str:
    """Export every finished span of *tracer* (origin-relative times)."""
    return spans_to_jsonl(tracer.spans(), path, t0=tracer.t0)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of dicts (blank lines and
    unknown record types are preserved as-is for forward compatibility)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def records_to_chrome(records: Sequence[Dict[str, Any]],
                      t0: float = 0.0) -> Dict[str, Any]:
    """Convert span *records* (``span_to_dict`` shape, or ``"span"``
    events streamed off the bus) to the Chrome trace-event format.

    The returned object loads directly into Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``: one ``"X"``
    (complete) event per span with microsecond timestamps relative to
    *t0*, one ``"i"`` (instant) event per span event, plus metadata
    naming the process and one row per traced lane.  Unfinished spans
    (``end`` missing) are skipped — the format has no open-ended
    complete events.

    Lanes are ``(worker, thread_id)`` pairs: spans adopted from pool
    workers carry a ``"worker"`` tag and get their own synthetic tids
    (named ``worker-<tag>`` in the metadata) even when — as under
    ``fork`` — their raw thread idents coincide with the parent's, so
    worker activity shows up as distinct Perfetto rows rather than
    collapsing onto the parent thread.
    """
    # Perfetto renders tids as small integers; map lanes to a compact,
    # deterministic numbering in first-seen (span-id) order.
    tid_map: Dict[Any, int] = {}
    events: List[Dict[str, Any]] = []
    for record in sorted(records, key=lambda r: r.get("span_id", 0)):
        if record.get("end") is None:
            continue
        lane = (record.get("worker"), record.get("thread_id"))
        tid = tid_map.setdefault(lane, len(tid_map) + 1)
        args = _jsonable(record.get("attributes", {}))
        args["span_id"] = record.get("span_id")
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("request_id") is not None:
            args["request_id"] = record["request_id"]
        status = record.get("status", "ok")
        if status != "ok":
            args["status"] = status
            if record.get("error") is not None:
                args["error"] = record["error"]
        events.append({
            "name": record.get("name", "?"),
            "cat": "repro" if status == "ok" else "repro,error",
            "ph": "X",
            "ts": (record["start"] - t0) * 1e6,
            "dur": (record["end"] - record["start"]) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
        for ev in record.get("events", ()):
            extra = {k: v for k, v in ev.items()
                     if k not in ("name", "time")}
            events.append({
                "name": ev["name"],
                "cat": "repro",
                "ph": "i",
                "ts": (ev["time"] - t0) * 1e6,
                "pid": 1,
                "tid": tid,
                "s": "t",
                "args": _jsonable(extra),
            })
    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "repro analysis"},
    }]
    for (worker, ident), tid in tid_map.items():
        name = (f"thread-{ident}" if worker is None
                else f"worker-{worker} thread-{ident}")
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def spans_to_chrome(spans: Sequence[Span],
                    t0: float = 0.0) -> Dict[str, Any]:
    """Convert finished :class:`Span` objects to Chrome trace-event
    format (see :func:`records_to_chrome` for the lane semantics)."""
    records = [span_to_dict(span) for span in spans]
    return records_to_chrome(records, t0=t0)


def tracer_to_chrome(tracer: Tracer,
                     path: Optional[str] = None) -> Dict[str, Any]:
    """Export *tracer* in Chrome trace-event format; when *path* is
    given the JSON is also written there (returns the payload either
    way)."""
    payload = spans_to_chrome(tracer.spans(), t0=tracer.t0)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
    return payload


def metrics_to_json(registry: MetricsRegistry, path: str,
                    extra: Optional[Dict[str, Any]] = None) -> str:
    """Write a metrics snapshot (plus optional extra fields) to *path*."""
    payload = registry.snapshot()
    if extra:
        payload.update(_jsonable(extra))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
