"""Pluggable subscriber sinks for the :mod:`repro.obs.bus` event bus.

Three ready-made sinks:

* :class:`JsonlEventSink` — streams events to a file as JSONL, one
  JSON object per line, flushed per event so a running sweep can be
  tailed.  With ``span_only=True`` the output contains exactly the
  ``"span"`` records the post-hoc exporter
  (:func:`repro.obs.export.tracer_to_jsonl`) writes, so
  :func:`repro.obs.export.read_jsonl` and
  :class:`repro.viz.ConvergenceReport` consume it unchanged — the
  JSONL exporter *is* this sink, fed live instead of after the fact.
* :class:`ChromeTraceSink` — accumulates ``"span"`` events and writes
  a Perfetto-loadable Chrome trace on :meth:`close`, through the same
  :func:`repro.obs.export.records_to_chrome` core the post-hoc
  exporter uses.
* :class:`~repro.obs.aggregate.LiveAggregator` (its own module) —
  folds sweep/job/iteration/guard events into rolling aggregate state
  for progress lines and the ``python -m repro top`` monitor.

A sink is anything callable (or with a ``handle(event)`` method); the
optional ``interests`` attribute restricts which event types it
receives.  Sinks must never raise for correctness — the bus swallows
and counts their exceptions — but well-behaved sinks still guard their
own I/O.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

from .export import _jsonable, records_to_chrome


class Sink:
    """Base class for event sinks (subclassing is optional)."""

    #: Event types this sink wants; ``None`` means everything.
    interests: Optional[frozenset] = None

    def handle(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""


class JsonlEventSink(Sink):
    """Stream bus events to *target* (path or file object) as JSONL.

    Each event is written as one JSON line and flushed immediately, so
    ``tail -f`` (or the ``repro top --follow`` machinery) sees events
    while the run is still going.  Timestamps stay absolute
    ``perf_counter`` seconds unless *t0* is given, in which case
    ``start``/``end``/``t`` fields are rebased to it (matching the
    post-hoc exporter's origin-relative layout).
    """

    def __init__(self, target: Union[str, IO[str]],
                 span_only: bool = False, t0: float = 0.0):
        if span_only:
            self.interests = frozenset({"span"})
        self._t0 = t0
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._closed = False
        self.written = 0

    def handle(self, event: Dict[str, Any]) -> None:
        if self._closed:
            return
        record = _jsonable(event)
        if self._t0:
            for key in ("start", "end", "t"):
                if isinstance(record.get(key), (int, float)):
                    record[key] = record[key] - self._t0
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._fh.close()


class ChromeTraceSink(Sink):
    """Collect ``"span"`` events; write a Chrome/Perfetto trace on close.

    The payload is produced by
    :func:`repro.obs.export.records_to_chrome`, so worker-adopted
    spans land on their own named lanes exactly as in the post-hoc
    export path.
    """

    interests = frozenset({"span"})

    def __init__(self, path: str, t0: float = 0.0):
        self.path = path
        self._t0 = t0
        self._records: List[Dict[str, Any]] = []
        self._closed = False

    def handle(self, event: Dict[str, Any]) -> None:
        if not self._closed:
            self._records.append(dict(event))

    @property
    def count(self) -> int:
        return len(self._records)

    def payload(self) -> Dict[str, Any]:
        return records_to_chrome(self._records, t0=self._t0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(self.payload(), fh)
            fh.write("\n")
