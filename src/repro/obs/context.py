"""Request-scoped trace context: one id from HTTP edge to result store.

A :class:`TraceContext` is minted at the serving edge (one per HTTP
request, honouring an ``X-Repro-Request-Id`` header when the client
supplies one) and carried on a :class:`contextvars.ContextVar`.  Every
layer that runs *within* the activated context — the tracer, the event
bus, ``run_job`` — reads it lazily and stamps the request id onto what
it emits, so one id correlates:

* the HTTP response header (``X-Repro-Request-Id``),
* every span the tracer finishes (→ the Chrome/Perfetto export),
* every bus event published while the context is active,
* the persisted :class:`~repro.batch.jobs.JobResult` record.

``contextvars`` values do **not** cross into
``loop.run_in_executor`` threads (only ``asyncio.to_thread`` copies
the context), so the daemon carries the context on its
:class:`~repro.serve.queue.WorkItem` and re-activates it explicitly on
the worker thread via :func:`activate`/:func:`deactivate` (or the
:func:`request_context` manager).

This module is import-leaf on purpose: :mod:`repro.obs.bus` and
:mod:`repro.obs.trace` both import it, so it must not import either.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "activate",
    "current",
    "current_request_id",
    "deactivate",
    "new_request_id",
    "request_context",
]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one in-flight request.

    ``root_span_id`` (when set) becomes the fallback parent for spans
    started on a thread with an empty span stack — that is what welds
    the worker-thread span tree onto the request's root span even
    though the two live on different threads.
    """

    request_id: str
    root_span_id: Optional[int] = None
    endpoint: str = ""


_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None)


def new_request_id() -> str:
    """A fresh request id: 16 hex chars, unique enough for a fleet."""
    return uuid.uuid4().hex[:16]


def current() -> Optional[TraceContext]:
    """The active context on this thread, or ``None``."""
    return _CURRENT.get()


def current_request_id() -> str:
    """The active request id, or ``""`` outside any request."""
    ctx = _CURRENT.get()
    return ctx.request_id if ctx is not None else ""


def activate(ctx: TraceContext) -> Token:
    """Install *ctx* on the calling thread; returns the reset token."""
    return _CURRENT.set(ctx)


def deactivate(token: Token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


@contextmanager
def request_context(request_id: Optional[str] = None,
                    root_span_id: Optional[int] = None,
                    endpoint: str = "") -> Iterator[TraceContext]:
    """Scope a :class:`TraceContext` over a ``with`` block (mints a
    fresh id when none is given)."""
    ctx = TraceContext(request_id=request_id or new_request_id(),
                       root_span_id=root_span_id, endpoint=endpoint)
    token = activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(token)
