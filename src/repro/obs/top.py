"""``python -m repro top`` — live monitor for running sweeps.

Two modes::

    python -m repro top quickstart --workers 2        # run + watch
    python -m repro top quickstart --follow           # tail a sweep
                                                      # started elsewhere

In *run* mode the named design space (see :mod:`repro.batch.spaces`)
is swept through the ordinary batch engine while a
:class:`~repro.obs.aggregate.LiveAggregator` subscribed to the
telemetry bus folds job completions, worker obs deltas, convergence
residuals, and guard verdicts into an aggregate frame that is redrawn
every ``--interval`` seconds — ANSI full-screen on a TTY, plain
appended frames elsewhere.  Analysis results are byte-identical to an
unmonitored run: the monitor only *observes* the bus.

In *follow* mode nothing is executed here: the monitor tails the
``results.jsonl`` of the sweep's
:class:`~repro.batch.store.ResultStore` (append-only, flushed per
result) and folds each appended record into the same aggregate, so
you can watch a sweep owned by another process — or reconstruct the
final aggregate after it finished.  ``--once`` renders a single frame
and exits (useful for scripts and CI).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from .aggregate import LiveAggregator

#: Seconds between frames by default.
DEFAULT_INTERVAL = 0.5

ANSI_CLEAR = "\x1b[2J\x1b[H"


def fold_store_record(aggregator: LiveAggregator,
                      record: Dict[str, Any]) -> None:
    """Fold one ``results.jsonl`` line into *aggregator* as a ``job``
    event (follow mode sees only final records, so every line counts
    as an executed point)."""
    aggregator.handle({
        "type": "job",
        "key": record.get("key", ""),
        "kind": record.get("kind", ""),
        "label": record.get("label", ""),
        "status": record.get("status", "failed"),
        "cached": False,
        "duration": record.get("duration", 0.0),
        "attempts": record.get("attempts", 1),
        "error": record.get("error", ""),
        "obs": {
            "iterations": record.get("obs", {}).get(
                "metrics", {}).get("counters", {}).get(
                    "propagation.iterations", 0),
            "model_cache_hits": record.get("obs", {}).get(
                "metrics", {}).get("counters", {}).get(
                    "eventmodels.cache.hits", 0),
            "model_cache_misses": record.get("obs", {}).get(
                "metrics", {}).get("counters", {}).get(
                    "eventmodels.cache.misses", 0),
            "spans": record.get("obs", {}).get("spans", 0),
        },
    })


class StoreTail:
    """Incremental reader of an append-only ``results.jsonl``.

    Tolerates the file not existing yet (sweep still warming up) and a
    torn final line (record mid-append): both simply yield nothing
    until more bytes arrive.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._offset = 0

    def poll(self, aggregator: LiveAggregator) -> int:
        """Fold every newly appended complete record; returns count."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        if size <= self._offset:
            return 0
        folded = 0
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn line: retry on the next poll
                self._offset += len(raw)
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(record, dict) and "key" in record:
                    fold_store_record(aggregator, record)
                    folded += 1
        return folded


class FrameRenderer:
    """Draw aggregator frames: ANSI redraw on a TTY, appended frames
    elsewhere."""

    def __init__(self, stream=None, ansi: Optional[bool] = None):
        self.stream = stream if stream is not None else sys.stdout
        if ansi is None:
            ansi = bool(getattr(self.stream, "isatty",
                                lambda: False)())
        self.ansi = ansi
        self.frames = 0

    def draw(self, aggregator: LiveAggregator) -> None:
        frame = aggregator.render()
        if self.ansi:
            self.stream.write(f"{ANSI_CLEAR}{frame}\n")
        else:
            if self.frames:
                self.stream.write("\n")
            self.stream.write(f"{frame}\n")
        self.stream.flush()
        self.frames += 1


def _run_mode(args, space, points) -> int:
    from .. import obs as _obs
    from ..batch.cli import DEFAULT_CACHE_ROOT
    from ..batch.executor import BatchRunner, make_backend
    from ..batch.store import ResultStore

    cache_dir = args.cache_dir or f"{DEFAULT_CACHE_ROOT}/{args.target}"
    store = ResultStore(cache_dir)
    if not args.resume:
        store.clear()
    runner = BatchRunner(store=store,
                         backend=make_backend(args.workers))

    aggregator = LiveAggregator(total=len(points))
    aggregator.label = space.name
    renderer = FrameRenderer(ansi=False if args.once else None)

    outcome: "Dict[str, Any]" = {}

    def sweep() -> None:
        try:
            outcome["sweep"] = space.run(runner, points=points)
        except BaseException as exc:  # surfaced after the join
            outcome["error"] = exc

    _obs.configure(enabled=True, reset=True)
    _obs.get_bus().subscribe(aggregator)
    worker = threading.Thread(target=sweep, name="repro-top-sweep",
                              daemon=True)
    try:
        worker.start()
        while worker.is_alive():
            worker.join(timeout=args.interval)
            if not args.once:
                renderer.draw(aggregator)
    except KeyboardInterrupt:
        pass
    finally:
        worker.join(timeout=5.0)
        _obs.get_bus().unsubscribe(aggregator)
        _obs.configure(enabled=False)
    renderer.draw(aggregator)  # final (or only) frame
    if "error" in outcome:
        raise outcome["error"]
    sweep_result = outcome.get("sweep")
    if sweep_result is None:
        return 130  # interrupted before the sweep finished
    return 0 if not sweep_result.report.failed else 1


def _follow_mode(args, total: Optional[int]) -> int:
    from ..batch.cli import DEFAULT_CACHE_ROOT
    from ..batch.store import RESULTS_NAME

    cache_dir = Path(args.cache_dir
                     or f"{DEFAULT_CACHE_ROOT}/{args.target}")
    tail = StoreTail(cache_dir / RESULTS_NAME)
    aggregator = LiveAggregator(total=total)
    aggregator.label = f"{args.target} (follow)"
    renderer = FrameRenderer(ansi=False if args.once else None)
    try:
        while True:
            tail.poll(aggregator)
            renderer.draw(aggregator)
            if args.once:
                return 0
            if total is not None and aggregator.done >= total:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        renderer.draw(aggregator)
        return 0


def top_main(argv: Optional[Sequence[str]] = None) -> int:
    from ..batch.spaces import NAMED_SPACES

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live monitor for design-space sweeps: run one "
                    "and watch it, or tail a running sweep's result "
                    "store.")
    parser.add_argument(
        "target",
        help="a predefined design space "
             f"({', '.join(sorted(NAMED_SPACES))}) to run or follow, "
             "or — with --follow — any cache directory name under "
             ".repro-batch/ (e.g. a soak campaign's --cache-dir)")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for run mode (0 = serial)")
    parser.add_argument(
        "--follow", action="store_true",
        help="do not execute anything; tail the sweep's result store")
    parser.add_argument(
        "--resume", action="store_true",
        help="run mode: keep the existing cache")
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: .repro-batch/<target>)")
    parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="random-sample N points instead of the full grid")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="sampling seed (with --sample)")
    parser.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL,
        metavar="SECONDS", help="seconds between frames")
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scripts / CI)")
    args = parser.parse_args(argv)

    if args.target not in NAMED_SPACES:
        # Not a predefined space: treat the target as a result-store
        # location (soak campaigns, ad-hoc sweeps) — follow-only, with
        # an unknown total.  Absolute/relative paths are taken as the
        # cache dir itself when --cache-dir is not given.
        if not args.follow:
            parser.error(
                f"unknown design space {args.target!r}; run mode "
                f"needs one of: {', '.join(sorted(NAMED_SPACES))} "
                f"(use --follow to tail a result store)")
        if args.cache_dir is None and ("/" in args.target
                                       or Path(args.target).exists()):
            args.cache_dir = args.target
        return _follow_mode(args, total=None)

    space = NAMED_SPACES[args.target]()
    points = (space.sample(args.sample, seed=args.seed)
              if args.sample is not None else list(space.grid()))
    if args.follow:
        return _follow_mode(args, total=len(points))
    return _run_mode(args, space, points)
