"""Process-global event bus: the streaming side of ``repro.obs``.

Spans, metrics, batch-job lifecycles, per-iteration convergence
residuals, and divergence-guard verdicts all *publish* plain-dict
events through one :class:`EventBus`; pluggable *sinks* subscribe and
fold or forward them (see :mod:`repro.obs.sinks`).  Where the tracer
and metrics registry answer "what happened" after a run, the bus
answers "what is happening" while it runs — it is the seam a live
monitor (:mod:`repro.obs.top`), a progress line
(:mod:`repro.batch.cli`), or a future analysis daemon's HTTP progress
stream plugs into.

Events are JSON-compatible dicts with a ``"type"`` field; consumers
must skip unknown types so the vocabulary can grow.  The core types:

``span`` / ``span_start`` / ``span_point``
    Finished spans (same shape as
    :func:`repro.obs.export.span_to_dict`), span openings, and
    point-in-time span events from the tracer.
``metric``
    One instrument update (``kind``/``name`` plus ``inc`` or
    ``value``).  Only published while some sink declares interest in
    metrics — counters fire millions of times per sweep, so the
    default cost must stay one attribute load and branch.
``sweep`` / ``job`` / ``job_retry``
    Batch lifecycle from :class:`repro.batch.executor.BatchRunner`:
    sweep start/end envelopes, one ``job`` event per unique point
    (cached or executed, any status), one ``job_retry`` per transient
    failure sent back to the queue.
``iteration``
    One global fixed-point iteration of
    :func:`repro.system.propagation.analyze_system` with its
    convergence residuals.
``guard``
    A :class:`repro.resilience.guards.DivergenceGuard` verdict.
``soak``
    Burn-in campaign lifecycle from :mod:`repro.soak.campaign`:
    ``phase`` is ``start``/``end`` (campaign envelopes), ``sample``
    (one judged sample with its violated contract ids), or
    ``violation`` (a triaged violation with its bundle path).

Publishing is allocation-free when nothing is subscribed: call sites
check :attr:`EventBus.active` (or :attr:`EventBus.metric_interest`)
before building the event dict.  Sink exceptions are counted and
swallowed — a broken monitor must never sink an analysis run.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import context as _context

#: Sinks may be plain callables or objects with a ``handle`` method.
SinkLike = Callable[[Dict[str, Any]], None]


class EventBus:
    """Thread-safe publish/subscribe hub for telemetry events.

    Subscribers declare optional *interests* — a collection of event
    types — and only receive matching events; ``None`` means
    everything.  The bus keeps two cheap flags, :attr:`active` (any
    sink at all) and :attr:`metric_interest` (some sink wants
    ``"metric"`` events), so hot call sites can skip event
    construction entirely with one attribute read.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: list of (handler, interests frozenset or None, token, label)
        self._sinks: List[
            Tuple[SinkLike, Optional[frozenset], Any, str]] = []
        self.active = False
        self.metric_interest = False
        #: Exceptions swallowed while dispatching to sinks (total).
        self.sink_errors = 0
        #: Swallowed exceptions broken out by sink label — the total
        #: alone cannot say *which* monitor is broken.
        self._sink_error_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def subscribe(self, sink: Any,
                  interests: Optional[Any] = None) -> Any:
        """Attach *sink*; returns *sink* itself (the unsubscribe token).

        *sink* is either a callable taking one event dict or an object
        with a ``handle(event)`` method; when *interests* is ``None``
        the sink's own ``interests`` attribute (if any) is used.
        """
        handler = getattr(sink, "handle", None)
        if handler is None:
            handler = sink
        if interests is None:
            interests = getattr(sink, "interests", None)
        wanted = None if interests is None else frozenset(interests)
        label = (getattr(sink, "name", None)
                 or getattr(sink, "__name__", None)
                 or type(sink).__name__)
        with self._lock:
            self._sinks.append((handler, wanted, sink, str(label)))
            self._refresh_flags()
        return sink

    def unsubscribe(self, sink: Any) -> bool:
        """Detach *sink*; returns whether it was subscribed."""
        with self._lock:
            before = len(self._sinks)
            self._sinks = [entry for entry in self._sinks
                           if entry[2] is not sink]
            self._refresh_flags()
            return len(self._sinks) < before

    def _refresh_flags(self) -> None:
        self.active = bool(self._sinks)
        self.metric_interest = any(
            wanted is None or "metric" in wanted
            for _, wanted, _, _ in self._sinks)

    def clear(self) -> None:
        """Drop every sink (test isolation; sinks are not closed)."""
        with self._lock:
            self._sinks = []
            self._refresh_flags()
        self.sink_errors = 0
        self._sink_error_counts = {}

    def sink_error_counts(self) -> Dict[str, int]:
        """Swallowed-exception counts per sink label (a copy)."""
        with self._lock:
            return dict(self._sink_error_counts)

    # ------------------------------------------------------------------
    def publish(self, event: Dict[str, Any]) -> None:
        """Dispatch *event* to every interested sink.

        The event dict gains a ``"t"`` wall-clock-free timestamp
        (:func:`time.perf_counter` seconds) unless the publisher
        already stamped one.  Dispatch happens outside the lock on a
        snapshot of the sink list, so sinks may (un)subscribe from
        inside a handler.
        """
        with self._lock:
            sinks = list(self._sinks)
        if not sinks:
            return
        if "t" not in event:
            event["t"] = time.perf_counter()
        if "request_id" not in event:
            rid = _context.current_request_id()
            if rid:
                event["request_id"] = rid
        kind = event.get("type")
        for handler, wanted, _, label in sinks:
            if wanted is not None and kind not in wanted:
                continue
            try:
                handler(event)
            except Exception:
                self.sink_errors += 1
                with self._lock:
                    self._sink_error_counts[label] = \
                        self._sink_error_counts.get(label, 0) + 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._sinks)


#: The process-global bus every instrumented call site publishes to.
#: Access it through :func:`repro.obs.get_bus` from user code.
BUS = EventBus()
