"""Metrics primitives: counters, gauges, histograms, and a registry.

All instruments are create-on-first-use through the
:class:`MetricsRegistry` so call sites never need registration
boilerplate::

    obs.metrics().counter("eventmodels.cache.hits").inc()
    with obs.metrics().histogram("propagation.local_seconds").time_block():
        scheduler.analyze(...)

Instrument objects are cheap plain-Python holders; the registry hands
out the same object for the same name, so hot call sites may keep a
local reference.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

from .._errors import ModelError
from .bus import BUS


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n
        if BUS.metric_interest:
            BUS.publish({"type": "metric", "kind": "counter",
                         "name": self.name, "inc": n,
                         "value": self.value})

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if BUS.metric_interest:
            BUS.publish({"type": "metric", "kind": "gauge",
                         "name": self.name, "value": value})

    def reset(self) -> None:
        self.value = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class _TimeBlock:
    """Context manager that observes its elapsed wall time."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: "Histogram"):
        self._hist = hist

    def __enter__(self) -> "_TimeBlock":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._hist.observe(time.perf_counter() - self._t0)
        return False


class Histogram:
    """Collects raw observations; summary statistics on demand.

    Observations are kept exactly (analysis runs produce thousands of
    samples, not millions), so percentiles are exact rather than
    bucket-approximated.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)
        if BUS.metric_interest:
            BUS.publish({"type": "metric", "kind": "histogram",
                         "name": self.name, "value": value})

    def time_block(self) -> _TimeBlock:
        """``with hist.time_block(): ...`` observes the block's seconds."""
        return _TimeBlock(self)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return self.total / len(self.values)

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Exact p-th percentile with linear interpolation.

        *p* is clamped into [0, 100] (callers computing e.g.
        ``100 * (1 - 1/n)`` may land a hair outside through float
        error); NaN is rejected.  An empty histogram reports 0.0, a
        single sample is every percentile of itself, and p=0 / p=100
        are exactly the min / max.
        """
        if math.isnan(p):
            raise ModelError(f"percentile must be a number, got {p}")
        p = min(100.0, max(0.0, p))
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        if p <= 0.0:
            return ordered[0]
        if p >= 100.0:
            return ordered[-1]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        # Guard the index against float error in rank for p near 100.
        hi = min(math.ceil(rank), len(ordered) - 1)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    def reset(self) -> None:
        self.values.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Namespace of instruments, create-on-first-use, kind-checked."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name))
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All instrument values as one JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }

    def export_state(self) -> Dict[str, Any]:
        """Raw instrument state for exposition renderers.

        Unlike :meth:`snapshot` (which pre-summarises histograms), this
        keeps the raw observation lists so an exporter can derive its
        own bucketing — :mod:`repro.obs.openmetrics` turns them into
        cumulative ``_bucket`` series at render time.
        """
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: list(h.values)
                               for n, h in sorted(self._histograms.items())},
            }

    def mark(self) -> Dict[str, Any]:
        """Opaque baseline for :meth:`delta_since` /
        :meth:`discard_since` (counter and gauge values plus histogram
        lengths at this instant)."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: len(h.values)
                               for n, h in self._histograms.items()},
            }

    def delta_since(self, mark: Dict[str, Any]) -> Dict[str, Any]:
        """Everything recorded since *mark*, as a JSON-serialisable dict
        suitable for shipping across a process boundary and replaying
        with :meth:`merge_delta`.

        Counters become integer increments, histograms the raw samples
        observed since the mark, gauges their current value (last write
        wins — a gauge has no meaningful delta).
        """
        base_counters = mark.get("counters", {})
        base_hists = mark.get("histograms", {})
        with self._lock:
            counters = {}
            for n, c in self._counters.items():
                inc = c.value - base_counters.get(n, 0)
                if inc:
                    counters[n] = inc
            histograms = {}
            for n, h in self._histograms.items():
                start = base_hists.get(n, 0)
                if len(h.values) > start:
                    histograms[n] = list(h.values[start:])
            gauges = {n: g.value for n, g in self._gauges.items()
                      if g.value is not None}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_delta(self, delta: Dict[str, Any]) -> None:
        """Replay a :meth:`delta_since` payload into this registry
        (used by the batch runner to fold worker-side metrics into the
        parent process)."""
        for name, inc in delta.get("counters", {}).items():
            self.counter(name).inc(inc)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, samples in delta.get("histograms", {}).items():
            hist = self.histogram(name)
            for value in samples:
                hist.observe(value)

    def discard_since(self, mark: Dict[str, Any]) -> None:
        """Roll every instrument back to its state at *mark*.

        The inverse of :meth:`merge_delta` for work that must be
        *unhappened*: a serially-executed batch job that blew its
        post-hoc wall-time budget already wrote its metrics straight
        into this registry — discarding the job's result without
        discarding its metric side effects would leave the two out of
        sync (and differ from the pre-emptive ``SIGALRM`` platforms,
        where a killed job records nothing).

        Counters return to their marked value (instruments created
        after the mark return to zero), histograms are truncated to
        their marked length, gauges are restored to their marked value
        (``None`` — never written — included).
        """
        base_counters = mark.get("counters", {})
        base_gauges = mark.get("gauges", {})
        base_hists = mark.get("histograms", {})
        with self._lock:
            for n, c in self._counters.items():
                c.value = base_counters.get(n, 0)
            for n, g in self._gauges.items():
                g.value = base_gauges.get(n, None)
            for n, h in self._histograms.items():
                del h.values[base_hists.get(n, 0):]

    def is_empty(self) -> bool:
        """True when no instrument has recorded anything."""
        with self._lock:
            return (all(c.value == 0 for c in self._counters.values())
                    and all(g.value is None for g in self._gauges.values())
                    and all(h.count == 0
                            for h in self._histograms.values()))

    def reset(self) -> None:
        """Zero every instrument in place (objects stay valid, so call
        sites holding references keep working)."""
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for h in self._histograms.values():
                h.reset()
