"""``python -m repro trace`` — run a workload instrumented, dump JSONL.

Runs an example script (or the built-in paper system) with
observability enabled, writes every finished span as a JSONL trace,
prints the convergence report of any global fixed-point runs, and
summarises the headline metrics (iterations, cache hit rate,
fixed-point effort)::

    python -m repro trace examples/quickstart.py
    python -m repro trace rox08 --out rox08.trace.jsonl --metrics m.json
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import configure, get_tracer, metrics
from .export import metrics_to_json, tracer_to_jsonl


def _run_builtin_rox08() -> None:
    """Analyse the paper's evaluation system (section 6) end to end."""
    from ..examples_lib.rox08 import build_system
    from ..system import analyze_system

    result = analyze_system(build_system("hem"))
    print(f"rox08 hem variant: converged in {result.iterations} "
          f"iterations")
    for rr in result.resource_results.values():
        for name, task in sorted(rr.task_results.items()):
            print(f"  {name}: r_max = {task.r_max:g}")


def trace_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run an example with tracing enabled and dump the "
                    "span trace as JSONL.")
    parser.add_argument(
        "target",
        help="path to an example script, or 'rox08' for the built-in "
             "paper system")
    parser.add_argument(
        "--out", default=None,
        help="trace output path (default: <target>.trace.jsonl)")
    parser.add_argument(
        "--metrics", dest="metrics_out", default=None,
        help="also write a metrics snapshot JSON to this path")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the workload's own stdout")
    args = parser.parse_args(argv)

    if args.target == "rox08":
        out_path = args.out or "rox08.trace.jsonl"
        workload = _run_builtin_rox08
    else:
        script = Path(args.target)
        if not script.exists():
            print(f"error: no such example: {script}", file=sys.stderr)
            return 2
        out_path = args.out or f"{script.stem}.trace.jsonl"

        def workload() -> None:
            runpy.run_path(str(script), run_name="__main__")

    configure(enabled=True, reset=True)
    try:
        if args.quiet:
            import contextlib
            import io
            with contextlib.redirect_stdout(io.StringIO()):
                workload()
        else:
            workload()
    finally:
        configure(enabled=False)

    tracer = get_tracer()
    registry = metrics()
    tracer_to_jsonl(tracer, out_path)
    print(f"\n--- trace: {len(tracer)} spans -> {out_path}")

    from ..viz.convergence import ConvergenceReport
    report = ConvergenceReport.from_tracer(tracer)
    if report.rows:
        print(report.render())

    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    hits = counters.get("eventmodels.cache.hits", 0)
    misses = counters.get("eventmodels.cache.misses", 0)
    if hits + misses:
        print(f"event-model cache: {hits} hits / {misses} misses "
              f"({hits / (hits + misses):.1%} hit rate)")
    fp = snapshot["histograms"].get("busy_window.fixed_point_iterations")
    if fp and fp["count"]:
        print(f"busy-window fixed points: {fp['count']} solves, "
              f"mean {fp['mean']:.1f} iterations, p99 {fp['p99']:.0f}")
    submitted = counters.get("batch.jobs.submitted", 0)
    batch_hits = counters.get("batch.cache.hits", 0)
    if submitted or batch_hits:
        total = batch_hits + counters.get("batch.cache.misses", 0)
        rate = batch_hits / total if total else 0.0
        print(f"batch jobs: {submitted} submitted, "
              f"{counters.get('batch.jobs.completed', 0)} completed, "
              f"{counters.get('batch.jobs.failed', 0)} failed "
              f"({rate:.1%} cache hit rate)")
    if args.metrics_out:
        metrics_to_json(registry, args.metrics_out)
        print(f"metrics snapshot -> {args.metrics_out}")
    return 0
