"""Live sweep aggregation: fold bus events into rolling state.

The :class:`LiveAggregator` is a bus sink
(:meth:`~repro.obs.bus.EventBus.subscribe` it, or pass it to the batch
CLI / ``repro top`` which do so themselves) that folds the streaming
telemetry of a running sweep into one compact aggregate:

* point counts — done / ok / failed / timeout / poisoned / cached /
  executed / retried — maintained exactly as the final
  :class:`~repro.batch.executor.BatchReport` will report them (one
  ``job`` event per unique point, cached or executed);
* cache hit rate, throughput over a sliding completion window, and an
  ETA estimator for the remaining points;
* engine effort streamed from workers through the ``JobResult.obs``
  channel (global iterations, event-model cache hits, span counts);
* per-system convergence residual trends from ``iteration`` events
  (serial/in-process runs — pool workers publish in their own
  processes, so their residuals arrive post-hoc via the job summary);
* divergence-guard verdicts and the most recent failures.

Everything is held under one lock and bounded (deques with caps), so
an aggregator attached to a million-point sweep stays O(1) in memory.
:meth:`snapshot` returns the state as one JSON-compatible dict — the
payload a future daemon's HTTP progress stream would serve —
:meth:`render_line` a one-line status string, and :meth:`render` the
multi-line frame ``python -m repro top`` draws.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Completion-window size for the throughput estimate.
THROUGHPUT_WINDOW = 128

#: Residual-trend history kept per system.
RESIDUAL_WINDOW = 32

#: Distinct systems whose residual trends are retained (oldest evicted).
MAX_TRACKED_SYSTEMS = 16

#: Failures and guard verdicts retained for display.
MAX_FAILURES = 20


class LiveAggregator:
    """Fold sweep telemetry events into a rolling aggregate."""

    interests = frozenset(
        {"sweep", "job", "job_retry", "iteration", "guard", "soak"})

    def __init__(self, total: Optional[int] = None,
                 clock=time.perf_counter):
        self._lock = threading.Lock()
        self._clock = clock
        self.total = total
        self.label = ""
        self.workers = 1
        self.backend = ""
        # point counts (BatchReport semantics)
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.timeout = 0
        self.poisoned = 0
        self.cached = 0
        self.executed = 0
        self.retried = 0
        # timing
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.wall: Optional[float] = None
        self.duration_sum = 0.0
        self.duration_max = 0.0
        self._recent: "Deque[float]" = deque(maxlen=THROUGHPUT_WINDOW)
        # engine effort (worker deltas + in-process iteration events)
        self.iterations = 0
        self.model_cache_hits = 0
        self.model_cache_misses = 0
        self.worker_spans = 0
        # residual trends per system, insertion-ordered with eviction
        self.residuals: "Dict[str, Deque[Tuple[int, float]]]" = {}
        self.guard_verdicts: "List[Dict[str, Any]]" = []
        self.failures: "List[Tuple[str, str]]" = []
        # soak campaign telemetry
        self.soak_profile = ""
        self.soak_samples = 0
        self.soak_violations = 0
        self.soak_contracts: "List[Dict[str, Any]]" = []

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def handle(self, event: Dict[str, Any]) -> None:
        kind = event.get("type")
        with self._lock:
            if kind == "job":
                self._fold_job(event)
            elif kind == "iteration":
                self._fold_iteration(event)
            elif kind == "job_retry":
                self.retried += 1
            elif kind == "guard":
                self.guard_verdicts.append({
                    k: event.get(k)
                    for k in ("system", "verdict", "iteration", "detail")})
                del self.guard_verdicts[:-MAX_FAILURES]
            elif kind == "sweep":
                self._fold_sweep(event)
            elif kind == "soak":
                self._fold_soak(event)

    def _fold_soak(self, event: Dict[str, Any]) -> None:
        phase = event.get("phase")
        if phase == "start":
            self.soak_profile = str(event.get("profile", ""))
        elif phase == "sample":
            self.soak_samples += 1
            self.soak_violations += len(event.get("violations") or ())
        elif phase == "violation":
            self.soak_contracts.append({
                k: event.get(k)
                for k in ("contract", "index", "kind", "seed",
                          "bundle")})
            del self.soak_contracts[:-MAX_FAILURES]
        elif phase == "end":
            self.soak_samples = event.get("samples", self.soak_samples)
            self.soak_violations = event.get(
                "violations", self.soak_violations)

    def _fold_sweep(self, event: Dict[str, Any]) -> None:
        if event.get("phase") == "start":
            if event.get("total") is not None:
                self.total = event["total"]
            self.label = event.get("label", self.label)
            self.workers = event.get("workers", self.workers)
            self.backend = event.get("backend", self.backend)
            if self.started_at is None:
                self.started_at = event.get("t", self._clock())
        elif event.get("phase") == "end":
            self.finished_at = event.get("t", self._clock())
            self.wall = event.get("wall")

    def _fold_job(self, event: Dict[str, Any]) -> None:
        now = event.get("t", self._clock())
        if self.started_at is None:
            self.started_at = now
        self.done += 1
        status = event.get("status", "")
        if status == "ok":
            self.ok += 1
        else:
            self.failed += 1
            if status == "timeout":
                self.timeout += 1
            if status == "poisoned":
                self.poisoned += 1
            label = event.get("label") or str(event.get("key", ""))[:12]
            self.failures.append((label, event.get("error", "")))
            del self.failures[:-MAX_FAILURES]
        if event.get("cached"):
            self.cached += 1
        else:
            self.executed += 1
            duration = event.get("duration") or 0.0
            self.duration_sum += duration
            if duration > self.duration_max:
                self.duration_max = duration
            self._recent.append(now)
        summary = event.get("obs")
        if summary:
            self.iterations += summary.get("iterations", 0)
            self.model_cache_hits += summary.get("model_cache_hits", 0)
            self.model_cache_misses += summary.get(
                "model_cache_misses", 0)
            self.worker_spans += summary.get("spans", 0)

    def _fold_iteration(self, event: Dict[str, Any]) -> None:
        system = str(event.get("system", "?"))
        trend = self.residuals.get(system)
        if trend is None:
            while len(self.residuals) >= MAX_TRACKED_SYSTEMS:
                self.residuals.pop(next(iter(self.residuals)))
            trend = self.residuals[system] = deque(maxlen=RESIDUAL_WINDOW)
        trend.append((event.get("iteration", 0),
                      event.get("residual_r_max", 0.0)))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.done if self.done else 0.0

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None \
            else self._clock()
        return max(0.0, end - self.started_at)

    def throughput(self) -> float:
        """Executed points per second over the completion window."""
        with self._lock:
            recent = list(self._recent)
        if len(recent) >= 2 and recent[-1] > recent[0]:
            return (len(recent) - 1) / (recent[-1] - recent[0])
        elapsed = self.elapsed()
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds until the sweep completes, if knowable."""
        if self.total is None or self.finished_at is not None:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        rate = self.throughput()
        if rate <= 0:
            return None
        return remaining / rate

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    @staticmethod
    def telemetry_health() -> Dict[str, Any]:
        """Health of the telemetry plane itself: spans dropped by the
        tracer's ring buffer and exceptions the bus swallowed per sink.
        Read lazily from the process-global tracer/bus so an aggregator
        constructed before ``obs.configure`` still sees them."""
        from . import get_bus, get_tracer
        health: Dict[str, Any] = {
            "dropped_spans": 0,
            "sink_errors": 0,
            "sink_error_counts": {},
        }
        try:
            health["dropped_spans"] = get_tracer().dropped
            bus = get_bus()
            health["sink_errors"] = bus.sink_errors
            health["sink_error_counts"] = bus.sink_error_counts()
        except Exception:
            pass  # telemetry health is best-effort decoration
        return health

    def snapshot(self) -> Dict[str, Any]:
        """The whole aggregate as one JSON-compatible dict."""
        with self._lock:
            residuals = {
                system: list(trend)
                for system, trend in self.residuals.items()
            }
            state = {
                "label": self.label,
                "total": self.total,
                "done": self.done,
                "ok": self.ok,
                "failed": self.failed,
                "timeout": self.timeout,
                "poisoned": self.poisoned,
                "cached": self.cached,
                "executed": self.executed,
                "retried": self.retried,
                "cache_hit_rate": self.cache_hit_rate,
                "workers": self.workers,
                "backend": self.backend,
                "duration_sum": self.duration_sum,
                "duration_max": self.duration_max,
                "iterations": self.iterations,
                "model_cache_hits": self.model_cache_hits,
                "model_cache_misses": self.model_cache_misses,
                "worker_spans": self.worker_spans,
                "residuals": residuals,
                "guard_verdicts": list(self.guard_verdicts),
                "failures": list(self.failures),
                "soak": {
                    "profile": self.soak_profile,
                    "samples": self.soak_samples,
                    "violations": self.soak_violations,
                    "recent_violations": list(self.soak_contracts),
                },
                "finished": self.finished_at is not None,
                "wall": self.wall,
            }
        state["elapsed"] = self.elapsed()
        state["throughput"] = self.throughput()
        state["eta_seconds"] = self.eta_seconds()
        state["telemetry"] = self.telemetry_health()
        return state

    def render_line(self, width: int = 78) -> str:
        """One-line progress summary (the batch CLI status line)."""
        total = f"/{self.total}" if self.total is not None else ""
        parts = [f"{self.done}{total} pts"]
        if self.total:
            parts[0] += f" ({100.0 * self.done / self.total:.0f}%)"
        parts.append(f"ok {self.ok}")
        if self.failed:
            parts.append(f"fail {self.failed}")
        if self.cached:
            parts.append(f"cached {self.cached}")
        if self.retried:
            parts.append(f"retry {self.retried}")
        if self.soak_samples:
            parts.append(f"soak {self.soak_samples} smp"
                         f" {self.soak_violations} viol")
        rate = self.throughput()
        if rate > 0:
            parts.append(f"{rate:.1f} pt/s")
        eta = self.eta_seconds()
        if eta is not None and self.done < (self.total or 0):
            parts.append(f"eta {_fmt_seconds(eta)}")
        line = "  ".join(parts)
        return line[:width]

    def render(self, width: int = 78) -> str:
        """Multi-line frame for the live monitor."""
        snap = self.snapshot()
        lines = []
        title = snap["label"] or "sweep"
        state = "done" if snap["finished"] else "running"
        lines.append(f"=== {title} [{state}] "
                     f"{snap['done']}/{snap['total'] or '?'} points ===")
        lines.append(
            f"elapsed {_fmt_seconds(snap['elapsed'])}"
            + (f"  eta {_fmt_seconds(snap['eta_seconds'])}"
               if snap["eta_seconds"] is not None else "")
            + f"  {snap['throughput']:.2f} pt/s"
            + f"  backend {snap['backend'] or '-'}"
              f" x{snap['workers']}")
        failed_bits = ""
        if snap["failed"]:
            detail = []
            if snap["timeout"]:
                detail.append(f"{snap['timeout']} timeout")
            if snap["poisoned"]:
                detail.append(f"{snap['poisoned']} poisoned")
            failed_bits = f" ({', '.join(detail)})" if detail else ""
        lines.append(
            f"ok {snap['ok']}  failed {snap['failed']}{failed_bits}  "
            f"cached {snap['cached']} "
            f"({100.0 * snap['cache_hit_rate']:.0f}% hits)  "
            f"retries {snap['retried']}")
        if snap["executed"]:
            mean = snap["duration_sum"] / snap["executed"]
            lines.append(f"job wall: mean {mean:.3f}s  "
                         f"max {snap['duration_max']:.3f}s  "
                         f"({snap['executed']} executed)")
        if snap["iterations"] or snap["model_cache_hits"]:
            total_q = (snap["model_cache_hits"]
                       + snap["model_cache_misses"])
            rate = (snap["model_cache_hits"] / total_q
                    if total_q else 0.0)
            lines.append(
                f"engine: {snap['iterations']} global iterations  "
                f"model cache {100.0 * rate:.0f}%  "
                f"worker spans {snap['worker_spans']}")
        for system, trend in list(snap["residuals"].items())[-4:]:
            if not trend:
                continue
            tail = ", ".join(f"{r:.3g}" for _, r in trend[-6:])
            lines.append(f"residuals[{system}]: {tail} "
                         f"(it {trend[-1][0]})")
        soak = snap.get("soak") or {}
        if soak.get("samples"):
            lines.append(
                f"soak[{soak.get('profile') or '-'}]: "
                f"{soak['samples']} samples  "
                f"{soak['violations']} violations")
            for record in soak.get("recent_violations", [])[-3:]:
                lines.append(
                    f"  VIOLATED {record.get('contract')} @ sample "
                    f"{record.get('index')} "
                    f"(seed {record.get('seed')})")
        for verdict in snap["guard_verdicts"][-3:]:
            lines.append(f"guard: {verdict.get('verdict')} on "
                         f"{verdict.get('system')} @ iteration "
                         f"{verdict.get('iteration')}")
        for label, error in snap["failures"][-5:]:
            text = f"FAILED {label}: {error}"
            lines.append(text[:width])
        telemetry = snap.get("telemetry") or {}
        if telemetry.get("dropped_spans") or telemetry.get("sink_errors"):
            bits = []
            if telemetry.get("dropped_spans"):
                bits.append(f"{telemetry['dropped_spans']} spans dropped")
            if telemetry.get("sink_errors"):
                per_sink = ", ".join(
                    f"{name}={count}" for name, count in sorted(
                        telemetry.get("sink_error_counts", {}).items()))
                bits.append(f"{telemetry['sink_errors']} sink errors"
                            + (f" ({per_sink})" if per_sink else ""))
            lines.append("telemetry: " + "  ".join(bits))
        return "\n".join(line[:width] for line in lines)


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
