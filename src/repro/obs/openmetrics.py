"""OpenMetrics / Prometheus text exposition for the metrics registry.

:func:`render_registry` turns a live
:class:`~repro.obs.metrics.MetricsRegistry` into the OpenMetrics text
format (the strict superset of the Prometheus exposition format): one
``# TYPE``/``# HELP`` header per metric family, counter samples with
the mandatory ``_total`` suffix, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``, escaped label
values, and a terminal ``# EOF``.  The serve daemon mounts the result
at ``GET /metrics`` so any standard scraper can watch a fleet of
analysis daemons with zero extra dependencies.

The registry's instruments are flat dotted names.  Two conventions map
them onto the OpenMetrics data model:

* dots become underscores and every family gains a ``repro_`` prefix
  (``serve.request_seconds`` → ``repro_serve_request_seconds``);
* an instrument named via :func:`labeled` —
  ``labeled("serve.endpoint_seconds", endpoint="analyze")`` →
  ``serve.endpoint_seconds{endpoint="analyze"}`` — renders as one
  labelled sample of the base family, so per-endpoint series share a
  family the way a scraper expects.

Registry histograms keep raw observations (exact percentiles), so the
cumulative buckets here are *derived at render time* — no precision is
lost inside the process; the bucket boundaries only shape what a
remote scraper sees.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "escape_help",
    "escape_label_value",
    "labeled",
    "render_registry",
    "render_state",
    "sanitize_name",
    "split_labels",
]

#: HTTP Content-Type for an OpenMetrics scrape response.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Default cumulative bucket boundaries (seconds).  Log-spaced around
#: the latencies this engine actually produces: a warm cache hit is
#: ~1ms, a cold fixed point tens of ms to seconds.  Values outside the
#: range land in ``+Inf`` — nothing is ever lost, only coarsened.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
_NAME_OK_RE = re.compile(r"[^a-zA-Z0-9_:]")


def labeled(name: str, **labels: Any) -> str:
    """Canonical labelled instrument name: ``base{k="v",...}``.

    Sorted keys make the name deterministic, so two call sites naming
    the same series get the same registry instrument.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`labeled`: ``base{k="v"}`` → (base, {k: v})."""
    base, brace, rest = name.partition("{")
    if not brace or not rest.endswith("}"):
        return name, {}
    labels = {key: _unescape(value)
              for key, value in _LABEL_RE.findall(rest[:-1])}
    return base, labels


def _unescape(value: str) -> str:
    return (value.replace("\\n", "\n")
                 .replace('\\"', '"')
                 .replace("\\\\", "\\"))


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, and newline."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """Dotted instrument name → legal metric family name."""
    cleaned = _NAME_OK_RE.sub("_", name.replace(".", "_"))
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Dict[str, str],
               extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, v) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _Family:
    """One metric family: a type, a help string, accumulated samples."""

    __slots__ = ("name", "kind", "help", "lines")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: List[str] = []

    def render(self) -> List[str]:
        return ([f"# TYPE {self.name} {self.kind}",
                 f"# HELP {self.name} {escape_help(self.help)}"]
                + self.lines)


def render_state(state: Dict[str, Any], *,
                 prefix: str = "repro_",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> str:
    """Render a :meth:`MetricsRegistry.export_state` payload."""
    families: Dict[str, _Family] = {}

    def family(base: str, kind: str) -> Optional[_Family]:
        fam_name = sanitize_name(base, prefix)
        fam = families.get(fam_name)
        if fam is None:
            fam = families[fam_name] = _Family(
                fam_name, kind, f"repro instrument {base}")
        elif fam.kind != kind:
            # A family must have exactly one type; a dotted-name
            # collision across kinds keeps the first and drops the
            # rest rather than emitting an unparseable exposition.
            return None
        return fam

    for name, value in state.get("counters", {}).items():
        base, labels = split_labels(name)
        fam = family(base, "counter")
        if fam is not None:
            fam.lines.append(f"{fam.name}_total{_label_str(labels)} "
                             f"{_format_value(value)}")

    for name, value in state.get("gauges", {}).items():
        if value is None:
            continue
        base, labels = split_labels(name)
        fam = family(base, "gauge")
        if fam is not None:
            fam.lines.append(f"{fam.name}{_label_str(labels)} "
                             f"{_format_value(value)}")

    for name, values in state.get("histograms", {}).items():
        base, labels = split_labels(name)
        fam = family(base, "histogram")
        if fam is None:
            continue
        bounds = list(buckets)
        cumulative = 0
        ordered = sorted(values)
        idx = 0
        for bound in bounds:
            while idx < len(ordered) and ordered[idx] <= bound:
                idx += 1
            cumulative = idx
            fam.lines.append(
                f"{fam.name}_bucket"
                f"{_label_str(labels, ('le', _format_value(bound)))} "
                f"{cumulative}")
        fam.lines.append(
            f"{fam.name}_bucket{_label_str(labels, ('le', '+Inf'))} "
            f"{len(values)}")
        fam.lines.append(f"{fam.name}_sum{_label_str(labels)} "
                         f"{_format_value(float(sum(values)))}")
        fam.lines.append(f"{fam.name}_count{_label_str(labels)} "
                         f"{len(values)}")

    out: List[str] = []
    for fam_name in sorted(families):
        out.extend(families[fam_name].render())
    out.append("# EOF")
    return "\n".join(out) + "\n"


def render_registry(registry: Any, *,
                    prefix: str = "repro_",
                    buckets: Sequence[float] = DEFAULT_BUCKETS) -> str:
    """Render a live :class:`~repro.obs.metrics.MetricsRegistry`."""
    return render_state(registry.export_state(),
                        prefix=prefix, buckets=buckets)
