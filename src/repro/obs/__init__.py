"""repro.obs — instrumentation for the compositional analysis engine.

Three pieces:

* :mod:`repro.obs.trace` — span-based tracer (context-manager API,
  thread-local span stack) used by the global fixed-point loop to emit
  per-iteration convergence spans.
* :mod:`repro.obs.metrics` — counters, gauges, and histograms behind a
  create-on-first-use registry (cache hit rates, fixed-point iteration
  counts, simulator throughput).
* :mod:`repro.obs.export` — JSONL trace and JSON metrics exporters.

Observability is **off by default** and the disabled fast path is a
single module-attribute check — instrumented call sites are written as::

    from .. import obs as _obs
    ...
    if _obs.enabled:
        _obs.metrics().counter("eventmodels.cache.hits").inc()

so no string is formatted and no dict is allocated unless tracing was
explicitly requested via :func:`configure`.

Typical use::

    import repro
    repro.configure(enabled=True)
    result = repro.analyze_system(system)
    from repro.viz import ConvergenceReport
    print(ConvergenceReport.from_tracer(repro.get_tracer()).render())

or from the shell: ``python -m repro trace examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from typing import Optional

from .export import (
    metrics_to_json,
    read_jsonl,
    span_to_dict,
    spans_to_chrome,
    spans_to_jsonl,
    tracer_to_chrome,
    tracer_to_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

#: Master switch.  Instrumented call sites check this module attribute
#: before doing *any* observability work; keep reads cheap by accessing
#: it through the module object (``obs.enabled``), never by ``from``
#: imports (which would freeze the value at import time).
enabled = False

_tracer = Tracer()
_metrics = MetricsRegistry()


def configure(*, enabled: bool = True, reset: bool = False) -> None:
    """Turn observability on or off for the whole process.

    Parameters
    ----------
    enabled:
        New state of the master switch.
    reset:
        Also drop all previously collected spans and zero every metric.
    """
    module = sys.modules[__name__]
    module.enabled = enabled
    if reset:
        _tracer.reset()
        _metrics.reset()


def disable(*, reset: bool = False) -> None:
    """Shorthand for ``configure(enabled=False, ...)``."""
    configure(enabled=False, reset=reset)


def is_enabled() -> bool:
    """Current state of the master switch (for callers that hold a
    ``from repro.obs import ...`` style reference)."""
    return enabled


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


__all__ = [
    "enabled",
    "configure",
    "disable",
    "is_enabled",
    "get_tracer",
    "metrics",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "span_to_dict",
    "spans_to_jsonl",
    "tracer_to_jsonl",
    "spans_to_chrome",
    "tracer_to_chrome",
    "read_jsonl",
    "metrics_to_json",
]
