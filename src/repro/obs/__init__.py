"""repro.obs — instrumentation for the compositional analysis engine.

The pieces:

* :mod:`repro.obs.trace` — span-based tracer (context-manager API,
  thread-local span stack, ring-buffered retention) used by the global
  fixed-point loop to emit per-iteration convergence spans.
* :mod:`repro.obs.metrics` — counters, gauges, and histograms behind a
  create-on-first-use registry (cache hit rates, fixed-point iteration
  counts, simulator throughput).
* :mod:`repro.obs.export` — JSONL trace and JSON metrics exporters,
  plus the Chrome/Perfetto trace-event converter.
* :mod:`repro.obs.bus` — process-global streaming event bus that span,
  metric, batch-lifecycle, convergence-residual, and guard-verdict
  events publish through *while a run is in flight*.
* :mod:`repro.obs.sinks` / :mod:`repro.obs.aggregate` — pluggable bus
  subscribers: live JSONL/Chrome exporters and the
  :class:`LiveAggregator` behind the batch progress line and the
  ``python -m repro top`` monitor (:mod:`repro.obs.top`).

Observability is **off by default** and the disabled fast path is a
single module-attribute check — instrumented call sites are written as::

    from .. import obs as _obs
    ...
    if _obs.enabled:
        _obs.metrics().counter("eventmodels.cache.hits").inc()

so no string is formatted and no dict is allocated unless tracing was
explicitly requested via :func:`configure`.

Typical use::

    import repro
    repro.configure(enabled=True)
    result = repro.analyze_system(system)
    from repro.viz import ConvergenceReport
    print(ConvergenceReport.from_tracer(repro.get_tracer()).render())

or from the shell: ``python -m repro trace examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from typing import Optional

from .aggregate import LiveAggregator
from .bus import BUS, EventBus
from .context import (
    TraceContext,
    current_request_id,
    new_request_id,
    request_context,
)
from .export import (
    metrics_to_json,
    read_jsonl,
    records_to_chrome,
    span_to_dict,
    spans_to_chrome,
    spans_to_jsonl,
    tracer_to_chrome,
    tracer_to_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .openmetrics import render_registry as render_openmetrics
from .profile import SamplingProfiler
from .sinks import ChromeTraceSink, JsonlEventSink, Sink
from .trace import Span, Tracer

#: Master switch.  Instrumented call sites check this module attribute
#: before doing *any* observability work; keep reads cheap by accessing
#: it through the module object (``obs.enabled``), never by ``from``
#: imports (which would freeze the value at import time).
enabled = False

#: When true, pool-worker jobs attach their finished span records to
#: ``JobResult.obs`` so the parent tracer can adopt them onto per-worker
#: lanes.  Off by default — shipping thousands of span dicts per job is
#: only worth it when someone is going to look at the merged trace.
ship_worker_spans = False

_tracer = Tracer()
_metrics = MetricsRegistry()


def configure(*, enabled: bool = True, reset: bool = False,
              max_spans: Optional[int] = None,
              ship_worker_spans: Optional[bool] = None) -> None:
    """Turn observability on or off for the whole process.

    Parameters
    ----------
    enabled:
        New state of the master switch.
    reset:
        Also drop all previously collected spans and zero every metric.
    max_spans:
        When given, new cap on the tracer's finished-span ring buffer
        (see :class:`~repro.obs.trace.Tracer`); ``0``/negative means
        "keep everything".
    ship_worker_spans:
        When given, toggles relaying worker-side span records through
        the ``JobResult.obs`` channel for parent-side adoption.
    """
    module = sys.modules[__name__]
    module.enabled = enabled
    if max_spans is not None:
        _tracer.max_finished = max_spans if max_spans > 0 else None
    if ship_worker_spans is not None:
        module.ship_worker_spans = ship_worker_spans
    if reset:
        _tracer.reset()
        _metrics.reset()


def disable(*, reset: bool = False) -> None:
    """Shorthand for ``configure(enabled=False, ...)``."""
    configure(enabled=False, reset=reset)


def is_enabled() -> bool:
    """Current state of the master switch (for callers that hold a
    ``from repro.obs import ...`` style reference)."""
    return enabled


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def get_bus() -> EventBus:
    """The process-global telemetry event bus."""
    return BUS


__all__ = [
    "enabled",
    "ship_worker_spans",
    "configure",
    "disable",
    "is_enabled",
    "get_tracer",
    "get_bus",
    "metrics",
    "Tracer",
    "Span",
    "TraceContext",
    "SamplingProfiler",
    "current_request_id",
    "new_request_id",
    "request_context",
    "render_openmetrics",
    "EventBus",
    "Sink",
    "JsonlEventSink",
    "ChromeTraceSink",
    "LiveAggregator",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "span_to_dict",
    "spans_to_jsonl",
    "tracer_to_jsonl",
    "spans_to_chrome",
    "tracer_to_chrome",
    "records_to_chrome",
    "read_jsonl",
    "metrics_to_json",
]
