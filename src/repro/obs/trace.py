"""Span-based tracing for the analysis engine.

A :class:`Span` is a named, timed region of work with free-form
attributes; spans nest via a thread-local stack kept by the
:class:`Tracer`.  Finished spans accumulate on the tracer and can be
exported as JSONL (:mod:`repro.obs.export`) or summarised by the
convergence renderer in :mod:`repro.viz.convergence`.

Call sites never touch this module when observability is disabled: the
hot paths guard every tracer call with ``if obs.enabled:`` so the
disabled cost is a single attribute load and branch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """One named, timed region of work.

    Spans are context managers::

        with tracer.span("local_analysis", resource="cpu1") as span:
            ...
            span.set(tasks=3)

    An exception escaping the ``with`` block marks the span with
    ``status="error"`` and the exception repr before re-raising.
    """

    __slots__ = ("name", "attributes", "events", "span_id", "parent_id",
                 "thread_id", "start", "end", "status", "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int],
                 attributes: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = threading.get_ident()
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside the span."""
        self.events.append({"name": name,
                            "time": time.perf_counter(),
                            **attributes})

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock seconds between start and finish, if finished."""
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self) -> None:
        self._tracer._finish(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)
        self.finish()
        return False  # never swallow the exception

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.name} id={self.span_id} {state}>"


class Tracer:
    """Collects spans; keeps a per-thread stack of open spans.

    ``span()``/``start()`` push onto the calling thread's stack so
    nested spans automatically pick up their parent.  Finished spans are
    appended to a shared list guarded by a lock (the analysis engine is
    single-threaded today, but simulators and future sharded backends
    may not be).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.finished: List[Span] = []
        #: perf_counter origin for relative timestamps in exports.
        self.t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def start(self, name: str, **attributes: Any) -> Span:
        """Open a span (caller must ``finish()`` it, or use ``span()``)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self.current()
        span = Span(self, name, span_id,
                    parent.span_id if parent is not None else None,
                    attributes)
        self._stack().append(span)
        return span

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span for use as a context manager."""
        return self.start(name, **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the current span (dropped when no span is
        open — events only make sense inside a traced region)."""
        current = self.current()
        if current is not None:
            current.event(name, **attributes)

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return  # double-finish is a no-op
        span.end = time.perf_counter()
        stack = self._stack()
        # Exception safety: pop every span opened after this one too, so
        # a missed finish() deeper down cannot corrupt the stack.
        while stack:
            popped = stack.pop()
            if popped is span:
                break
        with self._lock:
            self.finished.append(span)

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name."""
        with self._lock:
            snapshot = list(self.finished)
        if name is None:
            return snapshot
        return [s for s in snapshot if s.name == name]

    def reset(self) -> None:
        """Drop all finished spans and restart the clock origin."""
        with self._lock:
            self.finished.clear()
            self._next_id = 0
        self._local = threading.local()
        self.t0 = time.perf_counter()

    def __len__(self) -> int:
        with self._lock:
            return len(self.finished)
