"""Span-based tracing for the analysis engine.

A :class:`Span` is a named, timed region of work with free-form
attributes; spans nest via a thread-local stack kept by the
:class:`Tracer`.  Finished spans accumulate on the tracer and can be
exported as JSONL (:mod:`repro.obs.export`) or summarised by the
convergence renderer in :mod:`repro.viz.convergence`.

Call sites never touch this module when observability is disabled: the
hot paths guard every tracer call with ``if obs.enabled:`` so the
disabled cost is a single attribute load and branch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from . import context as _context
from .bus import BUS

#: Default cap on retained finished spans.  Long sweeps (and the future
#: analysis daemon) emit spans indefinitely; beyond the cap the oldest
#: spans are dropped and counted rather than leaking memory.
DEFAULT_MAX_FINISHED = 100_000


class Span:
    """One named, timed region of work.

    Spans are context managers::

        with tracer.span("local_analysis", resource="cpu1") as span:
            ...
            span.set(tasks=3)

    An exception escaping the ``with`` block marks the span with
    ``status="error"`` and the exception repr before re-raising.
    """

    __slots__ = ("name", "attributes", "events", "span_id", "parent_id",
                 "thread_id", "worker", "request_id", "start", "end",
                 "status", "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int],
                 attributes: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = threading.get_ident()
        #: Worker lane for spans adopted from pool workers (``None`` for
        #: spans recorded in this process); see :meth:`Tracer.adopt`.
        self.worker: Optional[str] = None
        #: Request correlation id, stamped from the active
        #: :class:`repro.obs.context.TraceContext` (``None`` outside
        #: any request).
        self.request_id: Optional[str] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside the span."""
        self.events.append({"name": name,
                            "time": time.perf_counter(),
                            **attributes})

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock seconds between start and finish, if finished."""
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self) -> None:
        self._tracer._finish(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)
        self.finish()
        return False  # never swallow the exception

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.name} id={self.span_id} {state}>"


class Tracer:
    """Collects spans; keeps a per-thread stack of open spans.

    ``span()``/``start()`` push onto the calling thread's stack so
    nested spans automatically pick up their parent.  Finished spans are
    appended to a shared ring buffer guarded by a lock (the analysis
    engine is single-threaded today, but simulators and future sharded
    backends may not be); once ``max_finished`` spans are retained the
    oldest are dropped and counted in :attr:`dropped` (mirrored to the
    ``trace.spans_dropped`` counter), so unbounded sweeps cannot leak
    memory through the tracer.
    """

    def __init__(self, max_finished: int = DEFAULT_MAX_FINISHED):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.max_finished = max_finished
        self.finished: "Deque[Span]" = deque()
        #: Spans evicted from the ring buffer since the last reset.
        self.dropped = 0
        #: perf_counter origin for relative timestamps in exports.
        self.t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def start(self, name: str, **attributes: Any) -> Span:
        """Open a span (caller must ``finish()`` it, or use ``span()``)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self.current()
        parent_id = parent.span_id if parent is not None else None
        ctx = _context.current()
        if parent_id is None and ctx is not None:
            # Empty stack inside an active request: weld onto the
            # request's root span — this is how worker-thread span
            # trees stay contiguous with the serving edge.
            parent_id = ctx.root_span_id
        span = Span(self, name, span_id, parent_id, attributes)
        if ctx is not None:
            span.request_id = ctx.request_id
        elif parent is not None:
            span.request_id = parent.request_id
        self._stack().append(span)
        self._announce(span)
        return span

    def start_detached(self, name: str,
                       parent_id: Optional[int] = None,
                       ctx: Optional["_context.TraceContext"] = None,
                       **attributes: Any) -> Span:
        """Open a span *without* pushing it on any thread's stack.

        Detached spans are for regions whose start and finish happen on
        different threads (a serve request's root span starts on the
        event loop and finishes when the dispatcher resolves it); they
        never become an implicit parent, so nesting is explicit via
        *parent_id* or a :class:`~repro.obs.context.TraceContext`
        carrying their ``span_id``.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, name, span_id, parent_id, attributes)
        if ctx is None:
            ctx = _context.current()
        if ctx is not None:
            span.request_id = ctx.request_id
            if span.parent_id is None:
                span.parent_id = ctx.root_span_id
        self._announce(span)
        return span

    def _announce(self, span: Span) -> None:
        if BUS.active:
            event: Dict[str, Any] = {
                "type": "span_start", "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "thread_id": span.thread_id,
                "t": span.start}
            if span.request_id is not None:
                event["request_id"] = span.request_id
            BUS.publish(event)

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span for use as a context manager."""
        return self.start(name, **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the current span (dropped when no span is
        open — events only make sense inside a traced region)."""
        current = self.current()
        if current is not None:
            current.event(name, **attributes)
            if BUS.active:
                BUS.publish({"type": "span_point", "name": name,
                             "span_id": current.span_id,
                             "span_name": current.name,
                             "attributes": dict(attributes)})

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return  # double-finish is a no-op
        span.end = time.perf_counter()
        stack = self._stack()
        # Exception safety: pop every span opened after this one too, so
        # a missed finish() deeper down cannot corrupt the stack.  A
        # span that is not on *this* thread's stack (detached spans, or
        # a cross-thread finish) must leave the stack alone.
        if span in stack:
            while stack:
                popped = stack.pop()
                if popped is span:
                    break
        self._retain(span)
        if BUS.active:
            # Same record shape as span_to_dict (absolute times) plus
            # the envelope type, so a streamed JSONL trace is readable
            # by the existing read_jsonl/ConvergenceReport machinery.
            event: Dict[str, Any] = {
                "type": "span", "name": span.name,
                "span_id": span.span_id, "parent_id": span.parent_id,
                "thread_id": span.thread_id, "start": span.start,
                "end": span.end, "duration": span.duration,
                "status": span.status,
                "attributes": dict(span.attributes),
            }
            if span.error is not None:
                event["error"] = span.error
            if span.request_id is not None:
                event["request_id"] = span.request_id
            BUS.publish(event)

    def _retain(self, span: Span) -> None:
        """Append to the finished ring buffer, evicting beyond the cap."""
        dropped = 0
        with self._lock:
            self.finished.append(span)
            while (self.max_finished is not None
                    and len(self.finished) > self.max_finished):
                self.finished.popleft()
                self.dropped += 1
                dropped += 1
        if dropped:
            # Lazy import: repro.obs imports this module at its top
            # level, so reach the registry through the package only
            # when an eviction actually happens.
            import repro.obs as _obs
            _obs.metrics().counter("trace.spans_dropped").inc(dropped)

    def adopt(self, record: "Mapping[str, Any]",
              worker: Optional[str] = None) -> Span:
        """Fold a serialised span record from another process into this
        tracer's finished buffer.

        Pool workers ship their finished spans back through the
        ``JobResult.obs`` channel as plain dicts (absolute
        ``perf_counter`` times — comparable across processes on the
        same host, where the clock is system-wide monotonic).  The
        *worker* lane tag keeps their thread idents from colliding
        with the parent's in Chrome/Perfetto exports — under ``fork``
        every worker's main thread usually reports the *same* ident as
        the parent's.
        """
        span = Span(self, record.get("name", "?"),
                    record.get("span_id", -1), record.get("parent_id"),
                    record.get("attributes"))
        span.thread_id = record.get("thread_id", 0)
        span.worker = worker if worker is not None \
            else record.get("worker")
        span.request_id = record.get("request_id")
        span.start = record.get("start", 0.0)
        span.end = record.get("end", span.start)
        span.status = record.get("status", "ok")
        span.error = record.get("error")
        for ev in record.get("events", ()):
            span.events.append(dict(ev))
        self._retain(span)
        return span

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name."""
        with self._lock:
            snapshot = list(self.finished)
        if name is None:
            return snapshot
        return [s for s in snapshot if s.name == name]

    def reset(self) -> None:
        """Drop all finished spans and restart the clock origin."""
        with self._lock:
            self.finished.clear()
            self._next_id = 0
            self.dropped = 0
        self._local = threading.local()
        self.t0 = time.perf_counter()

    def __len__(self) -> int:
        with self._lock:
            return len(self.finished)
