"""Ethernet frame timing.

Wire time of one Ethernet frame includes the physical-layer overheads
that occupy the link: preamble + SFD (8 B), MAC header (14 B, +4 B with
a VLAN tag), payload (padded to 46 B / 42 B with VLAN), FCS (4 B), and
the inter-frame gap (12 B equivalent idle the port cannot use).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._errors import ModelError

PREAMBLE_SFD_BYTES = 8
MAC_HEADER_BYTES = 14
VLAN_TAG_BYTES = 4
FCS_BYTES = 4
IFG_BYTES = 12
MIN_PAYLOAD_BYTES = 46
MAX_PAYLOAD_BYTES = 1500


def frame_wire_bytes(payload_bytes: int, vlan: bool = True) -> int:
    """Total bytes of link occupancy for one frame (incl. IFG)."""
    if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ModelError(
            f"payload must be 0..{MAX_PAYLOAD_BYTES} B, got "
            f"{payload_bytes}")
    min_payload = MIN_PAYLOAD_BYTES - (VLAN_TAG_BYTES if vlan else 0)
    padded = max(payload_bytes, min_payload)
    header = MAC_HEADER_BYTES + (VLAN_TAG_BYTES if vlan else 0)
    return (PREAMBLE_SFD_BYTES + header + padded + FCS_BYTES
            + IFG_BYTES)


@dataclass(frozen=True)
class EthernetLink:
    """A link speed: bytes of wire occupancy → time.

    ``byte_time`` is the duration of one byte; e.g. 0.008 µs/B at
    100 Mbit/s with microsecond units, 0.0008 at 1 Gbit/s.
    """

    byte_time: float

    def __post_init__(self):
        if self.byte_time <= 0:
            raise ModelError("byte_time must be positive")

    @classmethod
    def mbps(cls, megabit_per_s: float,
             time_unit_us: bool = True) -> "EthernetLink":
        """Link from a Mbit/s rate (time unit = microseconds)."""
        if megabit_per_s <= 0:
            raise ModelError("rate must be positive")
        return cls(8.0 / megabit_per_s)

    def transmission_time(self, payload_bytes: int,
                          vlan: bool = True) -> float:
        return frame_wire_bytes(payload_bytes, vlan) * self.byte_time

    @property
    def max_frame_time(self) -> float:
        """Wire time of a maximum-size frame — the blocking term of
        strict-priority ports."""
        return self.transmission_time(MAX_PAYLOAD_BYTES)
