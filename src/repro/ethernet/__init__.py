"""Switched Ethernet substrate: frame timing, strict-priority ports."""

from .switch import Flow, SwitchedNetwork
from .timing import EthernetLink, frame_wire_bytes

__all__ = [
    "EthernetLink",
    "frame_wire_bytes",
    "Flow",
    "SwitchedNetwork",
]
