"""Switched Ethernet with strict-priority output ports.

A store-and-forward switch queues each frame at its *output port*; the
port arbitrates by strict priority and transmissions are non-preemptive,
so every output port is an SPNP-scheduled resource (the same analysis as
CAN, with the blocking term being one maximum-size lower-priority
frame).  A flow traversing several switches becomes a chain of port
"tasks" in the compositional system graph — output-model propagation
(Θ_τ, and the hierarchical inner update for packed streams) carries the
timing hop by hop.

:class:`SwitchedNetwork` is a small topology builder: declare ports,
then route flows along port paths; it installs one SPNP resource per
port and one task per (flow, hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .._errors import ModelError
from ..analysis.spnp import SPNPScheduler
from ..system.model import System
from .timing import EthernetLink


@dataclass
class Flow:
    """A unidirectional traffic stream through the network.

    Attributes
    ----------
    name:
        Flow name; hop tasks are named ``{name}@{port}``.
    source:
        Name of the system source (or producing port) injecting the
        stream.
    path:
        Output ports traversed, in order.
    payload_bytes:
        Frame payload (same at every hop — no fragmentation).
    priority:
        Strict priority class (smaller = higher) at every hop.
    """

    name: str
    source: str
    path: List[str]
    payload_bytes: int
    priority: int


class SwitchedNetwork:
    """Builder for strict-priority switched-Ethernet system models."""

    def __init__(self, name: str = "eth"):
        self.name = name
        self._ports: "Dict[str, EthernetLink]" = {}
        self._flows: "Dict[str, Flow]" = {}

    def add_port(self, name: str, link: EthernetLink) -> None:
        """Declare a switch output port with its link speed."""
        if name in self._ports:
            raise ModelError(f"duplicate port {name!r}")
        self._ports[name] = link

    def add_flow(self, flow: Flow) -> None:
        if flow.name in self._flows:
            raise ModelError(f"duplicate flow {flow.name!r}")
        if not flow.path:
            raise ModelError(f"flow {flow.name}: empty path")
        for port in flow.path:
            if port not in self._ports:
                raise ModelError(
                    f"flow {flow.name}: unknown port {port!r}")
        self._flows[flow.name] = flow

    # ------------------------------------------------------------------
    def install(self, system: System) -> "Dict[str, str]":
        """Create port resources and hop tasks on *system*.

        The flow sources must already exist in the system graph.
        Returns ``flow name -> final hop task name`` (connect receivers
        there).
        """
        for port, link in self._ports.items():
            system.add_resource(port, SPNPScheduler())

        sinks: "Dict[str, str]" = {}
        for flow in self._flows.values():
            upstream = flow.source
            for port in flow.path:
                link = self._ports[port]
                wire = link.transmission_time(flow.payload_bytes)
                task_name = f"{flow.name}@{port}"
                system.add_task(task_name, port, (wire, wire),
                                [upstream], priority=flow.priority)
                upstream = task_name
            sinks[flow.name] = upstream
        return sinks

    def hop_names(self, flow_name: str) -> List[str]:
        """Task names of a flow's hops, in path order."""
        flow = self._flows[flow_name]
        return [f"{flow.name}@{port}" for port in flow.path]
