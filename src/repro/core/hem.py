"""Hierarchical event models (paper Definitions 3–7).

A **hierarchical event stream** (Def. 3) results from combining n input
streams; it carries one *outer* event stream (the combined stream, e.g.
frame transmissions) and one *inner* event stream per embedded input
(e.g. the signals transported inside the frames).

The **hierarchical event model** (Def. 5) is the parameter tuple

    H = ( F_out, L, C )

with ``F_out`` the outer function tuple, ``L`` the list of inner function
tuples, and ``C`` the construction rule that produced the hierarchy.

Design note: :class:`HierarchicalEventModel` *is an* :class:`EventModel`
delegating its four characteristic functions to the outer stream.  This is
exactly the property the paper exploits in section 6 — "since HEMs can be
characterized by the four characteristic functions, similar to SEMs, the
different local scheduling analysis techniques can directly be reused".
Any local analysis in :mod:`repro.analysis` accepts a HEM transparently
and simply sees the outer stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.compile import (
    fingerprint,
    maybe_compile,
    register_fingerprint,
    register_structural_compile,
)


class ConstructionRule(ABC):
    """The rule ``C_Ω`` recorded inside a HEM (paper Def. 5).

    The rule identifies which hierarchical stream constructor built the
    model and carries whatever constructor state the *inner update
    functions* (Def. 7) need — e.g. the pack rule remembers which inner
    streams are triggering and which are pending.
    """

    #: Identifier used for inner-update dispatch and reporting.
    name: str = "abstract"

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description of the rule."""

    def fingerprint_key(self) -> tuple:
        """Canonical key of the rule for structural fingerprints
        (:mod:`repro.eventmodels.compile`).  Rules that carry constructor
        state the inner update functions read must override this so two
        hierarchies only share compiled curves when that state agrees."""
        return (self.name,)


class HierarchicalEventModel(EventModel):
    """H = (F_out, L, C): outer stream + inner streams + construction rule.

    Immutable: operations on hierarchical streams return new instances.

    Parameters
    ----------
    outer:
        Event model of the combined (outer) stream — frame transmissions
        in the paper's COM-layer application.
    inner:
        Mapping from inner-stream label to its event model.  Order is
        preserved; ``L(i)`` of the paper's Def. 10 is the i-th value.
    rule:
        The construction rule ``C_Ω``.
    """

    def __init__(self, outer: EventModel,
                 inner: "Dict[str, EventModel]",
                 rule: ConstructionRule,
                 name: str = "hem"):
        if not inner:
            raise ModelError("a hierarchical event model needs at least "
                             "one inner stream")
        self._outer = outer
        self._inner = dict(inner)
        self._rule = rule
        self.name = name

    # ------------------------------------------------------------------
    # the outer stream IS the stream, for any flat consumer
    # ------------------------------------------------------------------
    def delta_min(self, n: int) -> float:
        return self._outer.delta_min(n)

    def delta_plus(self, n: int) -> float:
        return self._outer.delta_plus(n)

    def eta_plus(self, dt: float) -> int:
        return self._outer.eta_plus(dt)

    def eta_min(self, dt: float) -> int:
        return self._outer.eta_min(dt)

    def delta_min_block(self, n_max: int) -> list:
        return self._outer.delta_min_block(n_max)

    def delta_plus_block(self, n_max: int) -> list:
        return self._outer.delta_plus_block(n_max)

    # ------------------------------------------------------------------
    # hierarchy accessors
    # ------------------------------------------------------------------
    @property
    def outer(self) -> EventModel:
        """F_out — the combined stream's event model."""
        return self._outer

    @property
    def rule(self) -> ConstructionRule:
        """C — the construction rule."""
        return self._rule

    @property
    def labels(self) -> Tuple[str, ...]:
        """Inner stream labels in construction order."""
        return tuple(self._inner)

    @property
    def inner_models(self) -> Tuple[EventModel, ...]:
        """L — the inner function tuples in construction order."""
        return tuple(self._inner.values())

    def inner(self, label: str) -> EventModel:
        """Event model of one embedded stream by label."""
        try:
            return self._inner[label]
        except KeyError:
            raise ModelError(
                f"no inner stream {label!r}; available: "
                f"{list(self._inner)}") from None

    def inner_by_index(self, i: int) -> EventModel:
        """``L(i)`` of the paper's Def. 10 (0-based here)."""
        try:
            return tuple(self._inner.values())[i]
        except IndexError:
            raise ModelError(
                f"inner index {i} out of range "
                f"(0..{len(self._inner) - 1})") from None

    def replace(self, outer: EventModel = None,
                inner: "Dict[str, EventModel]" = None,
                name: str = None) -> "HierarchicalEventModel":
        """Functional update — used by stream operations and inner
        update functions."""
        return HierarchicalEventModel(
            outer if outer is not None else self._outer,
            inner if inner is not None else self._inner,
            self._rule,
            name if name is not None else self.name)

    def __repr__(self) -> str:
        return (f"<HEM {self.name} outer={self._outer.name} "
                f"inner={list(self._inner)} rule={self._rule.name}>")


def is_hierarchical(model: EventModel) -> bool:
    """True if *model* carries an embedded stream hierarchy."""
    return isinstance(model, HierarchicalEventModel)


# ----------------------------------------------------------------------
# curve-compilation integration
# ----------------------------------------------------------------------
def _hem_fingerprint(model: HierarchicalEventModel):
    parts = [("rule",) + model.rule.fingerprint_key(),
             fingerprint(model.outer)]
    for label in model.labels:
        parts.append((label, fingerprint(model.inner(label))))
    out = ["hem"]
    for part in parts:
        if part is None or (len(part) == 2 and part[1] is None):
            return None
        out.append(part)
    return tuple(out)


def _hem_compile(model: HierarchicalEventModel, name):
    """Structural compile hook: compile the outer and every inner stream
    while preserving the hierarchy and its construction rule."""
    outer = maybe_compile(model.outer, name=f"{model.name}.outer")
    inner = {label: maybe_compile(model.inner(label), name=label)
             for label in model.labels}
    if outer is model.outer and all(inner[label] is model.inner(label)
                                    for label in model.labels):
        return model
    return model.replace(outer=outer, inner=inner)


register_fingerprint(HierarchicalEventModel, _hem_fingerprint)
register_structural_compile(HierarchicalEventModel, _hem_compile)
