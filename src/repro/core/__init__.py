"""The paper's primary contribution: hierarchical event models.

* :class:`HierarchicalEventModel` — ``H = (F_out, L, C)`` (Def. 5); acts
  as its outer stream toward any flat analysis.
* Constructors ``Ω`` (Def. 4/8): :func:`hsc_pack`, :func:`hsc_or`,
  :func:`hsc_and`.
* Inner update functions ``B`` (Def. 7/9) with a dispatch registry, and
  :func:`apply_operation` to run any flat stream operation hierarchically.
* Deconstructors ``Ψ`` (Def. 6/10): :func:`unpack`, :func:`unpack_signal`.
"""

from .constructors import (
    AndRule,
    OrRule,
    PackRule,
    PendingInnerModel,
    TransferProperty,
    hsc_and,
    hsc_or,
    hsc_pack,
)
from .deconstruct import (
    flatten,
    unpack,
    unpack_index,
    unpack_polled,
    unpack_signal,
)
from .hem import ConstructionRule, HierarchicalEventModel, is_hierarchical
from .nesting import depth, shift_hierarchy, unpack_deep, unpack_path
from .update import (
    BusyWindowOutput,
    InnerJitterSpacingModel,
    ShaperOperation,
    StreamOperation,
    apply_operation,
    register_inner_update,
)

__all__ = [
    "HierarchicalEventModel",
    "ConstructionRule",
    "is_hierarchical",
    "TransferProperty",
    "PackRule",
    "OrRule",
    "AndRule",
    "PendingInnerModel",
    "hsc_pack",
    "hsc_or",
    "hsc_and",
    "StreamOperation",
    "BusyWindowOutput",
    "ShaperOperation",
    "InnerJitterSpacingModel",
    "apply_operation",
    "register_inner_update",
    "unpack",
    "unpack_signal",
    "unpack_index",
    "unpack_polled",
    "flatten",
    "unpack_deep",
    "unpack_path",
    "shift_hierarchy",
    "depth",
]
