"""Nested stream hierarchies: hierarchies of hierarchies.

The paper generalises "the concept of a stream hierarchy to embed
different types of streams in a higher level structure".  Its evaluation
uses one level (signals in frames); this module provides the natural
multi-level extension a gateway needs: CAN frames — themselves
hierarchical streams carrying signals — re-packed into backbone
super-frames (e.g. segmented onto FlexRay/Ethernet containers).

Mechanics:

* :func:`hsc_pack` already accepts any :class:`EventModel` as an input —
  including a :class:`HierarchicalEventModel`, whose *outer* stream then
  drives the OR-combination.  What a plain pack loses is access to the
  nested inner streams after operations are applied.
* :func:`shift_hierarchy` applies the Definition 9 jitter/spacing shift
  *recursively*: the nested hierarchy travelled inside the super-frame,
  so every level of it is delayed and serialised identically.
* :func:`unpack_deep` flattens a nested hierarchy into
  ``"frame/signal"`` path labels, giving receivers the per-leaf streams.

The inner update functions registered by :mod:`repro.core.update` call
:func:`shift_hierarchy`, so nesting composes with the existing operation
dispatch without any new registration.
"""

from __future__ import annotations

from typing import Dict

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.compile import compile_or_cache
from .hem import HierarchicalEventModel, is_hierarchical

#: Separator in flattened path labels produced by :func:`unpack_deep`.
PATH_SEP = "/"


def shift_hierarchy(model: EventModel, jitter: float, spacing: float,
                    k: int, name_suffix: str = "'") -> EventModel:
    """Apply a Definition-9 style shift to a (possibly nested) stream.

    Flat model: returns an
    :class:`~repro.core.update.InnerJitterSpacingModel`.  Hierarchical
    model: shifts the outer stream and every inner stream (recursively),
    preserving the construction rule — the whole nested hierarchy
    experienced the same transport.
    """
    from .update import InnerJitterSpacingModel  # avoid import cycle

    if not is_hierarchical(model):
        return compile_or_cache(
            InnerJitterSpacingModel(model, jitter, spacing, k,
                                    name=f"{model.name}{name_suffix}"),
            name=f"{model.name}{name_suffix}")
    new_outer = shift_hierarchy(model.outer, jitter, spacing, k,
                                name_suffix)
    new_inner = {
        label: shift_hierarchy(model.inner(label), jitter, spacing, k,
                               name_suffix)
        for label in model.labels
    }
    return model.replace(outer=new_outer, inner=new_inner,
                         name=f"{model.name}{name_suffix}")


def depth(model: EventModel) -> int:
    """Nesting depth: 0 for flat streams, 1 for signals-in-frames, 2 for
    frames-in-super-frames, ..."""
    if not is_hierarchical(model):
        return 0
    return 1 + max(depth(inner) for inner in model.inner_models)


def unpack_deep(model: HierarchicalEventModel
                ) -> "Dict[str, EventModel]":
    """Flatten a nested hierarchy into leaf streams keyed by path.

    A signal ``S1`` inside frame ``F1`` inside super-frame ``B`` yields
    the key ``"F1/S1"`` when unpacking ``B`` (top-level labels are not
    prefixed with the super-frame's own name).  Intermediate hierarchies
    are descended into, not returned; use
    :func:`~repro.core.deconstruct.unpack` for the single-level view.
    """
    if not is_hierarchical(model):
        raise ModelError(f"expected a hierarchical model, got {model!r}")
    leaves: "Dict[str, EventModel]" = {}
    _collect(model, "", leaves)
    return leaves


def _collect(model: HierarchicalEventModel, prefix: str,
             out: "Dict[str, EventModel]") -> None:
    for label in model.labels:
        inner = model.inner(label)
        path = f"{prefix}{label}" if not prefix \
            else f"{prefix}{PATH_SEP}{label}"
        if is_hierarchical(inner):
            _collect(inner, path, out)
        else:
            out[path] = inner


def unpack_path(model: HierarchicalEventModel, path: str) -> EventModel:
    """Resolve one ``"frame/signal"`` path through a nested hierarchy."""
    current: EventModel = model
    for part in path.split(PATH_SEP):
        if not is_hierarchical(current):
            raise ModelError(
                f"path {path!r}: {part!r} descends into a flat stream")
        current = current.inner(part)
    return current
