"""Hierarchical event stream deconstructors (paper Definitions 6 and 10).

A deconstructor ``Ψ : H → Fⁿ`` extracts the updated inner event models
from a hierarchical stream.  For HEMs as defined here this "turns out very
simple" (paper section 5.3): the inner list already carries the updated
models, so ``Ψ_pa`` is a plain lookup — ``F_i = L(i)``.

The functions below add the ergonomics a tool needs on top of the lookup:
unpack everything, unpack one signal, or unpack with a receiver-side
filter (a receiver that polls a register instead of reacting to every
frame sees a subsampled stream).
"""

from __future__ import annotations

from typing import Dict

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.operations import DminShaper
from .hem import HierarchicalEventModel, is_hierarchical


def unpack(hem: HierarchicalEventModel) -> "Dict[str, EventModel]":
    """Ψ applied to all inner streams: label → updated event model."""
    _require_hem(hem)
    return {label: hem.inner(label) for label in hem.labels}


def unpack_signal(hem: HierarchicalEventModel, label: str) -> EventModel:
    """Ψ_pa for a single embedded stream (paper Def. 10: ``F_i = L(i)``)."""
    _require_hem(hem)
    return hem.inner(label)


def unpack_index(hem: HierarchicalEventModel, i: int) -> EventModel:
    """Positional variant of :func:`unpack_signal` — literally ``L(i)``."""
    _require_hem(hem)
    return hem.inner_by_index(i)


def unpack_polled(hem: HierarchicalEventModel, label: str,
                  poll_period: float) -> EventModel:
    """Inner stream as seen by a *polling* receiver.

    The paper's COM layer offers two receive modes: interrupt (each new
    register value activates the task — :func:`unpack_signal`) and
    polling (the task samples the register every ``poll_period``).  A
    polling receiver observes at most one activation per poll, i.e. the
    unpacked stream shaped to a minimum distance of ``poll_period``.
    """
    _require_hem(hem)
    if poll_period <= 0:
        raise ModelError("poll_period must be positive")
    inner = hem.inner(label)
    return DminShaper(inner, poll_period, name=f"polled({label})")


def flatten(hem: HierarchicalEventModel) -> EventModel:
    """Drop the hierarchy and keep only the outer stream — the *flat*
    baseline the paper compares against (every receiver task must then be
    assumed activated by every frame)."""
    _require_hem(hem)
    return hem.outer


def _require_hem(model: EventModel) -> None:
    if not is_hierarchical(model):
        raise ModelError(
            f"expected a hierarchical event model, got {model!r}; "
            f"flat streams have nothing to unpack")
