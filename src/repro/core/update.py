"""Stream operations on hierarchical streams and inner update functions.

Paper Definition 7: when a flat operation ``Θ`` (response-time output
calculation, shaping, ...) is applied to a hierarchical event stream, the
*outer* stream is transformed by the flat operation and the **inner update
function** ``B_{Θ, C}`` adapts every inner stream consistently with the
construction rule ``C``.

Definition 9 gives ``B_{Θ_τ, C_pa}`` for the busy-window output operation
applied to a packed stream (the frame crossing the CAN bus)::

    δ''⁻_i(n) = max( δ'⁻_i(n) - (r⁺ - r⁻) - (k - 1) * r⁻,  (n - 1) * r⁻ )
    δ''⁺_i(n) = δ'⁺_i(n) + (r⁺ - r⁻) + (k - 1) * r⁻

where ``k`` is the maximum number of outer events (before the operation)
that can be affected by the new minimum distance — i.e. the largest burst
of simultaneous frame activations that the transmission serialises, each
transmitted frame then being at least ``r⁻`` after its predecessor.

The same algebraic shape covers the d_min shaper (jitter ``D_max``,
spacing ``d``); :class:`InnerJitterSpacingModel` implements it once.

Dispatch is by (operation type, construction rule type) through a registry
so user code can register inner update functions for new combinations —
exactly the extension mechanism Definition 7 calls for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Tuple, Type

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.compile import (
    compile_or_cache,
    fingerprint,
    maybe_compile,
    register_fingerprint,
)
from ..eventmodels.operations import DminShaper, TaskOutputModel
from ..timebase import INF
from .constructors import AndRule, OrRule, PackRule
from .hem import ConstructionRule, HierarchicalEventModel


# ----------------------------------------------------------------------
# Operation objects (Definition 2 made concrete)
# ----------------------------------------------------------------------
class StreamOperation(ABC):
    """A flat stream operation Θ: maps one event model to one event model."""

    name: str = "op"

    @abstractmethod
    def apply_flat(self, model: EventModel) -> EventModel:
        """Transform a flat event model."""


class BusyWindowOutput(StreamOperation):
    """Θ_τ — output-model operation of an analysed task/frame with
    response times in [r_min, r_max]."""

    name = "theta_tau"

    def __init__(self, r_min: float, r_max: float):
        if r_min < 0 or r_max < r_min:
            raise ModelError(
                f"need 0 <= r_min <= r_max, got [{r_min}, {r_max}]")
        self.r_min = float(r_min)
        self.r_max = float(r_max)

    def apply_flat(self, model: EventModel) -> EventModel:
        return TaskOutputModel(model, self.r_min, self.r_max,
                               name=f"{model.name}'")

    def __repr__(self) -> str:
        return f"<Θτ r=[{self.r_min}, {self.r_max}]>"


class ShaperOperation(StreamOperation):
    """Greedy d_min shaping as a stream operation."""

    name = "shaper"

    def __init__(self, d: float):
        if d < 0:
            raise ModelError(f"shaper distance must be >= 0, got {d}")
        self.d = float(d)

    def apply_flat(self, model: EventModel) -> EventModel:
        return DminShaper(model, self.d, name=f"shaped({model.name})")


# ----------------------------------------------------------------------
# Inner update building block
# ----------------------------------------------------------------------
class InnerJitterSpacingModel(EventModel):
    """Inner stream after the outer stream passed a jitter+serialisation
    stage (Definition 9 generalised).

    Parameters
    ----------
    inner:
        The inner model before the operation (δ'_i).
    jitter:
        Response-time span of the operation (r⁺ - r⁻ for Θ_τ, D_max for a
        shaper).
    spacing:
        Minimum separation the operation enforces between consecutive
        outer events (r⁻ for Θ_τ, d for a shaper).
    k:
        Maximum number of simultaneous outer events before the operation
        (bursts that the operation serialises).
    """

    def __init__(self, inner: EventModel, jitter: float, spacing: float,
                 k: int, name: str = "inner'"):
        if jitter < 0 or spacing < 0:
            raise ModelError("jitter and spacing must be >= 0")
        if k < 1:
            raise ModelError(f"simultaneity k must be >= 1, got {k}")
        self._inner = inner
        self.jitter = float(jitter)
        self.spacing = float(spacing)
        self.k = int(k)
        self.name = name

    @property
    def total_shift(self) -> float:
        """(r⁺ - r⁻) + (k - 1) * r⁻ — the full distance reduction."""
        return self.jitter + (self.k - 1) * self.spacing

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max(self._inner.delta_min(n) - self.total_shift,
                   (n - 1) * self.spacing)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        dp = self._inner.delta_plus(n)
        if dp == INF:
            return INF
        return dp + self.total_shift

    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        src = self._inner.delta_min_block(n_max)
        shift = self.total_shift
        spacing = self.spacing
        return src[:2] + [max(src[n] - shift, (n - 1) * spacing)
                          for n in range(2, n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        src = self._inner.delta_plus_block(n_max)
        shift = self.total_shift
        return src[:2] + [INF if dp == INF else dp + shift
                          for dp in src[2:]]


def _ijs_fingerprint(model: InnerJitterSpacingModel):
    inner = fingerprint(model._inner)
    if inner is None:
        return None
    return ("ijs", model.jitter, model.spacing, model.k, inner)


register_fingerprint(InnerJitterSpacingModel, _ijs_fingerprint)


# ----------------------------------------------------------------------
# Inner update dispatch (Definition 7)
# ----------------------------------------------------------------------
InnerUpdateFn = Callable[[StreamOperation, HierarchicalEventModel],
                         Dict[str, EventModel]]

_REGISTRY: "Dict[Tuple[Type[StreamOperation], Type[ConstructionRule]], InnerUpdateFn]" = {}


def register_inner_update(op_type: Type[StreamOperation],
                          rule_type: Type[ConstructionRule],
                          fn: InnerUpdateFn) -> None:
    """Register an inner update function B_{Θ, C} for an
    (operation, construction rule) pair."""
    _REGISTRY[(op_type, rule_type)] = fn


def _lookup(op: StreamOperation, rule: ConstructionRule) -> InnerUpdateFn:
    for op_type in type(op).__mro__:
        for rule_type in type(rule).__mro__:
            fn = _REGISTRY.get((op_type, rule_type))
            if fn is not None:
                return fn
    raise ModelError(
        f"no inner update function registered for operation "
        f"{type(op).__name__} on construction rule {type(rule).__name__}")


def apply_operation(stream: EventModel,
                    op: StreamOperation) -> EventModel:
    """Apply a flat operation to a (possibly hierarchical) stream.

    Flat stream: the operation output, plain.  Hierarchical stream: the
    outer stream is transformed by the operation and all inner streams by
    the registered inner update function (paper's composition rule after
    Definition 6).
    """
    if not isinstance(stream, HierarchicalEventModel):
        return maybe_compile(op.apply_flat(stream),
                             name=f"{stream.name}'")
    update = _lookup(op, stream.rule)
    new_outer = compile_or_cache(op.apply_flat(stream.outer),
                                 name=f"{stream.name}.out'")
    new_inner = update(op, stream)
    return stream.replace(outer=new_outer, inner=new_inner,
                          name=f"{stream.name}'")


# ----------------------------------------------------------------------
# Concrete inner update functions
# ----------------------------------------------------------------------
def _inner_update_theta_pack(op: BusyWindowOutput,
                             hem: HierarchicalEventModel
                             ) -> "Dict[str, EventModel]":
    """B_{Θ_τ, C_pa} — paper Definition 9.

    Inner streams that are themselves hierarchical (nested packing, see
    :mod:`repro.core.nesting`) are shifted recursively: the whole nested
    hierarchy experienced the same transport.
    """
    from .nesting import shift_hierarchy  # late import: avoid cycle

    k = hem.outer.simultaneity()
    jitter = op.r_max - op.r_min
    return {label: shift_hierarchy(hem.inner(label), jitter, op.r_min, k)
            for label in hem.labels}


def _inner_update_shaper_pack(op: ShaperOperation,
                              hem: HierarchicalEventModel
                              ) -> "Dict[str, EventModel]":
    """Shaper counterpart of Definition 9: delay span = worst shaping
    delay, spacing = shaper distance."""
    from .nesting import shift_hierarchy  # late import: avoid cycle

    shaped = op.apply_flat(hem.outer)
    jitter = shaped.max_delay
    if jitter == INF:
        raise ModelError(
            "shaper is unstable for this outer stream (rate exceeds 1/d); "
            "inner streams cannot be bounded")
    k = hem.outer.simultaneity()
    return {label: shift_hierarchy(hem.inner(label), jitter, op.d, k)
            for label in hem.labels}


# Passthrough-style hierarchies (OR/AND): every inner event is an outer
# event, so the generalised Definition 9 applies unchanged.
register_inner_update(BusyWindowOutput, PackRule, _inner_update_theta_pack)
register_inner_update(BusyWindowOutput, OrRule, _inner_update_theta_pack)
register_inner_update(BusyWindowOutput, AndRule, _inner_update_theta_pack)
register_inner_update(ShaperOperation, PackRule, _inner_update_shaper_pack)
register_inner_update(ShaperOperation, OrRule, _inner_update_shaper_pack)
register_inner_update(ShaperOperation, AndRule, _inner_update_shaper_pack)
