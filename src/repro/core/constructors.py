"""Hierarchical stream constructors (paper Definitions 4 and 8).

A hierarchical stream constructor ``Ω : Fⁿ → H`` combines several event
streams into a hierarchical event stream.  For every flat stream
constructor there is a hierarchical counterpart whose outer stream equals
the flat constructor's output (paper's note after Def. 5):

* :func:`hsc_or` / :func:`hsc_and` — hierarchical OR/AND combination;
  inner streams pass through unchanged (each inner event *is* an outer
  event).

* :func:`hsc_pack` — the paper's ``Ω_pa`` (Def. 8), modelling the AUTOSAR
  COM layer's frame packing.  Given triggering and pending input streams
  (and an optional transmission timer):

  - outer stream = OR-join of all *triggering* streams and the timer
    (paper eqs. (3)/(4); "a timer is treated as an additional triggering
    signal");
  - triggering inner streams keep their bounds (eqs. (5)/(6)):
    every triggering signal immediately causes a frame;
  - pending inner streams (eqs. (7)/(8))::

        δ'⁻_i(n) = max( δ⁻_i(n) - δ⁺_out(2),  δ⁻_out(n) )
        δ'⁺_i(n) = ∞

    — the first of n pending signals may just miss a frame and wait up to
    the maximum frame distance δ⁺_out(2); each frame carries at most one
    new value of a pending signal, so n transported values also need at
    least n frames.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence, Tuple

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.compile import fingerprint, register_fingerprint
from ..eventmodels.curves import CachedModel
from ..eventmodels.operations import and_join, or_join
from ..timebase import INF
from .hem import ConstructionRule, HierarchicalEventModel


class TransferProperty(enum.Enum):
    """AUTOSAR signal transfer property (paper section 4)."""

    TRIGGERING = "triggering"
    PENDING = "pending"


class OrRule(ConstructionRule):
    """Construction rule of the hierarchical OR combination."""

    name = "or"

    def describe(self) -> str:
        return "hierarchical OR combination (inner streams pass through)"


class AndRule(ConstructionRule):
    """Construction rule of the hierarchical AND combination."""

    name = "and"

    def describe(self) -> str:
        return "hierarchical AND combination (inner streams pass through)"


class PackRule(ConstructionRule):
    """``C_Ω`` of the pack constructor: remembers transfer properties and
    the simultaneity of the outer stream at construction time (needed by
    the inner update function of Def. 9)."""

    name = "pack"

    def __init__(self, properties: "Dict[str, TransferProperty]",
                 has_timer: bool):
        self.properties = dict(properties)
        self.has_timer = has_timer

    def describe(self) -> str:
        trig = [k for k, v in self.properties.items()
                if v is TransferProperty.TRIGGERING]
        pend = [k for k, v in self.properties.items()
                if v is TransferProperty.PENDING]
        timer = " + timer" if self.has_timer else ""
        return f"pack(triggering={trig}{timer}, pending={pend})"

    def fingerprint_key(self) -> tuple:
        return (self.name, self.has_timer,
                tuple(sorted((k, v.value)
                             for k, v in self.properties.items())))


class PendingInnerModel(EventModel):
    """Inner event model of a pending signal after packing (eqs. (7)/(8)).

    Lazily evaluates against the signal's source model and the frame
    (outer) model so that later refinements of either propagate naturally
    when the HEM is rebuilt in a new global iteration.
    """

    def __init__(self, signal: EventModel, outer: EventModel,
                 name: str = "pending"):
        self._signal = signal
        self._outer = outer
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        gap = self._outer.delta_plus(2)
        candidate = self._signal.delta_min(n) - gap if gap != INF else 0.0
        return max(candidate, self._outer.delta_min(n))

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return INF

    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        sig = self._signal.delta_min_block(n_max)
        out = self._outer.delta_min_block(n_max)
        gap = self._outer.delta_plus(2)
        if gap == INF:
            return [0.0, 0.0] + out[2:]
        return sig[:2] + [max(sig[n] - gap, out[n])
                          for n in range(2, n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        return [0.0] * min(n_max + 1, 2) + [INF] * (n_max - 1)


def _pending_fingerprint(model: PendingInnerModel):
    signal = fingerprint(model._signal)
    outer = fingerprint(model._outer)
    if signal is None or outer is None:
        return None
    return ("pending", signal, outer)


register_fingerprint(PendingInnerModel, _pending_fingerprint)


def hsc_or(streams: "Dict[str, EventModel]",
           name: str = "hor") -> HierarchicalEventModel:
    """Hierarchical OR combination: outer = OR-join, inner pass through."""
    if not streams:
        raise ModelError("hsc_or needs at least one input stream")
    outer = or_join(list(streams.values()), name=f"{name}.out")
    return HierarchicalEventModel(outer, dict(streams), OrRule(), name=name)


def hsc_and(streams: "Dict[str, EventModel]",
            name: str = "hand") -> HierarchicalEventModel:
    """Hierarchical AND combination: outer = AND-join, inner pass through."""
    if not streams:
        raise ModelError("hsc_and needs at least one input stream")
    outer = and_join(list(streams.values()), name=f"{name}.out")
    return HierarchicalEventModel(outer, dict(streams), AndRule(), name=name)


def hsc_pack(signals: "Dict[str, Tuple[EventModel, TransferProperty]]",
             timer: Optional[EventModel] = None,
             name: str = "frame") -> HierarchicalEventModel:
    """The pack constructor ``Ω_pa`` (paper Definition 8).

    Parameters
    ----------
    signals:
        Mapping ``label -> (source event model, transfer property)`` for
        every signal packed into the frame.
    timer:
        Event model of the transmission timer, present for *periodic* and
        *mixed* frames; ``None`` for *direct* frames.
    name:
        Name of the resulting hierarchical stream (the frame).

    Raises
    ------
    ModelError:
        If no triggering signal and no timer exist — such a frame would
        never be transmitted, and the pending signals could never be
        delivered.
    """
    if not signals:
        raise ModelError("hsc_pack needs at least one signal")
    triggering = [em for em, prop in signals.values()
                  if prop is TransferProperty.TRIGGERING]
    if timer is not None:
        triggering.append(timer)
    if not triggering:
        raise ModelError(
            f"frame {name!r} has neither triggering signals nor a timer; "
            f"it would never be transmitted")

    outer = or_join(triggering, name=f"{name}.out")

    inner: "Dict[str, EventModel]" = {}
    for label, (em, prop) in signals.items():
        if prop is TransferProperty.TRIGGERING:
            # eqs. (5)/(6): the frame is sent immediately for every
            # triggering signal — the inner stream equals the source.
            inner[label] = em
        else:
            # eqs. (7)/(8).
            inner[label] = CachedModel(
                PendingInnerModel(em, outer, name=f"{label}@{name}"),
                name=f"{label}@{name}")

    rule = PackRule({label: prop for label, (_, prop) in signals.items()},
                    has_timer=timer is not None)
    return HierarchicalEventModel(outer, inner, rule, name=name)
