"""Batched busy-window kernels: vectorized fixed-point evaluation.

The scalar solvers (:mod:`spp`, :mod:`spnp`, :mod:`edf`,
:mod:`round_robin`, :mod:`tdma`) iterate one ``fixed_point`` per task
per activation count q, re-walking every interferer's ``eta_plus(w) *
c_max`` one python call at a time.  This module batches that work:

* **one joint vector iteration per resource** — every open busy-window
  chain (a task, or an EDF (task, candidate-offset) pair) contributes
  one lane to a shared window vector ``w``; each iteration evaluates
  every interferer's η⁺ over the whole vector at once
  (:class:`EtaTable`), applies per-lane coefficients/caps, and advances
  all lanes in lockstep, freezing lanes as they converge;
* **warm starts within a q-chain** — the converged q-window seeds the
  (q+1)-window iteration (``B(q) <= lfp(W_{q+1})`` because the workload
  is pointwise non-decreasing in q), guarded by a first-step overshoot
  check that falls back to the cold start.

Bit-identity contract
---------------------
Every lane reproduces the *exact* float sequence the scalar solver
would compute: identical start expression, identical per-interferer
accumulation order (inactive interferers contribute an exact ``+0.0``),
identical convergence/limit tests in the same order.  η⁺ vectorization
dispatches per model type:

* :class:`~repro.eventmodels.standard.StandardEventModel` — elementwise
  replica of the closed form (same IEEE-754 ops);
* compiled / generic-η⁺ models — ``bisect``/``searchsorted`` over the
  exact δ⁻ sample table, which *is* the generic pseudo-inverse;
* models that override ``eta_plus`` (superposition OR-join, hierarchical
  outer models, degraded envelopes) — per-lane scalar calls.

numpy is an *optional* accelerator (``pip install repro[fast]``); the
pure-python fallback is bit-identical and always available.  Kill
switches mirror ``REPRO_COMPILE``: ``REPRO_VECTOR=0`` (or
``configure(vectorized=False)``) routes the solvers back to their
scalar loops, ``REPRO_VECTOR_NUMPY=0`` forces the python backend,
``REPRO_WARM_START=0`` disables q-chain warm starts.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from .._errors import NotSchedulableError, UnboundedStreamError
from ..eventmodels.base import MAX_EVENTS, EventModel, NullEventModel
from ..eventmodels.compile import CompiledEventModel
from ..eventmodels.standard import StandardEventModel
from ..timebase import EPS, time_eq
from .busy_window import (
    MAX_ACTIVATIONS,
    MAX_FIXED_POINT_ITER,
    _WINDOW_BLOWUP,
)

try:  # optional accelerator (the [fast] extra); absence is fully supported
    import numpy as _np
except Exception:  # pragma: no cover - exercised via REPRO_VECTOR_NUMPY=0
    _np = None


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: Master kill switch: route solvers through the batched kernels.
enabled = _env_flag("REPRO_VECTOR", True)

#: Use numpy for the vector lanes when importable.
numpy_enabled = _env_flag("REPRO_VECTOR_NUMPY", True)

#: Seed B(q+1) iterations from the converged B(q) window.
warm_start = _env_flag("REPRO_WARM_START", True)

#: Below this estimated lane count a resource's batched run loses to the
#: scalar loops on pure bookkeeping (table/plan/chain setup dominates a
#: handful of short fixed points); solvers fall back to their scalar
#: path — bit-identical either way, so this is purely a speed knob.
min_batch_lanes = 16

#: Below this resource utilization busy windows close after one or two
#: activations (length ~ C/(1-U)), so per-round vector setup can never
#: amortize no matter how many lanes there are; solvers stay scalar.
min_batch_load = 0.5

#: Rolling counters surfaced by ``stats()`` (and /healthz).
_STATS = {"batches": 0, "lanes": 0, "iterations": 0}


def configure(vectorized: Optional[bool] = None,
              numpy: Optional[bool] = None,
              warm_starts: Optional[bool] = None,
              min_batch: Optional[int] = None,
              min_load: Optional[float] = None) -> None:
    """Runtime switches, mirroring :func:`repro.eventmodels.compile.configure`."""
    global enabled, numpy_enabled, warm_start, min_batch_lanes, min_batch_load
    if vectorized is not None:
        enabled = bool(vectorized)
    if numpy is not None:
        numpy_enabled = bool(numpy)
    if warm_starts is not None:
        warm_start = bool(warm_starts)
    if min_batch is not None:
        min_batch_lanes = int(min_batch)
    if min_load is not None:
        min_batch_load = float(min_load)


def active() -> bool:
    """True when solvers should route through the batched kernels."""
    return enabled


def batch_worthwhile(estimated_lanes: int,
                     load: Optional[float] = None) -> bool:
    """True when a resource with ~this many busy-window chains at ~this
    utilization should take the batched path.

    Both thresholds (:data:`min_batch_lanes`, :data:`min_batch_load`)
    are pure speed heuristics — either path is bit-identical.  Setting
    ``min_batch_lanes`` to 0 (``configure(min_batch=0)``) forces the
    batched path regardless of size or load, which is how the tests
    exercise the kernels on deliberately tiny systems.
    """
    if not enabled:
        return False
    if min_batch_lanes <= 0:
        return True
    if estimated_lanes < min_batch_lanes:
        return False
    return load is None or load >= min_batch_load


def use_numpy() -> bool:
    return _np is not None and numpy_enabled


def backend() -> str:
    return "numpy" if use_numpy() else "python"


def stats() -> Dict[str, Any]:
    """Snapshot of kernel activity for /healthz and ``repro top``."""
    snap: Dict[str, Any] = dict(_STATS)
    snap["enabled"] = enabled
    snap["backend"] = backend()
    snap["warm_start"] = warm_start
    snap["min_batch_lanes"] = min_batch_lanes
    snap["min_batch_load"] = min_batch_load
    return snap


# ----------------------------------------------------------------------
# vector η⁺ evaluation
# ----------------------------------------------------------------------
_KIND_NULL = 0
_KIND_SEM = 1
_KIND_TABLE = 2
_KIND_SCALAR = 3

#: Initial δ⁻ sample count for table-backed models (grows geometrically).
_TABLE_SEED = 32


class EtaTable:
    """Vector η⁺ for one event model, bit-identical to ``model.eta_plus``.

    ``table``-kind models (compiled curves and any model using the
    generic search in :meth:`EventModel.eta_plus`) are evaluated by
    bisection over the exact δ⁻ sample prefix: the generic η⁺ *is*
    "largest n with δ⁻(n) < dt" (min 1 for dt > 0), which is
    ``bisect_left(δ⁻ samples, dt) - 1`` — no approximation involved.
    Models that override ``eta_plus`` fall back to per-lane calls.
    """

    __slots__ = ("model", "kind", "_dmin", "_arr", "_p", "_j", "_d")

    def __init__(self, model: EventModel):
        self.model = model
        self._dmin: Optional[List[float]] = None
        self._arr = None
        if isinstance(model, NullEventModel):
            self.kind = _KIND_NULL
        elif isinstance(model, StandardEventModel):
            self.kind = _KIND_SEM
            self._p = model.period
            self._j = model.jitter
            self._d = model.d_min
        elif (isinstance(model, CompiledEventModel)
              or type(model).eta_plus is EventModel.eta_plus):
            self.kind = _KIND_TABLE
            self._dmin = list(model.delta_min_block(_TABLE_SEED))
        else:
            self.kind = _KIND_SCALAR

    # -- table growth ---------------------------------------------------
    def _ensure(self, hi: float) -> None:
        dmin = self._dmin
        while dmin[-1] < hi:
            top = len(dmin) - 1
            if top > MAX_EVENTS:
                raise UnboundedStreamError(
                    f"eta_plus({hi!r}) exceeds {MAX_EVENTS} events for "
                    f"{self.model!r}; the stream has no effective rate limit")
            dmin = list(self.model.delta_min_block(2 * top))
            self._dmin = dmin
            self._arr = None

    # -- evaluation -----------------------------------------------------
    def eta_many(self, xs: Sequence[float]) -> Sequence:
        """η⁺ of every element of *xs* (python backend: exact ints)."""
        kind = self.kind
        if kind == _KIND_NULL:
            return [0] * len(xs)
        if kind == _KIND_SCALAR or kind == _KIND_SEM:
            # SEM closed form is already a handful of float ops; calling
            # the model is both exact-by-definition and fast.
            ep = self.model.eta_plus
            return [ep(x) for x in xs]
        self._ensure(max(xs))
        dmin = self._dmin
        out = []
        for x in xs:
            if x <= 0:
                out.append(0)
            else:
                n = bisect_left(dmin, x) - 1
                out.append(n if n > 1 else 1)
        return out

    def eta_one(self, x: float):
        """Scalar η⁺ — the python backend's per-lane evaluation."""
        kind = self.kind
        if kind == _KIND_NULL:
            return 0
        if kind == _KIND_SCALAR or kind == _KIND_SEM:
            return self.model.eta_plus(x)
        if x <= 0:
            return 0
        if self._dmin[-1] < x:
            self._ensure(x)
        n = bisect_left(self._dmin, x) - 1
        return n if n > 1 else 1

    def eta_many_np(self, xs):  # xs: float64 ndarray
        """numpy twin of :meth:`eta_many`; returns float64 exact counts."""
        kind = self.kind
        if kind == _KIND_NULL:
            return _np.zeros(len(xs))
        if kind == _KIND_SCALAR:
            ep = self.model.eta_plus
            return _np.array([float(ep(float(x))) for x in xs])
        if kind == _KIND_SEM:
            # Elementwise replica of StandardEventModel.eta_plus: the
            # same IEEE-754 divisions/floors, so counts match bit-wise.
            r1 = (xs + self._j) / self._p
            f1 = _np.floor(r1)
            bound = _np.where(f1 == r1, f1 - 1.0, f1)
            if self._d > 0:
                r2 = xs / self._d
                f2 = _np.floor(r2)
                b2 = _np.where(f2 == r2, f2 - 1.0, f2)
                bound = _np.minimum(bound, b2)
            res = _np.maximum(1.0, bound + 1.0)
            return _np.where(xs <= 0.0, 0.0, res)
        mx = float(xs.max()) if len(xs) else 0.0
        self._ensure(mx)
        if self._arr is None:
            self._arr = _np.asarray(self._dmin, dtype=float)
        ins = _np.searchsorted(self._arr, xs, side="left") - 1
        res = _np.maximum(1, ins).astype(float)
        return _np.where(xs <= 0.0, 0.0, res)


def tables_for(specs: Sequence) -> List[EtaTable]:
    """One :class:`EtaTable` per task spec (shared across a resource)."""
    return [EtaTable(t.event_model) for t in specs]


# ----------------------------------------------------------------------
# per-round workload assembly
# ----------------------------------------------------------------------
class Element:
    """One lane of a joint vector fixed point: (chain, q) at one round.

    ``coeffs[j]`` is interferer j's C⁺ for this lane (``0.0`` = not an
    interferer: the lane then accumulates an exact ``+0.0``, preserving
    the scalar's per-interferer float addition order).  ``count_caps``
    (EDF deadline caps) bound the activation count; ``product_caps``
    (round-robin ``rounds * slot_j``) bound the product.
    """

    __slots__ = ("start", "base", "coeffs", "count_caps", "product_caps",
                 "cmax")

    def __init__(self, start: float, base: float,
                 coeffs: Sequence[float],
                 count_caps: Optional[Sequence[Optional[float]]] = None,
                 product_caps: Optional[Sequence[Optional[float]]] = None,
                 cmax: float = 0.0):
        self.start = start
        self.base = base
        self.coeffs = coeffs
        self.count_caps = count_caps
        self.product_caps = product_caps
        self.cmax = cmax


class TailSpec:
    """CAN error-model tail: ``overhead(w + c_max_lane)`` appended after
    the interferer sum (SPNP)."""

    __slots__ = ("error_model", "burst", "rate", "recovery")

    def __init__(self, error_model):
        self.error_model = error_model
        self.burst = error_model.burst_errors
        self.rate = error_model.error_rate
        self.recovery = error_model.recovery_time


class _TermPlan:
    """Per-batch numpy preparation shared by every round of a resource.

    Groups the interferer terms by :class:`EtaTable` kind so one
    iteration touches numpy a *constant* number of times instead of a
    few ufuncs per term: all StandardEventModel columns evaluate as one
    2-D closed form, table columns as one ``searchsorted`` each, and
    the accumulation runs as a single row-``cumsum`` (sequential adds —
    the exact float association the scalar loop performs).  Coefficient
    rows are cached per identity of a chain's coeff list, which the
    solvers keep stable across rounds.
    """

    __slots__ = ("tables", "sem_cols", "table_cols", "scalar_cols",
                 "sem_p", "sem_j", "sem_d", "sem_has_d", "_rows", "_py")

    def __init__(self, tables: Sequence[EtaTable]):
        self.tables = tables
        self.sem_cols = [j for j, t in enumerate(tables)
                         if t.kind == _KIND_SEM]
        self.table_cols = [j for j, t in enumerate(tables)
                           if t.kind == _KIND_TABLE]
        self.scalar_cols = [j for j, t in enumerate(tables)
                            if t.kind == _KIND_SCALAR]
        if self.sem_cols and _np is not None:
            self.sem_p = _np.asarray([tables[j]._p for j in self.sem_cols])
            self.sem_j = _np.asarray([tables[j]._j for j in self.sem_cols])
            d = _np.asarray([tables[j]._d for j in self.sem_cols])
            self.sem_has_d = d > 0
            # Guard the masked columns against divide-by-zero; their
            # quotient is discarded by the mask below.
            self.sem_d = _np.where(self.sem_has_d, d, 1.0)
        self._rows: Dict[int, Tuple[Any, Any]] = {}
        self._py: Dict[int, Tuple[Any, Any]] = {}

    def coeff_row(self, coeffs: Sequence[float]):
        key = id(coeffs)
        hit = self._rows.get(key)
        # The keep-alive reference in the cache makes the id() key
        # stable; the identity check guards against a recycled id from
        # a chain that built fresh lists each round.
        if hit is not None and hit[0] is coeffs:
            return hit[1]
        row = _np.asarray(coeffs, dtype=float)
        self._rows[key] = (coeffs, row)
        return row

    def py_terms(self, coeffs: Sequence[float]):
        """Cached python-backend term list for a *capless* lane.

        One ``(bound η⁺, coefficient, None, None)`` tuple per nonzero
        non-null term; cache keyed like :meth:`coeff_row`.  Lanes with
        per-round caps (EDF deadline caps, RR product caps) cannot share
        and are built fresh by the caller.
        """
        key = id(coeffs)
        hit = self._py.get(key)
        if hit is not None and hit[0] is coeffs:
            return hit[1]
        terms = []
        for j, cj in enumerate(coeffs):
            if cj == 0.0:
                continue
            tab = self.tables[j]
            if tab.kind == _KIND_NULL:
                continue
            fn = (tab.eta_one if tab.kind == _KIND_TABLE
                  else tab.model.eta_plus)
            terms.append((fn, cj))
        self._py[key] = (coeffs, terms)
        return terms

    def counts_matrix(self, xs, out, sem_pos, sem_out, table_cols,
                      scalar_cols):
        """Fill ``out[:, j]`` with η⁺_j(xs) for the *used* terms only.

        ``sem_pos`` indexes into the stacked SEM parameter arrays,
        ``sem_out`` holds the matching output columns; untouched columns
        are the caller's responsibility (it zero-fills them).
        """
        if sem_pos:
            whole = len(sem_pos) == len(self.sem_cols)
            p = self.sem_p if whole else self.sem_p[sem_pos]
            jit = self.sem_j if whole else self.sem_j[sem_pos]
            has_d = self.sem_has_d if whole else self.sem_has_d[sem_pos]
            dt = xs[:, None]
            # Elementwise replica of StandardEventModel.eta_plus: the
            # same IEEE-754 divisions/floors, so counts match bit-wise.
            r1 = (dt + jit) / p
            f1 = _np.floor(r1)
            bound = _np.where(f1 == r1, f1 - 1.0, f1)
            if has_d.any():
                d = self.sem_d if whole else self.sem_d[sem_pos]
                r2 = dt / d
                f2 = _np.floor(r2)
                b2 = _np.where(f2 == r2, f2 - 1.0, f2)
                bound = _np.where(has_d, _np.minimum(bound, b2), bound)
            res = _np.maximum(1.0, bound + 1.0)
            out[:, sem_out] = _np.where(dt <= 0.0, 0.0, res)
        for j in table_cols:
            out[:, j] = self.tables[j].eta_many_np(xs)
        for j in scalar_cols:
            ep = self.tables[j].model.eta_plus
            out[:, j] = [float(ep(float(x))) for x in xs]


#: Below this lane count the per-iteration numpy dispatch overhead beats
#: its vector win; such rounds run the (equally exact) python backend.
_NP_MIN_LANES = 4


def _make_workload(elements: Sequence[Element], tables: Sequence[EtaTable],
                   shift: float, tail: Optional[TailSpec],
                   plan: "Optional[_TermPlan]" = None):
    """Build ``eval_fn(ws_active, active_idx) -> next windows``.

    Caps/coefficients are constant across the iterations of one round,
    so the numpy path bakes them into matrices once here (coefficient
    rows come from the per-batch *plan* cache).  Narrow rounds (fewer
    than ``_NP_MIN_LANES`` lanes — e.g. the last open chain of a
    resource grinding through its tail activations) always use the
    python backend: both backends are bit-identical to the scalar
    solvers, so the choice is purely a speed knob.
    """
    nt = len(tables)
    if use_numpy() and nt and len(elements) >= _NP_MIN_LANES:
        if plan is None:
            plan = _TermPlan(tables)
        bases_a = _np.asarray([el.base for el in elements])
        coeff_m = _np.stack([plan.coeff_row(el.coeffs) for el in elements])
        ccaps_m = None
        if any(el.count_caps is not None for el in elements):
            ccaps_m = _np.asarray(
                [[_np.inf if el.count_caps is None
                  or el.count_caps[j] is None else float(el.count_caps[j])
                  for j in range(nt)] for el in elements])
        pcaps_m = None
        if any(el.product_caps is not None for el in elements):
            pcaps_m = _np.asarray(
                [[_np.inf if el.product_caps is None
                  or el.product_caps[j] is None
                  else float(el.product_caps[j])
                  for j in range(nt)] for el in elements])
        cmax_a = _np.asarray([el.cmax for el in elements]) if tail else None
        # A column whose coefficient is zero in every lane contributes
        # an exact +0.0 everywhere — skip its η⁺ evaluation entirely,
        # matching the python backend (and the scalar solvers, which
        # never evaluate a non-interferer's model).
        used = coeff_m.any(axis=0)
        sem_pos = [k for k, j in enumerate(plan.sem_cols) if used[j]]
        sem_out = [plan.sem_cols[k] for k in sem_pos]
        table_cols = [j for j in plan.table_cols if used[j]]
        scalar_cols = [j for j in plan.scalar_cols if used[j]]
        live = set(sem_out) | set(table_cols) | set(scalar_cols)
        dead_cols = [j for j in range(nt) if j not in live]

        def eval_np(ws: Sequence[float], idxs: Sequence[int]) -> List[float]:
            w = _np.asarray(ws)
            sel = _np.asarray(idxs, dtype=_np.intp)
            a = len(idxs)
            xs = w if shift == 0.0 else w + shift
            # One (lane x term) counts matrix per iteration, then one
            # sequential row-cumsum: column 0 carries the base, so the
            # running sum associates exactly like the scalar loop's
            # ``acc = base; acc += v_j`` (zero-coeff terms add an exact
            # +0.0, which is identity for the positive partial sums).
            full = _np.empty((a, nt + 1))
            full[:, 0] = bases_a[sel]
            counts = full[:, 1:]
            plan.counts_matrix(xs, counts, sem_pos, sem_out, table_cols,
                               scalar_cols)
            if dead_cols:
                counts[:, dead_cols] = 0.0
            if ccaps_m is not None:
                _np.minimum(counts, ccaps_m[sel], out=counts)
            counts *= coeff_m[sel]
            if pcaps_m is not None:
                _np.minimum(counts, pcaps_m[sel], out=counts)
            acc = _np.cumsum(full, axis=1)[:, -1]
            if tail is not None:
                win = w + cmax_a[sel]
                over = (tail.burst + _np.ceil(win * tail.rate)) \
                    * tail.recovery
                acc += _np.where(win <= 0.0, tail.burst * tail.recovery,
                                 over)
            return acc.tolist()

        return eval_np

    # Python backend: per-lane nonzero-term lists built once per round
    # (bound η⁺ methods, caps inlined), so each iteration is a tight
    # loop over actual interferers — the scalar solvers' own shape.
    # Skipping a zero-coefficient (or null-model) term matches the
    # scalar sum exactly: non-interferers are never visited, and a null
    # model's contribution is an exact +0.0.
    if plan is None:
        plan = _TermPlan(tables)
    per_lane = []
    for el in elements:
        ccaps = el.count_caps
        pcaps = el.product_caps
        if ccaps is None and pcaps is None:
            # Capless lanes (SPP/SPNP) share a cached 2-tuple term list;
            # their inner loop is a bare ``η⁺(x) * C`` accumulation.
            per_lane.append((el.base, plan.py_terms(el.coeffs), el.cmax,
                             True))
        else:
            terms = []
            for j, cj in enumerate(el.coeffs):
                if cj == 0.0:
                    continue
                tab = tables[j]
                if tab.kind == _KIND_NULL:
                    continue
                # Table-kind models need the growth-guarded wrapper; the
                # others dispatch straight to the model (as scalar does).
                fn = (tab.eta_one if tab.kind == _KIND_TABLE
                      else tab.model.eta_plus)
                terms.append((fn, cj,
                              None if ccaps is None else ccaps[j],
                              None if pcaps is None else pcaps[j]))
            per_lane.append((el.base, terms, el.cmax, False))
    overhead = tail.error_model.overhead if tail is not None else None

    def eval_py(ws: Sequence[float], idxs: Sequence[int]) -> List[float]:
        out = []
        for k, i in enumerate(idxs):
            base, terms, cmax, capless = per_lane[i]
            x = ws[k] + shift if shift != 0.0 else ws[k]
            acc = base
            if capless:
                for fn, cj in terms:
                    acc += fn(x) * cj
            else:
                for fn, cj, cap, pcap in terms:
                    cnt = fn(x)
                    if cap is not None and cap < cnt:
                        cnt = cap
                    v = cnt * cj
                    if pcap is not None and pcap < v:
                        v = pcap
                    acc += v
            if overhead is not None:
                acc += overhead(ws[k] + cmax)
            out.append(acc)
        return out

    return eval_py


# ----------------------------------------------------------------------
# joint vector fixed point
# ----------------------------------------------------------------------
def solve_round(starts: Sequence[float], hints: Sequence[Optional[float]],
                eval_fn: Callable[[Sequence[float], Sequence[int]],
                                  List[float]],
                contexts: Sequence[str], task_names: Sequence[str],
                resource_name: Optional[str],
                limit: float = _WINDOW_BLOWUP,
                ) -> Tuple[List[Optional[float]],
                           List[Optional[NotSchedulableError]],
                           List[int]]:
    """Jointly iterate every lane to its least fixed point.

    Each lane reproduces the scalar :func:`fixed_point` semantics
    (including the warm-start overshoot guard); converged and failed
    lanes are frozen out of subsequent evaluations.  Errors are
    *recorded*, not raised — the chain driver decides which one the
    scalar path would have hit first.
    """
    n = len(starts)
    ws = list(starts)
    guard = [False] * n
    for i, h in enumerate(hints):
        if h is not None and h > ws[i]:
            ws[i] = h
            guard[i] = True
    results: List[Optional[float]] = [None] * n
    errors: List[Optional[NotSchedulableError]] = [None] * n
    steps = [0] * n
    active = list(range(n))
    _STATS["batches"] += 1
    _STATS["lanes"] += n
    for step in range(1, MAX_FIXED_POINT_ITER + 1):
        if not active:
            break
        _STATS["iterations"] += 1
        nxt = eval_fn([ws[i] for i in active], active)
        still = []
        for i, w_next in zip(active, nxt):
            w = ws[i]
            if w_next < w - EPS:
                if guard[i]:
                    # Stale warm-start hint overshot the fixed point:
                    # restart this lane from its cold start.
                    ws[i] = starts[i]
                    guard[i] = False
                    still.append(i)
                    continue
                errors[i] = NotSchedulableError(
                    f"{contexts[i]}: workload function not monotone "
                    f"({w_next} < {w})", resource=resource_name,
                    task=task_names[i],
                    context={"reason": "non_monotone_workload"})
                continue
            guard[i] = False
            if time_eq(w_next, w):
                results[i] = w_next
                steps[i] = step
                continue
            if w_next > limit:
                errors[i] = NotSchedulableError(
                    f"{contexts[i]}: busy window exceeds {limit}; resource "
                    f"overloaded", resource=resource_name,
                    task=task_names[i],
                    context={"reason": "busy_window_blowup",
                             "window": w_next, "limit": limit})
                continue
            ws[i] = w_next
            still.append(i)
        active = still
    for i in active:
        errors[i] = NotSchedulableError(
            f"{contexts[i]}: no fixed point within {MAX_FIXED_POINT_ITER} "
            f"iterations", resource=resource_name, task=task_names[i],
            context={"reason": "fixed_point_budget",
                     "iterations": MAX_FIXED_POINT_ITER})
    if _obs.enabled:
        registry = _obs.metrics()
        registry.counter("kernel.batches").inc()
        registry.counter("kernels.vector_lanes").inc(n)
        registry.histogram("kernel.batch_lanes").observe(n)
        converged = registry.counter("busy_window.fixed_point_calls")
        it_hist = registry.histogram("busy_window.fixed_point_iterations")
        for i in range(n):
            if results[i] is not None:
                converged.inc()
                it_hist.observe(steps[i])
    return results, errors, steps


# ----------------------------------------------------------------------
# chain driver (the batched multi_activation_loop)
# ----------------------------------------------------------------------
class Chain:
    """One busy-window q-sequence: a task, or an EDF (task, offset) pair.

    Parameters mirror the pieces the scalar loop composes per task:
    *element(q)* supplies the workload lane, *busy(q, w)* maps the
    fixed-point value to the busy time (SPNP adds ``c_max``),
    *closes(q, bq)* is the window-closing predicate (default: next
    activation arrives after the window drains), *direct(q)* bypasses
    the fixed point entirely (TDMA's closed-form supply inverse).
    """

    __slots__ = ("name", "em", "context", "element", "busy", "closes",
                 "direct", "r_max", "busy_times", "q_max", "error", "hint",
                 "done")

    def __init__(self, name: str, em: EventModel,
                 context: Callable[[int], str],
                 element: Optional[Callable[[int], Element]] = None,
                 busy: Optional[Callable[[int, float], float]] = None,
                 closes: Optional[Callable[[int, float], bool]] = None,
                 direct: Optional[Callable[[int], float]] = None):
        self.name = name
        self.em = em
        self.context = context
        self.element = element
        self.busy = busy
        self.closes = closes
        self.direct = direct
        self.r_max = 0.0
        self.busy_times: List[float] = []
        self.q_max = 0
        self.error: Optional[NotSchedulableError] = None
        self.hint: Optional[float] = None
        self.done = False


def run_chains(chains: Sequence[Chain], tables: Sequence[EtaTable],
               resource_name: str, shift: float = 0.0,
               tail: Optional[TailSpec] = None) -> None:
    """Drive every chain's q-loop jointly, one round per activation count.

    Round q advances all still-open chains' q-th windows in one vector
    fixed point.  Chains record ``(r_max, busy_times, q_max)`` in place.
    Error ordering matches the scalar path: all chains run to a terminal
    state, then the first errored chain *in sequence order* raises —
    exactly the error the sequential solver would have surfaced first
    (it, too, finishes every earlier chain before touching a later one).
    """
    open_chains = [c for c in chains if not c.done]
    plan = _TermPlan(tables) if tables else None
    q = 0
    while open_chains:
        q += 1
        round_chains = []
        elems: List[Element] = []
        for c in open_chains:
            if c.direct is not None:
                try:
                    w = c.direct(q)
                except NotSchedulableError as exc:
                    c.error = exc
                    c.done = True
                    continue
                _finish_window(c, q, w, resource_name)
                continue
            round_chains.append(c)
            elems.append(c.element(q))
        if round_chains:
            eval_fn = _make_workload(elems, tables, shift, tail, plan)
            hints = ([c.hint for c in round_chains] if warm_start
                     else [None] * len(round_chains))
            values, errors, _steps = solve_round(
                [el.start for el in elems], hints, eval_fn,
                [c.context(q) for c in round_chains],
                [c.name for c in round_chains], resource_name)
            for c, w, err in zip(round_chains, values, errors):
                if err is not None:
                    c.error = err
                    c.done = True
                    continue
                c.hint = w
                _finish_window(c, q, w, resource_name)
        open_chains = [c for c in open_chains if not c.done]
    if _obs.enabled:
        registry = _obs.metrics()
        windows = registry.counter("busy_window.windows")
        act_hist = registry.histogram("busy_window.activations")
        for c in chains:
            if c.error is None:
                windows.inc()
                act_hist.observe(c.q_max)
    for c in chains:
        if c.error is not None:
            raise c.error


def _finish_window(c: Chain, q: int, w: float,
                   resource_name: Optional[str] = None) -> None:
    bq = c.busy(q, w) if c.busy is not None else w
    c.busy_times.append(bq)
    response = bq - c.em.delta_min(q)
    if response > c.r_max:
        c.r_max = response
    if c.closes is not None:
        closed = c.closes(q, bq)
    else:
        closed = c.em.delta_min(q + 1) >= bq - EPS
    if closed:
        c.q_max = q
        c.done = True
    elif q + 1 > MAX_ACTIVATIONS:
        c.error = NotSchedulableError(
            f"busy window did not close within {MAX_ACTIVATIONS} "
            f"activations", resource=resource_name, task=c.name,
            context={"reason": "activation_budget",
                     "activations": MAX_ACTIVATIONS})
        c.done = True


__all__ = [
    "Chain",
    "Element",
    "EtaTable",
    "TailSpec",
    "active",
    "backend",
    "batch_worthwhile",
    "configure",
    "enabled",
    "run_chains",
    "solve_round",
    "stats",
    "tables_for",
    "use_numpy",
]
